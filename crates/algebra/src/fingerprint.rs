//! Stable structural fingerprints for plan-cache keying.
//!
//! The serving layer caches compiled plans keyed by the *structure* of what
//! was compiled: the NRC program, the strategy, the physical representation.
//! The fingerprint must be stable across runs of the same process and across
//! equal-but-not-identical values (two structurally equal `Expr`s hash the
//! same), and it must change whenever any node of the tree changes.
//!
//! The implementation hashes the `Debug` rendering of the value with FNV-1a
//! (64-bit): every plan-layer and NRC type derives `Debug` with full
//! structural fidelity (variant names, field names, nested values), so the
//! rendering is an injective-enough structural encoding, and the hasher
//! consumes it through a streaming `fmt::Write` adapter — no intermediate
//! string is ever materialized. This is *not* `std::hash::Hash` (whose
//! output is explicitly unstable across releases) and not a cryptographic
//! hash: collisions are possible in principle, and the cache treats a
//! fingerprint match as an identity only together with the catalog epoch.

use std::fmt::{self, Debug, Write};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a (64-bit) hasher over byte/str chunks.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Hashes raw bytes with FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// The structural fingerprint of any `Debug` value: FNV-1a over its debug
/// rendering, streamed (never materialized). Structurally equal values —
/// plans, NRC expressions, scalar expressions, kernel op lists — fingerprint
/// identically; any structural change changes the digest.
pub fn fingerprint<T: Debug + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    // Writing into Fnv1a cannot fail; a formatter error would mean a broken
    // Debug impl, which `debug_assert` would catch in tests.
    let _ = write!(h, "{value:?}");
    h.finish()
}

/// Folds several fingerprints into one (order-sensitive): chains each
/// component's digest bytes through FNV-1a, so composite cache keys
/// (program ⊕ strategy ⊕ repr) stay one `u64`.
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for p in parts {
        h.update(&p.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;

    #[test]
    fn equal_structures_fingerprint_identically() {
        let a = Plan::scan("R").outer_unnest("items", "id");
        let b = Plan::scan("R").outer_unnest("items", "id");
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn any_structural_change_changes_the_digest() {
        let base = Plan::scan("R").outer_unnest("items", "id");
        let renamed = Plan::scan("S").outer_unnest("items", "id");
        let attr = Plan::scan("R").outer_unnest("item", "id");
        assert_ne!(fingerprint(&base), fingerprint(&renamed));
        assert_ne!(fingerprint(&base), fingerprint(&attr));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_ne!(combine(&[1]), combine(&[1, 0]));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Known FNV-1a 64-bit test vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
