//! # trance-algebra
//!
//! The plan layer of **trance-rs** — the middle of the live compilation
//! pipeline **NRC → Plan → optimize → execute** (Figure 2 of the paper):
//!
//! 1. [`lower`] implements the unnesting algorithm (Figure 3): it translates
//!    an NRC bag expression into a [`PlanProgram`] — materialized assignments
//!    plus a root [`Plan`] built from selections, projections/extensions,
//!    (cross/equi/outer) joins, unnests, nest operators `Γ⊎`/`Γ+`, duplicate
//!    elimination, unions, and the dictionary-specific `BagToDict` /
//!    `DictLookup` operators reserved for shredded plans. The shredded route
//!    lowers each of its flat assignments through the same entry point.
//! 2. [`optimize`] is the single place optimization lives: selection
//!    pushdown, column pruning above scans *and* unnests (replacing the
//!    ad-hoc field pruning the fused executor used to do), aggregation
//!    pushdown, and broadcast-vs-shuffle-vs-skew join strategy selection
//!    annotated on [`Plan::Join`] nodes. Running a lowered program without
//!    this step *is* the SparkSQL-like baseline.
//! 3. `trance-compiler`'s physical executor interprets the optimized plans
//!    on `trance-dist` collections; [`pretty_plan`] renders them (pruned
//!    columns and chosen join strategies included) for EXPLAIN output.
//!
//! [`schema`] provides the attribute-level schema inference and the
//! [`Catalog`] (schemas plus materialized sizes) that both the optimizer and
//! the lowering consult. [`pipelines`] is the **pipeline-breaker analysis**:
//! it groups each plan's maximal chains of row-local operators into the
//! fused pipelines the executors drive morsel-by-morsel
//! ([`fuse_chain`]), and [`pretty_plan_pipelines`] renders plans with their
//! pipeline groupings for EXPLAIN.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod lower;
pub mod optimize;
pub mod pipelines;
pub mod plan;
pub mod scalar;
pub mod schema;

pub use fingerprint::{combine as combine_fingerprints, fingerprint, Fnv1a};
pub use lower::{lower, LowerError, LowerResult, PlanAssignment, PlanProgram};
pub use optimize::{optimize, optimize_default, OptimizerConfig};
pub use pipelines::{
    fuse_chain, is_row_local, needs_sequential, pipeline_label, pipeline_op_name,
    pretty_plan_pipelines,
};
pub use plan::{pretty_plan, JoinStrategy, NestOp, Plan, PlanJoinKind};
pub use scalar::ScalarExpr;
pub use schema::{output_schema, physical_fields, AttrSchema, Catalog, PhysField, PhysType};
