//! # trance-algebra
//!
//! The plan language of **trance-rs** (Section 2 of the paper) together with
//! attribute-level schema inference and the plan optimizer (Section 3).
//!
//! The unnesting stage of the compiler translates NRC programs into [`Plan`]
//! trees built from selections, projections, (outer) joins, (outer) unnests,
//! nest operators `Γ⊎`/`Γ+`, duplicate elimination, unions, and the
//! dictionary-specific `BagToDict` / `DictLookup` operators used by the
//! shredded pipeline. Plans are then optimized and handed to the code
//! generator in `trance-compiler`, which executes them on the `trance-dist`
//! engine.

#![warn(missing_docs)]

pub mod optimize;
pub mod plan;
pub mod scalar;
pub mod schema;

pub use optimize::{optimize, optimize_default, OptimizerConfig};
pub use plan::{pretty_plan, NestOp, Plan, PlanJoinKind};
pub use scalar::ScalarExpr;
pub use schema::{output_schema, AttrSchema, Catalog};
