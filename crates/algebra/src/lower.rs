//! The unnesting algorithm (Figure 3): lowering NRC expressions to [`Plan`]
//! programs.
//!
//! The lowering walks an NRC bag expression and builds the same operator
//! shapes the paper's compilation stage produces:
//!
//! * iterating an input relation establishes a flattened *stream* whose
//!   columns are named `var.field` ([`Plan::Scan`] with an alias);
//! * iterating a bag-valued attribute becomes an [`Plan::Unnest`] carrying
//!   the enclosing columns — the flattening the standard route pays for;
//! * a `for` over another relation whose body is guarded by an equality with
//!   the stream becomes an equi-[`Plan::Join`] (a cross join when genuinely
//!   uncorrelated);
//! * constructing a tuple with a bag-valued attribute enters a new nesting
//!   level: the stream is materialized with a fresh parent identifier
//!   ([`Plan::AddIndex`], emitted as a shared assignment so both sides of the
//!   regrouping join read the same materialization), the inner bag is
//!   compiled as a flat child stream, grouped by the parent id (`Γ⊎`) and
//!   re-attached with a left-outer join, NULLs becoming empty bags;
//! * `sumBy` / `groupBy` become `Γ+` / `Γ⊎` keyed by the enclosing parent ids
//!   plus the user key.
//!
//! The result is a [`PlanProgram`]: zero or more named assignments
//! (materialization points for `let` bindings and nesting levels) followed by
//! the root plan. Optimization happens **after** lowering, in
//! [`crate::optimize`] — the lowering itself performs no pruning or pushdown,
//! so a program lowered here and executed without optimization reproduces the
//! SparkSQL-like baseline.

use std::collections::BTreeSet;
use std::fmt;

use trance_nrc::{CmpOp, Expr, Value};

use crate::plan::{NestOp, Plan, PlanJoinKind};
use crate::scalar::ScalarExpr;
use crate::schema::{output_schema, Catalog};

/// An NRC expression outside the distributable subset (or an unbound
/// variable) was encountered during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Human-readable description of what could not be lowered.
    pub message: String,
}

impl LowerError {
    fn new(message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// Result alias for lowering.
pub type LowerResult<T> = Result<T, LowerError>;

/// One materialized intermediate of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAssignment {
    /// Name under which the materialized output is registered (scannable by
    /// later plans of the same program).
    pub name: String,
    /// The plan computing it.
    pub plan: Plan,
}

/// A lowered NRC query: assignments to materialize in order, then the root
/// plan producing the query result.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProgram {
    /// Materialization points (from `let` bindings, nested output levels and
    /// iterated subqueries), in execution order.
    pub assignments: Vec<PlanAssignment>,
    /// The plan computing the query result.
    pub root: Plan,
}

impl PlanProgram {
    /// Total number of plan operators across assignments and root.
    pub fn size(&self) -> usize {
        self.assignments
            .iter()
            .map(|a| a.plan.size())
            .sum::<usize>()
            + self.root.size()
    }
}

/// Lowers an NRC bag expression to a [`PlanProgram`] over the inputs named in
/// `catalog`. The catalog drives two things only: which free variables denote
/// scannable inputs, and the attribute lists of relations used as direct
/// aggregation/deduplication sources (the plan equivalent of discovering them
/// from the data).
pub fn lower(expr: &Expr, catalog: &Catalog) -> LowerResult<PlanProgram> {
    let mut lw = Lowerer {
        catalog,
        known: catalog
            .input_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        renames: std::collections::BTreeMap::new(),
        assignments: Vec::new(),
        counter: 0,
    };
    let out = lw.compile_bag(expr, None)?;
    let root = lw.finalize(out);
    Ok(PlanProgram {
        assignments: lw.assignments,
        root,
    })
}

/// Column name of `var.field` in the flattened stream.
fn col(var: &str, field: &str) -> String {
    format!("{var}.{field}")
}

/// The flattened stream threaded through lowering: the plan computing rows
/// whose columns are `var.field` pairs plus parent-id columns, together with
/// the variables currently bound.
#[derive(Clone)]
struct Stream {
    plan: Plan,
    bound: Vec<String>,
    /// Parent-id columns present in the stream (innermost last).
    ids: Vec<String>,
}

/// The result of lowering a bag expression.
enum Lowered {
    /// The rows are already the final bag elements (whole-relation
    /// pass-through such as dictionary aliases).
    Passthrough(Plan),
    /// Flattened rows: stream columns plus plainly-named output attributes.
    Flattened {
        plan: Plan,
        attrs: Vec<String>,
        ids: Vec<String>,
    },
}

struct Lowerer<'a> {
    catalog: &'a Catalog,
    /// Names resolvable by `Scan`: catalog inputs plus assignments made so
    /// far.
    known: BTreeSet<String>,
    /// Lexically scoped `let` bindings: bag variable → the (freshened)
    /// assignment materializing it. Kept separate from `known` so shadowed
    /// bindings restore correctly when their scope ends.
    renames: std::collections::BTreeMap<String, String>,
    assignments: Vec<PlanAssignment>,
    counter: usize,
}

impl Lowerer<'_> {
    fn finalize(&self, out: Lowered) -> Plan {
        match out {
            Lowered::Passthrough(p) => p,
            Lowered::Flattened { plan, attrs, .. } => Plan::Project {
                input: Box::new(plan),
                columns: attrs
                    .into_iter()
                    .map(|a| (a.clone(), ScalarExpr::col(a)))
                    .collect(),
            },
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("__{prefix}{}", self.counter)
    }

    /// Materializes `plan` as a named assignment and returns its name.
    fn materialize(&mut self, prefix: &str, plan: Plan) -> String {
        let name = self.fresh(prefix);
        self.known.insert(name.clone());
        self.assignments.push(PlanAssignment {
            name: name.clone(),
            plan,
        });
        name
    }

    /// Resolves a bag variable to the name a `Scan` should use: an in-scope
    /// `let` binding first, then catalog inputs / materialized assignments.
    fn resolve_input(&self, name: &str) -> Option<String> {
        if let Some(target) = self.renames.get(name) {
            return Some(target.clone());
        }
        if self.known.contains(name) {
            return Some(name.to_string());
        }
        None
    }

    fn compile_bag(&mut self, e: &Expr, stream: Option<Stream>) -> LowerResult<Lowered> {
        match e {
            Expr::Var(name) => {
                if stream.is_none() {
                    match self.resolve_input(name) {
                        Some(target) => Ok(Lowered::Passthrough(Plan::scan(target))),
                        None => Err(LowerError::new(format!("unknown input `{name}`"))),
                    }
                } else {
                    Err(LowerError::new(format!(
                        "bag variable `{name}` cannot be used directly inside a nested context; \
                         iterate it with `for`"
                    )))
                }
            }
            Expr::EmptyBag(_) => Ok(Lowered::Flattened {
                plan: Plan::Empty,
                attrs: Vec::new(),
                ids: stream.map(|s| s.ids).unwrap_or_default(),
            }),
            Expr::Let { var, value, body } => {
                // The binding is materialized under a fresh name and mapped
                // lexically: sibling or shadowing `let`s of the same variable
                // each get their own assignment, and the previous binding is
                // restored when this scope ends.
                let value_out = self.compile_bag(value, None)?;
                let plan = self.finalize(value_out);
                let name = self.materialize(&format!("let_{var}_"), plan);
                let previous = self.renames.insert(var.clone(), name);
                let result = self.compile_bag(body, stream);
                match previous {
                    Some(p) => {
                        self.renames.insert(var.clone(), p);
                    }
                    None => {
                        self.renames.remove(var);
                    }
                }
                result
            }
            Expr::For { var, source, body } => self.compile_for(var, source, body, stream),
            Expr::If {
                cond,
                then_branch,
                else_branch: None,
            } => {
                let stream = stream.ok_or_else(|| {
                    LowerError::new("conditional bag outside of an iteration context")
                })?;
                let predicate = translate_scalar(cond, &stream.bound)?;
                let filtered = Stream {
                    plan: stream.plan.select(predicate),
                    bound: stream.bound,
                    ids: stream.ids,
                };
                self.compile_bag(then_branch, Some(filtered))
            }
            Expr::If { .. } => Err(LowerError::new(
                "if-then-else over bags is not supported by the plan compiler; \
                 rewrite with union of guarded branches",
            )),
            Expr::Singleton(inner) => self.compile_singleton(inner, stream),
            Expr::Union(a, b) => {
                let oa = self.compile_bag(a, stream.clone())?;
                let ob = self.compile_bag(b, stream)?;
                match (oa, ob) {
                    (Lowered::Passthrough(pa), Lowered::Passthrough(pb)) => {
                        Ok(Lowered::Passthrough(Plan::Union {
                            left: Box::new(pa),
                            right: Box::new(pb),
                        }))
                    }
                    (
                        Lowered::Flattened {
                            plan: pa,
                            attrs: aa,
                            ids,
                        },
                        Lowered::Flattened {
                            plan: pb,
                            attrs: ab,
                            ..
                        },
                    ) => {
                        let mut attrs = aa;
                        for a in ab {
                            if !attrs.contains(&a) {
                                attrs.push(a);
                            }
                        }
                        Ok(Lowered::Flattened {
                            plan: Plan::Union {
                                left: Box::new(pa),
                                right: Box::new(pb),
                            },
                            attrs,
                            ids,
                        })
                    }
                    _ => Err(LowerError::new("union of incompatible bag shapes")),
                }
            }
            Expr::SumBy { input, key, values } => {
                let inner = self.compile_bag(input, stream)?;
                let (plan, _attrs, ids) = self.expect_flattened(inner)?;
                let mut full_key: Vec<String> = ids.clone();
                full_key.extend(key.iter().cloned());
                let aggregated = Plan::Nest {
                    input: Box::new(plan),
                    key: full_key,
                    values: values.clone(),
                    op: NestOp::Sum,
                };
                let mut attrs = key.clone();
                attrs.extend(values.iter().cloned());
                Ok(Lowered::Flattened {
                    plan: aggregated,
                    attrs,
                    ids,
                })
            }
            Expr::GroupBy {
                input,
                key,
                group_attr,
            } => {
                let inner = self.compile_bag(input, stream)?;
                self.reject_unknown_passthrough(&inner, "groupBy")?;
                let (plan, attrs, ids) = self.expect_flattened(inner)?;
                let mut full_key: Vec<String> = ids.clone();
                full_key.extend(key.iter().cloned());
                let value_attrs: Vec<String> =
                    attrs.iter().filter(|a| !key.contains(a)).cloned().collect();
                let grouped = Plan::Nest {
                    input: Box::new(plan),
                    key: full_key,
                    values: value_attrs,
                    op: NestOp::Bag {
                        group_attr: group_attr.clone(),
                    },
                };
                let mut out_attrs = key.clone();
                out_attrs.push(group_attr.clone());
                Ok(Lowered::Flattened {
                    plan: grouped,
                    attrs: out_attrs,
                    ids,
                })
            }
            Expr::Dedup(input) => {
                let inner = self.compile_bag(input, stream)?;
                self.reject_unknown_passthrough(&inner, "dedup")?;
                let (plan, attrs, ids) = self.expect_flattened(inner)?;
                let keep: Vec<String> = ids.iter().chain(attrs.iter()).cloned().collect();
                let projected = Plan::Project {
                    input: Box::new(plan),
                    columns: keep
                        .into_iter()
                        .map(|a| (a.clone(), ScalarExpr::col(a)))
                        .collect(),
                };
                Ok(Lowered::Flattened {
                    plan: Plan::Dedup {
                        input: Box::new(projected),
                    },
                    attrs,
                    ids,
                })
            }
            other => Err(LowerError::new(format!(
                "the plan compiler does not support this bag expression: {other:?}"
            ))),
        }
    }

    fn expect_flattened(&self, out: Lowered) -> LowerResult<(Plan, Vec<String>, Vec<String>)> {
        match out {
            Lowered::Flattened { plan, attrs, ids } => Ok((plan, attrs, ids)),
            Lowered::Passthrough(plan) => {
                // Attribute discovery for whole-relation aggregates comes from
                // the catalog (the physical pipeline infers it from the data).
                let attrs = output_schema(&plan, self.catalog).attrs;
                Ok((plan, attrs, Vec::new()))
            }
        }
    }

    /// Rejects operations that need the full attribute list of a
    /// pass-through relation whose schema the catalog cannot supply (a
    /// `let`-bound or materialized intermediate): silently proceeding would
    /// project every row down to the empty tuple. Known-but-empty inputs
    /// pass through (an empty relation has no rows to mis-project).
    fn reject_unknown_passthrough(&self, out: &Lowered, what: &str) -> LowerResult<()> {
        if let Lowered::Passthrough(plan) = out {
            let unknown: Vec<String> = plan
                .scanned_inputs()
                .into_iter()
                .filter(|name| !self.catalog.contains(name))
                .collect();
            if !unknown.is_empty() {
                return Err(LowerError::new(format!(
                    "{what} over relation(s) {unknown:?} whose attributes are not in the \
                     catalog (let-bound intermediates cannot be aggregated whole; \
                     iterate them with `for` instead)"
                )));
            }
        }
        Ok(())
    }

    fn compile_for(
        &mut self,
        var: &str,
        source: &Expr,
        body: &Expr,
        stream: Option<Stream>,
    ) -> LowerResult<Lowered> {
        match source {
            // Iterate an input (or let-bound / materialized) relation.
            Expr::Var(name) if self.resolve_input(name).is_some() => {
                let target = self
                    .resolve_input(name)
                    .expect("checked by the match guard");
                match stream {
                    None => {
                        let s = Stream {
                            plan: Plan::scan_as(target, var),
                            bound: vec![var.to_string()],
                            ids: Vec::new(),
                        };
                        self.compile_bag(body, Some(s))
                    }
                    Some(s) => {
                        // A relation iterated inside an existing stream must
                        // be correlated by an equality in the body — this
                        // becomes an equi-join (or a cross join when truly
                        // uncorrelated).
                        let right = Plan::scan_as(target, var);
                        let (cond, inner_body) = peel_condition(body);
                        let (left_keys, right_keys, residual) =
                            split_join_condition(&cond, &s, var);
                        let lk: Vec<&str> = left_keys.iter().map(|s| s.as_str()).collect();
                        let rk: Vec<&str> = right_keys.iter().map(|s| s.as_str()).collect();
                        let joined = s.plan.clone().join(right, &lk, &rk, PlanJoinKind::Inner);
                        let mut plan = joined;
                        if let Some(res) = &residual {
                            let bound_with_var: Vec<String> =
                                s.bound.iter().cloned().chain([var.to_string()]).collect();
                            plan = plan.select(translate_scalar(res, &bound_with_var)?);
                        }
                        let new_stream = Stream {
                            plan,
                            bound: {
                                let mut b = s.bound.clone();
                                b.push(var.to_string());
                                b
                            },
                            ids: s.ids.clone(),
                        };
                        self.compile_bag(&inner_body, Some(new_stream))
                    }
                }
            }
            // Iterate a bag-valued attribute of an enclosing variable: unnest.
            Expr::Proj { tuple, field } => {
                let (outer_var, path) = projection_root(tuple, field)?;
                let stream = stream.ok_or_else(|| {
                    LowerError::new(format!(
                        "navigation into {outer_var}.{path} outside of an iteration context"
                    ))
                })?;
                if !stream.bound.contains(&outer_var) {
                    return Err(LowerError::new(format!(
                        "variable `{outer_var}` is not bound in the current stream"
                    )));
                }
                let s = Stream {
                    plan: stream.plan.unnest_as(col(&outer_var, &path), var),
                    bound: {
                        let mut b = stream.bound.clone();
                        b.push(var.to_string());
                        b
                    },
                    ids: stream.ids.clone(),
                };
                self.compile_bag(body, Some(s))
            }
            // Iterate the result of another bag expression: materialize it
            // first, then iterate it as a relation.
            other => {
                let lowered = self.compile_bag(other, None)?;
                let plan = self.finalize(lowered);
                let tmp = self.materialize("sub", plan);
                self.compile_for(var, &Expr::Var(tmp), body, stream)
            }
        }
    }

    fn compile_singleton(&mut self, inner: &Expr, stream: Option<Stream>) -> LowerResult<Lowered> {
        let mut stream = match stream {
            Some(s) => s,
            // A constant singleton bag: one empty row, no stream.
            None => Stream {
                plan: Plan::Unit,
                bound: Vec::new(),
                ids: Vec::new(),
            },
        };
        match inner {
            Expr::Tuple(fields) => {
                let mut attrs = Vec::with_capacity(fields.len());
                for (name, fe) in fields {
                    if self.is_bag_expr(fe) {
                        // Enter a new nesting level: materialize the stream
                        // with a fresh parent id so the child compilation and
                        // the regrouping join share one computation.
                        let id_attr = self.fresh("id");
                        let indexed = stream.plan.clone().add_index(id_attr.clone());
                        let mat = self.materialize("mat", indexed);
                        let base = Plan::scan(mat);
                        let parent = Stream {
                            plan: base.clone(),
                            bound: stream.bound.clone(),
                            ids: {
                                let mut ids = stream.ids.clone();
                                ids.push(id_attr.clone());
                                ids
                            },
                        };
                        let child = self.compile_bag(fe, Some(parent))?;
                        let (child_plan, child_attrs, _) = self.expect_flattened(child)?;
                        let nested = Plan::Nest {
                            input: Box::new(child_plan),
                            key: vec![id_attr.clone()],
                            values: child_attrs,
                            op: NestOp::Bag {
                                group_attr: name.clone(),
                            },
                        };
                        let joined = base.join(
                            nested,
                            &[id_attr.as_str()],
                            &[id_attr.as_str()],
                            PlanJoinKind::LeftOuter,
                        );
                        // NULL (no child rows) becomes the empty bag.
                        stream.plan = joined.extend(vec![(
                            name.clone(),
                            ScalarExpr::Coalesce(
                                Box::new(ScalarExpr::col(name.clone())),
                                Box::new(ScalarExpr::constant(Value::empty_bag())),
                            ),
                        )]);
                        attrs.push(name.clone());
                    } else {
                        let scalar = translate_scalar(fe, &stream.bound)?;
                        stream.plan = stream.plan.extend(vec![(name.clone(), scalar)]);
                        attrs.push(name.clone());
                    }
                }
                Ok(Lowered::Flattened {
                    plan: stream.plan,
                    attrs,
                    ids: stream.ids,
                })
            }
            other => {
                let scalar = translate_scalar(other, &stream.bound)?;
                Ok(Lowered::Flattened {
                    plan: stream.plan.extend(vec![("__value".to_string(), scalar)]),
                    attrs: vec!["__value".to_string()],
                    ids: stream.ids,
                })
            }
        }
    }

    fn is_bag_expr(&self, e: &Expr) -> bool {
        matches!(
            e,
            Expr::For { .. }
                | Expr::Union(..)
                | Expr::EmptyBag(_)
                | Expr::Singleton(_)
                | Expr::SumBy { .. }
                | Expr::GroupBy { .. }
                | Expr::Dedup(_)
                | Expr::If {
                    else_branch: None,
                    ..
                }
                | Expr::Let { .. }
        ) || matches!(e, Expr::Var(v) if self.resolve_input(v).is_some())
    }
}

// ---------------------------------------------------------------------------
// scalar translation: NRC scalar expressions -> plan scalar expressions
// ---------------------------------------------------------------------------

/// Translates an NRC scalar expression into a [`ScalarExpr`] over the
/// flattened stream's `var.field` columns.
fn translate_scalar(e: &Expr, bound: &[String]) -> LowerResult<ScalarExpr> {
    Ok(match e {
        Expr::Const(v) => ScalarExpr::constant(v.clone()),
        Expr::Proj { tuple, field } => {
            let (var, path) = projection_root(tuple, field)?;
            if !bound.contains(&var) {
                return Err(LowerError::new(format!(
                    "variable `{var}` is not bound in the current iteration context"
                )));
            }
            ScalarExpr::col(col(&var, &path))
        }
        Expr::Prim { op, left, right } => ScalarExpr::Prim {
            op: *op,
            left: Box::new(translate_scalar(left, bound)?),
            right: Box::new(translate_scalar(right, bound)?),
        },
        Expr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op: *op,
            left: Box::new(translate_scalar(left, bound)?),
            right: Box::new(translate_scalar(right, bound)?),
        },
        Expr::And(a, b) => ScalarExpr::And(
            Box::new(translate_scalar(a, bound)?),
            Box::new(translate_scalar(b, bound)?),
        ),
        Expr::Or(a, b) => ScalarExpr::Or(
            Box::new(translate_scalar(a, bound)?),
            Box::new(translate_scalar(b, bound)?),
        ),
        Expr::Not(x) => ScalarExpr::Not(Box::new(translate_scalar(x, bound)?)),
        Expr::NewLabel { site, captures } => ScalarExpr::NewLabel {
            site: *site,
            captures: captures
                .iter()
                .map(|(n, c)| translate_scalar(c, bound).map(|c| (n.clone(), c)))
                .collect::<LowerResult<Vec<_>>>()?,
        },
        other => {
            return Err(LowerError::new(format!(
                "unsupported scalar expression in plan compilation: {other:?}"
            )))
        }
    })
}

/// Resolves a (possibly chained) projection to its root variable and the
/// dotted field path (e.g. `x.a` → (`x`, `a`)).
fn projection_root(tuple: &Expr, field: &str) -> LowerResult<(String, String)> {
    match tuple {
        Expr::Var(v) => Ok((v.clone(), field.to_string())),
        Expr::Proj {
            tuple: inner,
            field: f2,
        } => {
            let (v, p) = projection_root(inner, f2)?;
            Ok((v, format!("{p}.{field}")))
        }
        other => Err(LowerError::new(format!(
            "unsupported projection base: {other:?}"
        ))),
    }
}

/// Peels a leading `if` off a `for` body, returning the condition (Bool(true)
/// when absent) and the remaining body.
fn peel_condition(body: &Expr) -> (Expr, Expr) {
    match body {
        Expr::If {
            cond,
            then_branch,
            else_branch: None,
        } => (cond.as_ref().clone(), then_branch.as_ref().clone()),
        other => (Expr::Const(Value::Bool(true)), other.clone()),
    }
}

/// Splits a condition into equi-join keys between the stream (columns of
/// previously bound variables) and the newly introduced variable, plus a
/// residual predicate.
fn split_join_condition(
    cond: &Expr,
    stream: &Stream,
    new_var: &str,
) -> (Vec<String>, Vec<String>, Option<Expr>) {
    fn conjuncts(e: &Expr) -> Vec<Expr> {
        match e {
            Expr::And(a, b) => {
                let mut out = conjuncts(a);
                out.extend(conjuncts(b));
                out
            }
            other => vec![other.clone()],
        }
    }
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts(cond) {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = &c
        {
            let classify = |e: &Expr| -> Option<(String, String)> {
                if let Expr::Proj { tuple, field } = e {
                    if let Ok((v, p)) = projection_root(tuple, field) {
                        return Some((v, p));
                    }
                }
                None
            };
            if let (Some((lv, lp)), Some((rv, rp))) = (classify(left), classify(right)) {
                if lv == new_var && stream.bound.contains(&rv) {
                    left_keys.push(col(&rv, &rp));
                    right_keys.push(col(&lv, &lp));
                    continue;
                }
                if rv == new_var && stream.bound.contains(&lv) {
                    left_keys.push(col(&lv, &lp));
                    right_keys.push(col(&rv, &rp));
                    continue;
                }
            }
        }
        if matches!(c, Expr::Const(Value::Bool(true))) {
            continue;
        }
        residual.push(c);
    }
    let residual = residual
        .into_iter()
        .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)));
    (left_keys, right_keys, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;
    use trance_nrc::builder::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "COP",
            AttrSchema::flat(["cname"]).with_nested(
                "corders",
                AttrSchema::flat(["odate"]).with_nested("oparts", AttrSchema::flat(["pid", "qty"])),
            ),
        );
        c.register("Part", AttrSchema::flat(["pid", "pname", "price"]));
        c
    }

    fn running_example() -> Expr {
        forin(
            "cop",
            var("COP"),
            singleton(tuple([
                ("cname", proj(var("cop"), "cname")),
                (
                    "corders",
                    forin(
                        "co",
                        proj(var("cop"), "corders"),
                        singleton(tuple([
                            ("odate", proj(var("co"), "odate")),
                            (
                                "oparts",
                                sum_by(
                                    forin(
                                        "op",
                                        proj(var("co"), "oparts"),
                                        forin(
                                            "p",
                                            var("Part"),
                                            ifthen(
                                                cmp_eq(
                                                    proj(var("op"), "pid"),
                                                    proj(var("p"), "pid"),
                                                ),
                                                singleton(tuple([
                                                    ("pname", proj(var("p"), "pname")),
                                                    (
                                                        "total",
                                                        mul(
                                                            proj(var("op"), "qty"),
                                                            proj(var("p"), "price"),
                                                        ),
                                                    ),
                                                ])),
                                            ),
                                        ),
                                    ),
                                    &["pname"],
                                    &["total"],
                                ),
                            ),
                        ])),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn running_example_lowering_has_figure3_shape() {
        let program = lower(&running_example(), &catalog()).unwrap();
        // Two nesting levels in the output → two materialization points.
        assert_eq!(program.assignments.len(), 2);
        let all_ops = |pred: &dyn Fn(&Plan) -> bool| -> usize {
            program
                .assignments
                .iter()
                .map(|a| a.plan.count(pred))
                .sum::<usize>()
                + program.root.count(pred)
        };
        // Two unnests (corders, oparts), one value join (Part) and two
        // regrouping outer joins, one Γ+ and two Γ⊎.
        assert_eq!(all_ops(&|p| matches!(p, Plan::Unnest { .. })), 2);
        assert_eq!(all_ops(&|p| matches!(p, Plan::Join { .. })), 3);
        assert_eq!(
            all_ops(&|p| matches!(
                p,
                Plan::Nest {
                    op: NestOp::Sum,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            all_ops(&|p| matches!(
                p,
                Plan::Nest {
                    op: NestOp::Bag { .. },
                    ..
                }
            )),
            2
        );
        // The root names the output attributes.
        match &program.root {
            Plan::Project { columns, .. } => {
                let names: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, vec!["cname", "corders"]);
            }
            other => panic!("root must be a projection, got {other:?}"),
        }
    }

    #[test]
    fn correlated_iteration_becomes_an_equi_join() {
        let q = forin(
            "l",
            var("Lineitem"),
            forin(
                "p",
                var("Part"),
                ifthen(
                    cmp_eq(proj(var("l"), "pid"), proj(var("p"), "pid")),
                    singleton(tuple([("pname", proj(var("p"), "pname"))])),
                ),
            ),
        );
        let mut c = catalog();
        c.register("Lineitem", AttrSchema::flat(["pid", "qty"]));
        let program = lower(&q, &c).unwrap();
        let mut join_keys = None;
        program.root.visit(&mut |p| {
            if let Plan::Join {
                left_key,
                right_key,
                ..
            } = p
            {
                join_keys = Some((left_key.clone(), right_key.clone()));
            }
        });
        let (lk, rk) = join_keys.expect("a join must be emitted");
        assert_eq!(lk, vec!["l.pid".to_string()]);
        assert_eq!(rk, vec!["p.pid".to_string()]);
    }

    #[test]
    fn uncorrelated_iteration_becomes_a_cross_join() {
        let q = forin(
            "a",
            var("Part"),
            forin(
                "b",
                var("Part"),
                singleton(tuple([("x", proj(var("a"), "pid"))])),
            ),
        );
        let program = lower(&q, &catalog()).unwrap();
        let mut cross = false;
        program.root.visit(&mut |p| {
            if let Plan::Join { left_key, .. } = p {
                cross = left_key.is_empty();
            }
        });
        assert!(cross, "{}", crate::plan::pretty_plan(&program.root));
    }

    #[test]
    fn let_bindings_become_assignments() {
        let q = Expr::Let {
            var: "Tmp".into(),
            value: Box::new(forin(
                "p",
                var("Part"),
                singleton(tuple([("pid", proj(var("p"), "pid"))])),
            )),
            body: Box::new(forin(
                "t",
                var("Tmp"),
                singleton(tuple([("pid", proj(var("t"), "pid"))])),
            )),
        };
        let program = lower(&q, &catalog()).unwrap();
        assert_eq!(program.assignments.len(), 1);
        // Let bindings materialize under a freshened name (so shadowed or
        // sibling bindings of the same variable never collide) and scans of
        // the variable resolve to it.
        let mat = &program.assignments[0].name;
        assert!(mat.contains("Tmp"), "{mat}");
        assert!(program.root.scanned_inputs().contains(mat));
    }

    #[test]
    fn shadowed_let_bindings_resolve_lexically() {
        // let X = π(Part) in (for t in (let X = π'(Part) in X-scan) ...) ∪
        // (for t in X ...): the second branch must read the OUTER binding.
        let inner = Expr::Let {
            var: "X".into(),
            value: Box::new(forin(
                "p",
                var("Part"),
                singleton(tuple([("u", proj(var("p"), "pname"))])),
            )),
            body: Box::new(forin(
                "t",
                var("X"),
                singleton(tuple([("u", proj(var("t"), "u"))])),
            )),
        };
        let outer_use = forin(
            "t",
            var("X"),
            singleton(tuple([("u", proj(var("t"), "u"))])),
        );
        let q = Expr::Let {
            var: "X".into(),
            value: Box::new(forin(
                "p",
                var("Part"),
                singleton(tuple([("u", proj(var("p"), "pid"))])),
            )),
            body: Box::new(Expr::Union(Box::new(inner), Box::new(outer_use))),
        };
        let program = lower(&q, &catalog()).unwrap();
        assert_eq!(program.assignments.len(), 2);
        let outer_name = program.assignments[0].name.clone();
        let inner_name = program.assignments[1].name.clone();
        assert_ne!(outer_name, inner_name);
        // The union's right branch scans the outer materialization, the left
        // branch the inner one.
        match &program.root {
            Plan::Project { input, .. } => match input.as_ref() {
                Plan::Union { left, right } => {
                    assert!(left.scanned_inputs().contains(&inner_name));
                    assert!(right.scanned_inputs().contains(&outer_name));
                }
                other => panic!("expected a union below the root, got {other:?}"),
            },
            other => panic!("expected a root projection, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_expressions_are_rejected() {
        let q = Expr::If {
            cond: Box::new(cmp_eq(proj(var("x"), "a"), proj(var("x"), "b"))),
            then_branch: Box::new(var("Part")),
            else_branch: Some(Box::new(var("Part"))),
        };
        assert!(lower(&q, &catalog()).is_err());
        assert!(lower(&var("NoSuchInput"), &catalog()).is_err());
    }
}
