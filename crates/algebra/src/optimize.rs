//! Plan optimizations (Section 3, "Optimization").
//!
//! This module is the single place optimization lives: the compiler lowers
//! NRC to a [`Plan`] program, runs [`optimize`] on every plan, and hands the
//! optimized trees to the physical executor. Four rewrite families are
//! implemented, matching the ones the paper calls out as applied by the
//! framework and usually overlooked by hand-written distributed programs:
//!
//! 1. **Selection pushdown** — `σ` moves below projections, extensions and
//!    into the join side that supplies all of the predicate's columns.
//! 2. **Column pruning** — projections are inserted directly above scans
//!    *and unnests* so unused attributes never enter a shuffle. (This is the
//!    "narrow" benefit the benchmark's narrow/wide split measures; pruning
//!    above unnests is what drops unused attributes of nested bag elements.)
//! 3. **Aggregation pushdown** — a summing nest `Γ+` above a join computes
//!    partial sums below the join when all summed attributes come from the
//!    left input and the grouping key covers the join key (the partial-sum
//!    example discussed with Figure 3).
//! 4. **Join strategy selection** — every [`Plan::Join`] is annotated with a
//!    physical strategy: `Skew` when the pipeline requests skew-aware
//!    execution, `Broadcast`/`Shuffle` when the catalog's size information
//!    proves the choice, and `Auto` (runtime size check) otherwise.

use std::collections::BTreeSet;

use crate::plan::{JoinStrategy, NestOp, Plan, PlanJoinKind};
use crate::scalar::ScalarExpr;
use crate::schema::{output_schema, Catalog};

/// Which rewrites [`optimize`] applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Enable selection pushdown.
    pub pushdown_selections: bool,
    /// Enable column pruning above scans and unnests.
    pub prune_columns: bool,
    /// Enable pushing `Γ+` below joins.
    pub pushdown_aggregation: bool,
    /// Annotate every join with a physical strategy.
    pub select_join_strategies: bool,
    /// Request skew-aware joins (Section 5) — every join is annotated `Skew`.
    pub skew_joins: bool,
    /// The engine's broadcast limit in bytes; required for provable
    /// `Broadcast`/`Shuffle` annotations (without it joins stay `Auto`).
    pub broadcast_limit: Option<usize>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            pushdown_selections: true,
            prune_columns: true,
            pushdown_aggregation: true,
            select_join_strategies: true,
            skew_joins: false,
            broadcast_limit: None,
        }
    }
}

/// Applies the enabled rewrites until a fixpoint (bounded by a small number of
/// passes; each rule is individually terminating).
pub fn optimize(plan: &Plan, catalog: &Catalog, config: &OptimizerConfig) -> Plan {
    let mut current = plan.clone();
    for _ in 0..4 {
        let mut next = current.clone();
        if config.pushdown_selections {
            next = push_selections(&next, catalog);
        }
        if config.pushdown_aggregation {
            next = push_aggregation(&next, catalog);
        }
        if config.prune_columns {
            next = prune_columns(&next, catalog);
        }
        next = collapse_projections(&next);
        if next == current {
            break;
        }
        current = next;
    }
    if config.select_join_strategies {
        current = select_join_strategies(&current, catalog, config);
    }
    current
}

/// Applies [`optimize`] with the default configuration.
pub fn optimize_default(plan: &Plan, catalog: &Catalog) -> Plan {
    optimize(plan, catalog, &OptimizerConfig::default())
}

// ---------------------------------------------------------------------------
// selection pushdown
// ---------------------------------------------------------------------------

fn push_selections(plan: &Plan, catalog: &Catalog) -> Plan {
    let rebuilt = map_children(plan, |c| push_selections(c, catalog));
    if let Plan::Select { input, predicate } = &rebuilt {
        let cols: Vec<String> = predicate.referenced_columns().into_iter().collect();
        match input.as_ref() {
            // σ over π: swap when every referenced column is a pass-through of
            // the projection.
            Plan::Project {
                input: proj_in,
                columns,
            } => {
                let passthrough = cols.iter().all(|c| {
                    columns
                        .iter()
                        .any(|(n, e)| n == c && *e == ScalarExpr::col(c.clone()))
                });
                if passthrough {
                    return Plan::Project {
                        input: Box::new(push_selections(
                            &Plan::Select {
                                input: proj_in.clone(),
                                predicate: predicate.clone(),
                            },
                            catalog,
                        )),
                        columns: columns.clone(),
                    };
                }
            }
            // σ over an extension: swap when the predicate does not touch any
            // column the extension computes.
            Plan::Extend {
                input: ext_in,
                columns,
            } => {
                let independent = cols.iter().all(|c| !columns.iter().any(|(n, _)| n == c));
                if independent {
                    return Plan::Extend {
                        input: Box::new(push_selections(
                            &Plan::Select {
                                input: ext_in.clone(),
                                predicate: predicate.clone(),
                            },
                            catalog,
                        )),
                        columns: columns.clone(),
                    };
                }
            }
            // σ over ⋈: push into the side that supplies every column.
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
                kind,
                strategy,
            } => {
                let left_schema = output_schema(left, catalog);
                let right_schema = output_schema(right, catalog);
                if !cols.is_empty() && left_schema.contains_all(cols.iter()) {
                    return Plan::Join {
                        left: Box::new(push_selections(
                            &Plan::Select {
                                input: left.clone(),
                                predicate: predicate.clone(),
                            },
                            catalog,
                        )),
                        right: right.clone(),
                        left_key: left_key.clone(),
                        right_key: right_key.clone(),
                        kind: *kind,
                        strategy: *strategy,
                    };
                }
                // Only inner joins admit pushing into the right side (an
                // outer join must keep unmatched left rows).
                if *kind == PlanJoinKind::Inner
                    && !cols.is_empty()
                    && right_schema.contains_all(cols.iter())
                {
                    return Plan::Join {
                        left: left.clone(),
                        right: Box::new(push_selections(
                            &Plan::Select {
                                input: right.clone(),
                                predicate: predicate.clone(),
                            },
                            catalog,
                        )),
                        left_key: left_key.clone(),
                        right_key: right_key.clone(),
                        kind: *kind,
                        strategy: *strategy,
                    };
                }
            }
            _ => {}
        }
    }
    rebuilt
}

// ---------------------------------------------------------------------------
// column pruning
// ---------------------------------------------------------------------------

fn prune_columns(plan: &Plan, catalog: &Catalog) -> Plan {
    // Collect the set of attributes referenced anywhere in the plan. `all`
    // means "everything" (e.g. some operator needs the full row, or the root
    // does not name its output columns).
    let required = collect_required(plan);
    insert_pruning_projections(plan, catalog, &required)
}

#[derive(Debug, Default, Clone)]
struct Required {
    /// Attributes referenced by operators (selection predicates, projection
    /// and extension expressions, join/nest keys, unnest attributes).
    attrs: BTreeSet<String>,
    /// True when some operator needs the full row (no pruning possible).
    all: bool,
}

fn collect_required(plan: &Plan) -> Required {
    let mut req = Required::default();
    plan.visit(&mut |p| match p {
        Plan::Select { predicate, .. } => {
            req.attrs.extend(predicate.referenced_columns());
        }
        Plan::Project { columns, .. } | Plan::Extend { columns, .. } => {
            for (_, e) in columns {
                req.attrs.extend(e.referenced_columns());
            }
        }
        Plan::Join {
            left_key,
            right_key,
            ..
        } => {
            req.attrs.extend(left_key.iter().cloned());
            req.attrs.extend(right_key.iter().cloned());
        }
        Plan::Unnest {
            bag_attr, id_attr, ..
        } => {
            req.attrs.insert(bag_attr.clone());
            if let Some(id) = id_attr {
                req.attrs.insert(id.clone());
            }
        }
        Plan::Nest { key, values, .. } => {
            req.attrs.extend(key.iter().cloned());
            req.attrs.extend(values.iter().cloned());
        }
        Plan::DictLookup { label_attr, .. } => {
            req.attrs.insert(label_attr.clone());
        }
        Plan::AddIndex { id_attr, .. } => {
            req.attrs.insert(id_attr.clone());
        }
        Plan::Dedup { .. } | Plan::Union { .. } => {
            req.all = true;
        }
        Plan::Scan { .. } | Plan::Unit | Plan::Empty | Plan::BagToDict { .. } => {}
    });
    // The root's output attributes are also required: without full projection
    // tracking we conservatively keep whatever the top projection names, and
    // if the root is not a projection we give up on pruning.
    match plan {
        Plan::Project { .. } | Plan::Nest { .. } => {}
        _ => req.all = true,
    }
    req
}

/// Inserts pass-through projections above the operators that introduce
/// attributes — scans and unnests — keeping only the required ones.
///
/// Catalog schemas may be sampled from the data, so for an aliased source
/// every required `alias.`-prefixed attribute is kept even when the sampled
/// schema missed it: an attribute present only in unsampled rows then flows
/// through instead of being silently dropped (absent ones evaluate to NULL
/// either way).
fn insert_pruning_projections(plan: &Plan, catalog: &Catalog, required: &Required) -> Plan {
    if required.all {
        return plan.clone();
    }
    map_plan(plan, &|p| {
        let (prunable, alias) = match p {
            Plan::Scan { alias, .. } => (true, alias.clone()),
            // An unnest can only be pruned when the inner schema of the
            // flattened bag is known — otherwise the projection would drop
            // the (unknown) element attributes.
            Plan::Unnest {
                input,
                bag_attr,
                alias,
                ..
            } => {
                let in_schema = output_schema(input, catalog);
                let inner_known = in_schema
                    .nested_schema(bag_attr)
                    .map(|s| !s.attrs.is_empty())
                    .unwrap_or(false);
                (inner_known, alias.clone())
            }
            _ => (false, None),
        };
        if !prunable {
            return None;
        }
        let schema = output_schema(p, catalog);
        if schema.attrs.is_empty() {
            return None;
        }
        let mut keep: Vec<String> = schema
            .attrs
            .iter()
            .filter(|a| required.attrs.contains(*a))
            .cloned()
            .collect();
        let drops_something = schema.attrs.iter().any(|a| !required.attrs.contains(a));
        if let Some(alias) = alias {
            let prefix = format!("{alias}.");
            for a in &required.attrs {
                if a.starts_with(&prefix) && !keep.contains(a) {
                    keep.push(a.clone());
                }
            }
        }
        if !keep.is_empty() && drops_something {
            return Some(Plan::Project {
                input: Box::new(p.clone()),
                columns: keep
                    .into_iter()
                    .map(|a| (a.clone(), ScalarExpr::col(a)))
                    .collect(),
            });
        }
        None
    })
}

// ---------------------------------------------------------------------------
// aggregation pushdown
// ---------------------------------------------------------------------------

fn push_aggregation(plan: &Plan, catalog: &Catalog) -> Plan {
    let rebuilt = map_children(plan, |c| push_aggregation(c, catalog));
    if let Plan::Nest {
        input,
        key,
        values,
        op: NestOp::Sum,
    } = &rebuilt
    {
        if let Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            strategy,
        } = input.as_ref()
        {
            let left_schema = output_schema(left, catalog);
            let right_schema = output_schema(right, catalog);
            // All summed values must come from the left input, the join key
            // must be part of the left grouping attributes, and the right side
            // must not contribute summed values. Then partial sums grouped by
            // (left grouping attrs ∪ join key) can be computed below the join.
            let values_from_left = values.iter().all(|v| left_schema.contains(v))
                && values.iter().all(|v| !right_schema.contains(v));
            let partial_key: Vec<String> = key
                .iter()
                .filter(|k| left_schema.contains(k))
                .cloned()
                .chain(left_key.iter().cloned())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let covers_join_key = left_key.iter().all(|k| partial_key.contains(k));
            // Avoid a useless partial aggregate when the partial key is the
            // whole left row (nothing to reduce) — mirrors the paper's remark
            // that pre-aggregating `Part` on its primary key brings no benefit.
            let useful = partial_key.len() < left_schema.attrs.len();
            if values_from_left && covers_join_key && useful && !partial_key.is_empty() {
                let partial = Plan::Nest {
                    input: left.clone(),
                    key: partial_key,
                    values: values.clone(),
                    op: NestOp::Sum,
                };
                return Plan::Nest {
                    input: Box::new(Plan::Join {
                        left: Box::new(partial),
                        right: right.clone(),
                        left_key: left_key.clone(),
                        right_key: right_key.clone(),
                        kind: *kind,
                        strategy: *strategy,
                    }),
                    key: key.clone(),
                    values: values.clone(),
                    op: NestOp::Sum,
                };
            }
        }
    }
    rebuilt
}

// ---------------------------------------------------------------------------
// join strategy selection
// ---------------------------------------------------------------------------

/// Annotates every `Auto` join with a physical strategy. The annotation never
/// contradicts what the engine's runtime size check would decide: `Broadcast`
/// is chosen only when an upper bound on the right side provably fits under
/// the broadcast limit, `Shuffle` only when lower-bound-free reasoning cannot
/// apply but both sides' upper bounds provably exceed it.
fn select_join_strategies(plan: &Plan, catalog: &Catalog, config: &OptimizerConfig) -> Plan {
    map_plan(plan, &|p| {
        if let Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            strategy: JoinStrategy::Auto,
        } = p
        {
            let strategy = if config.skew_joins {
                JoinStrategy::Skew
            } else if let Some(limit) = config.broadcast_limit {
                let right_bound = size_upper_bound(right, catalog);
                let left_bound = size_upper_bound(left, catalog);
                match (right_bound, left_bound) {
                    (Some(r), _) if r <= limit => JoinStrategy::Broadcast,
                    // Lower bounds: a scan's recorded size is exact, so a
                    // bare scan larger than the limit can never broadcast.
                    _ => {
                        let right_big = scan_exact_size(right, catalog)
                            .map(|r| r > limit)
                            .unwrap_or(false);
                        let left_big = scan_exact_size(left, catalog)
                            .map(|l| l > limit)
                            .unwrap_or(false);
                        if right_big && (left_big || *kind == PlanJoinKind::LeftOuter) {
                            JoinStrategy::Shuffle
                        } else {
                            JoinStrategy::Auto
                        }
                    }
                }
            } else {
                JoinStrategy::Auto
            };
            if strategy != JoinStrategy::Auto {
                return Some(Plan::Join {
                    left: left.clone(),
                    right: right.clone(),
                    left_key: left_key.clone(),
                    right_key: right_key.clone(),
                    kind: *kind,
                    strategy,
                });
            }
        }
        None
    })
}

/// An upper bound on the materialized size of a subplan's output, when one is
/// provable: shrinking-only operators pass their input's bound through, a
/// scan contributes its recorded size.
fn size_upper_bound(plan: &Plan, catalog: &Catalog) -> Option<usize> {
    match plan {
        Plan::Scan { name, .. } => catalog.size_of(name),
        Plan::Unit | Plan::Empty => Some(0),
        Plan::Select { input, .. } | Plan::Dedup { input } => size_upper_bound(input, catalog),
        // A pass-through projection keeps a subset of each row.
        Plan::Project { input, columns } => {
            let passthrough = columns
                .iter()
                .all(|(n, e)| matches!(e, ScalarExpr::Col(c) if c == n));
            if passthrough {
                size_upper_bound(input, catalog)
            } else {
                None
            }
        }
        // Γ+ emits at most one row per input row, each a subset of key/value
        // columns.
        Plan::Nest {
            input,
            op: NestOp::Sum,
            ..
        } => size_upper_bound(input, catalog),
        _ => None,
    }
}

/// The exact recorded size of a bare (possibly pruned/filtered) scan — used
/// as a lower bound only when nothing below could have shrunk it.
fn scan_exact_size(plan: &Plan, catalog: &Catalog) -> Option<usize> {
    match plan {
        Plan::Scan { name, .. } => catalog.size_of(name),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// projection collapsing
// ---------------------------------------------------------------------------

/// Substitutes column references through a projection's column definitions,
/// returning `None` when a referenced column is not defined by it.
fn substitute_cols(
    expr: &ScalarExpr,
    defs: &std::collections::BTreeMap<String, ScalarExpr>,
) -> Option<ScalarExpr> {
    Some(match expr {
        ScalarExpr::Col(c) => defs.get(c)?.clone(),
        ScalarExpr::Const(_) => expr.clone(),
        ScalarExpr::Prim { op, left, right } => ScalarExpr::Prim {
            op: *op,
            left: Box::new(substitute_cols(left, defs)?),
            right: Box::new(substitute_cols(right, defs)?),
        },
        ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op: *op,
            left: Box::new(substitute_cols(left, defs)?),
            right: Box::new(substitute_cols(right, defs)?),
        },
        ScalarExpr::And(a, b) => ScalarExpr::And(
            Box::new(substitute_cols(a, defs)?),
            Box::new(substitute_cols(b, defs)?),
        ),
        ScalarExpr::Or(a, b) => ScalarExpr::Or(
            Box::new(substitute_cols(a, defs)?),
            Box::new(substitute_cols(b, defs)?),
        ),
        ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(substitute_cols(e, defs)?)),
        ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(substitute_cols(e, defs)?)),
        ScalarExpr::Coalesce(a, b) => ScalarExpr::Coalesce(
            Box::new(substitute_cols(a, defs)?),
            Box::new(substitute_cols(b, defs)?),
        ),
        ScalarExpr::NewLabel { site, captures } => ScalarExpr::NewLabel {
            site: *site,
            captures: captures
                .iter()
                .map(|(n, e)| substitute_cols(e, defs).map(|e| (n.clone(), e)))
                .collect::<Option<Vec<_>>>()?,
        },
        ScalarExpr::LabelCapture { label, index } => ScalarExpr::LabelCapture {
            label: Box::new(substitute_cols(label, defs)?),
            index: *index,
        },
    })
}

/// Merges adjacent projections (`π₁ ∘ π₂ → π`) so repeated optimizer passes
/// converge instead of stacking pass-through projections.
fn collapse_projections(plan: &Plan) -> Plan {
    map_plan(plan, &|p| {
        if let Plan::Project { input, columns } = p {
            if let Plan::Project {
                input: inner_input,
                columns: inner_columns,
            } = input.as_ref()
            {
                let defs: std::collections::BTreeMap<String, ScalarExpr> = inner_columns
                    .iter()
                    .map(|(n, e)| (n.clone(), e.clone()))
                    .collect();
                let merged: Option<Vec<(String, ScalarExpr)>> = columns
                    .iter()
                    .map(|(n, e)| substitute_cols(e, &defs).map(|e| (n.clone(), e)))
                    .collect();
                if let Some(merged) = merged {
                    return Some(Plan::Project {
                        input: inner_input.clone(),
                        columns: merged,
                    });
                }
            }
        }
        None
    })
}

// ---------------------------------------------------------------------------
// traversal helpers
// ---------------------------------------------------------------------------

/// Rebuilds a node with its children transformed by `f`.
fn map_children(plan: &Plan, f: impl Fn(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } | Plan::Unit | Plan::Empty => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(f(input)),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(f(input)),
            columns: columns.clone(),
        },
        Plan::Extend { input, columns } => Plan::Extend {
            input: Box::new(f(input)),
            columns: columns.clone(),
        },
        Plan::AddIndex { input, id_attr } => Plan::AddIndex {
            input: Box::new(f(input)),
            id_attr: id_attr.clone(),
        },
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            strategy,
        } => Plan::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
            kind: *kind,
            strategy: *strategy,
        },
        Plan::Unnest {
            input,
            bag_attr,
            alias,
            outer,
            id_attr,
        } => Plan::Unnest {
            input: Box::new(f(input)),
            bag_attr: bag_attr.clone(),
            alias: alias.clone(),
            outer: *outer,
            id_attr: id_attr.clone(),
        },
        Plan::Nest {
            input,
            key,
            values,
            op,
        } => Plan::Nest {
            input: Box::new(f(input)),
            key: key.clone(),
            values: values.clone(),
            op: op.clone(),
        },
        Plan::Dedup { input } => Plan::Dedup {
            input: Box::new(f(input)),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
        },
        Plan::BagToDict { input } => Plan::BagToDict {
            input: Box::new(f(input)),
        },
        Plan::DictLookup {
            input,
            dict,
            label_attr,
            outer,
        } => Plan::DictLookup {
            input: Box::new(f(input)),
            dict: Box::new(f(dict)),
            label_attr: label_attr.clone(),
            outer: *outer,
        },
    }
}

/// Bottom-up rewriting: `f` may return a replacement for any node.
fn map_plan(plan: &Plan, f: &impl Fn(&Plan) -> Option<Plan>) -> Plan {
    let rebuilt = map_children(plan, |c| map_plan(c, f));
    f(&rebuilt).unwrap_or(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSchema;
    use trance_nrc::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "Lineitem",
            AttrSchema::flat(["l_orderkey", "l_partkey", "l_quantity", "l_comment"]),
        );
        c.register(
            "Part",
            AttrSchema::flat(["p_partkey", "p_name", "p_retailprice", "p_comment"]),
        );
        c
    }

    #[test]
    fn selection_is_pushed_below_projection_and_into_join_side() {
        let c = catalog();
        let plan = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .select(ScalarExpr::Cmp {
                op: trance_nrc::CmpOp::Gt,
                left: Box::new(ScalarExpr::col("p_retailprice")),
                right: Box::new(ScalarExpr::constant(Value::Real(10.0))),
            })
            .project_columns(&["l_orderkey", "p_name"]);
        let opt = optimize_default(&plan, &c);
        // The selection must now sit below the join, on the Part side.
        let mut found = false;
        opt.visit(&mut |p| {
            if let Plan::Join { right, .. } = p {
                if matches!(right.as_ref(), Plan::Select { .. })
                    || matches!(right.as_ref(), Plan::Project { input, .. } if matches!(input.as_ref(), Plan::Select { .. }))
                {
                    found = true;
                }
            }
        });
        assert!(
            found,
            "selection not pushed into the join's right side:\n{}",
            crate::plan::pretty_plan(&opt)
        );
    }

    #[test]
    fn selection_is_pushed_below_an_independent_extension() {
        let c = catalog();
        let plan = Plan::scan("Lineitem")
            .extend(vec![(
                "double_qty".into(),
                ScalarExpr::Prim {
                    op: trance_nrc::PrimOp::Add,
                    left: Box::new(ScalarExpr::col("l_quantity")),
                    right: Box::new(ScalarExpr::col("l_quantity")),
                },
            )])
            .select(ScalarExpr::Cmp {
                op: trance_nrc::CmpOp::Gt,
                left: Box::new(ScalarExpr::col("l_partkey")),
                right: Box::new(ScalarExpr::constant(Value::Int(3))),
            })
            .project_columns(&["l_orderkey", "double_qty"]);
        let opt = optimize_default(&plan, &c);
        let mut select_below_extend = false;
        opt.visit(&mut |p| {
            if let Plan::Extend { input, .. } = p {
                // The selection must have moved somewhere below the
                // extension (possibly under a pruning projection too).
                select_below_extend |= input.count(|n| matches!(n, Plan::Select { .. })) > 0;
            }
        });
        assert!(
            select_below_extend,
            "selection must commute below the extension:\n{}",
            crate::plan::pretty_plan(&opt)
        );
    }

    #[test]
    fn unused_columns_are_pruned_above_scans() {
        let c = catalog();
        let plan = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .project_columns(&["l_orderkey", "p_name"]);
        let opt = optimize_default(&plan, &c);
        // Neither comment column may survive anywhere in the plan.
        let mut pruned = true;
        opt.visit(&mut |p| {
            if let Plan::Project { columns, input } = p {
                if matches!(input.as_ref(), Plan::Scan { .. }) {
                    for (n, _) in columns {
                        if n.ends_with("comment") {
                            pruned = false;
                        }
                    }
                }
            }
        });
        let has_scan_projection = opt.count(|p| {
            matches!(p, Plan::Project { input, .. } if matches!(input.as_ref(), Plan::Scan { .. }))
        });
        assert!(
            has_scan_projection >= 2,
            "projections must be inserted above both scans"
        );
        assert!(pruned, "comment columns must be pruned");
    }

    #[test]
    fn unused_inner_attributes_are_pruned_above_unnests() {
        let mut c = Catalog::new();
        c.register(
            "COP",
            AttrSchema::flat(["cname", "ccomment"])
                .with_nested("corders", AttrSchema::flat(["odate", "ocomment", "total"])),
        );
        // for co in cop.corders keep only odate/total.
        let plan = Plan::scan_as("COP", "cop")
            .unnest_as("cop.corders", "co")
            .project(vec![
                ("cname".into(), ScalarExpr::col("cop.cname")),
                ("odate".into(), ScalarExpr::col("co.odate")),
                ("total".into(), ScalarExpr::col("co.total")),
            ]);
        let opt = optimize_default(&plan, &c);
        let mut unnest_pruned = false;
        opt.visit(&mut |p| {
            if let Plan::Project { columns, input } = p {
                if matches!(input.as_ref(), Plan::Unnest { .. }) {
                    let names: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
                    unnest_pruned = !names.contains(&"co.ocomment");
                }
            }
        });
        assert!(
            unnest_pruned,
            "unused unnested element attributes must be pruned:\n{}",
            crate::plan::pretty_plan(&opt)
        );
        // The scan is pruned too (ccomment unused; corders still needed).
        let mut scan_keeps_bag = false;
        opt.visit(&mut |p| {
            if let Plan::Project { columns, input } = p {
                if matches!(input.as_ref(), Plan::Scan { .. }) {
                    let names: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
                    scan_keeps_bag =
                        names.contains(&"cop.corders") && !names.contains(&"cop.ccomment");
                }
            }
        });
        assert!(scan_keeps_bag, "{}", crate::plan::pretty_plan(&opt));
    }

    #[test]
    fn sum_aggregate_is_pushed_below_the_join() {
        let c = catalog();
        // sum l_quantity per (l_orderkey, p_name) over Lineitem ⋈ Part.
        let plan = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .nest_sum(&["l_orderkey", "p_name"], &["l_quantity"]);
        let opt = optimize(
            &plan,
            &c,
            &OptimizerConfig {
                prune_columns: false,
                ..OptimizerConfig::default()
            },
        );
        // There must now be a NestSum below the join (partial sums).
        let mut partial_below_join = false;
        opt.visit(&mut |p| {
            if let Plan::Join { left, .. } = p {
                if matches!(
                    left.as_ref(),
                    Plan::Nest {
                        op: NestOp::Sum,
                        ..
                    }
                ) {
                    partial_below_join = true;
                }
            }
        });
        assert!(
            partial_below_join,
            "expected a partial Γ+ below the join:\n{}",
            crate::plan::pretty_plan(&opt)
        );
    }

    #[test]
    fn join_strategies_are_annotated_from_catalog_sizes() {
        let mut c = catalog();
        c.set_size("Lineitem", 1_000_000);
        c.set_size("Part", 512);
        let plan = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .project_columns(&["l_orderkey", "p_name"]);
        let cfg = OptimizerConfig {
            broadcast_limit: Some(4096),
            ..OptimizerConfig::default()
        };
        let opt = optimize(&plan, &c, &cfg);
        let mut strategy = None;
        opt.visit(&mut |p| {
            if let Plan::Join { strategy: s, .. } = p {
                strategy = Some(*s);
            }
        });
        assert_eq!(strategy, Some(JoinStrategy::Broadcast));

        // Both sides provably over the limit: shuffle.
        c.set_size("Part", 1_000_000);
        let plan2 = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .project_columns(&["l_orderkey", "p_name"]);
        let cfg2 = OptimizerConfig {
            broadcast_limit: Some(4096),
            prune_columns: false,
            ..OptimizerConfig::default()
        };
        let opt2 = optimize(&plan2, &c, &cfg2);
        let mut strategy2 = None;
        opt2.visit(&mut |p| {
            if let Plan::Join { strategy: s, .. } = p {
                strategy2 = Some(*s);
            }
        });
        assert_eq!(strategy2, Some(JoinStrategy::Shuffle));

        // Skew-aware pipelines annotate every join Skew.
        let skew_cfg = OptimizerConfig {
            skew_joins: true,
            ..OptimizerConfig::default()
        };
        let opt3 = optimize(&plan2, &c, &skew_cfg);
        let mut strategy3 = None;
        opt3.visit(&mut |p| {
            if let Plan::Join { strategy: s, .. } = p {
                strategy3 = Some(*s);
            }
        });
        assert_eq!(strategy3, Some(JoinStrategy::Skew));
    }

    #[test]
    fn optimizer_is_idempotent() {
        let c = catalog();
        let plan = Plan::scan("Lineitem")
            .join(
                Plan::scan("Part"),
                &["l_partkey"],
                &["p_partkey"],
                PlanJoinKind::Inner,
            )
            .project_columns(&["l_orderkey", "p_name"]);
        let once = optimize_default(&plan, &c);
        let twice = optimize_default(&once, &c);
        assert_eq!(once, twice);
    }
}
