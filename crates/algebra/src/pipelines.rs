//! Pipeline-breaker analysis: which plan operators fuse into a single
//! morsel-driven pass, and where a plan *must* materialize.
//!
//! A **row-local** operator (selection, projection, extension, id
//! assignment, unnest, scan renaming) consumes each input row independently:
//! a chain of them needs no shuffle and no barrier, so the physical
//! executors fuse every maximal chain into one batch-at-a-time closure and
//! drive it morsel-by-morsel over the source partitions (HyPer-style
//! pipelining). **Pipeline breakers** — joins, `Γ` groupings, dedup, union
//! and the shredded dictionary casts — end a chain: they repartition or need
//! all rows of a group before emitting.
//!
//! [`fuse_chain`] performs the split; [`pretty_plan_pipelines`] is the
//! EXPLAIN rendering that marks each operator with the pipeline it belongs
//! to (`·p0`, `·p1`, …), so the plan output stays truthful about what
//! actually runs fused.

use crate::plan::{node_line, Plan};

/// True for operators that process rows locally (no shuffle, no barrier) —
/// the members of fused pipelines.
pub fn is_row_local(plan: &Plan) -> bool {
    matches!(
        plan,
        Plan::Select { .. }
            | Plan::Project { .. }
            | Plan::Extend { .. }
            | Plan::AddIndex { .. }
            | Plan::Unnest { .. }
    )
}

/// True when a fused chain containing this operator must drive each
/// partition's morsels **sequentially**: unique-id assignment needs a
/// running per-partition row offset to reproduce the staged executor's
/// `partition + row * stride` numbering.
pub fn needs_sequential(plan: &Plan) -> bool {
    matches!(
        plan,
        Plan::AddIndex { .. }
            | Plan::Unnest {
                outer: true,
                id_attr: Some(_),
                ..
            }
    )
}

/// Splits `plan` at its topmost pipeline: the maximal chain of row-local
/// operators ending at `plan`, in **execution order** (source side first),
/// plus the source sub-plan the chain consumes. The source is a pipeline
/// breaker, a scan or a constant; when `plan` itself is not row-local the
/// chain is empty and `plan` is its own source.
pub fn fuse_chain(plan: &Plan) -> (Vec<&Plan>, &Plan) {
    let mut chain = Vec::new();
    let mut cur = plan;
    while is_row_local(cur) {
        chain.push(cur);
        cur = match cur {
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Extend { input, .. }
            | Plan::AddIndex { input, .. }
            | Plan::Unnest { input, .. } => input,
            _ => unreachable!("row-local operators are unary"),
        };
    }
    chain.reverse();
    (chain, cur)
}

/// Short operator name used in pipeline labels and member lists.
pub fn pipeline_op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "scan",
        Plan::Select { .. } => "select",
        Plan::Project { .. } => "project",
        Plan::Extend { .. } => "extend",
        Plan::AddIndex { .. } => "add_index",
        Plan::Unnest { outer: true, .. } => "outer_unnest",
        Plan::Unnest { .. } => "unnest",
        Plan::Unit => "unit",
        Plan::Empty => "empty",
        Plan::Join { .. } => "join",
        Plan::Nest { .. } => "nest",
        Plan::Dedup { .. } => "dedup",
        Plan::Union { .. } => "union",
        Plan::BagToDict { .. } => "bag_to_dict",
        Plan::DictLookup { .. } => "dict_lookup",
    }
}

/// The stats label of a fused pipeline, e.g. `pipeline[scan+select+project]`.
pub fn pipeline_label(ops: &[String]) -> String {
    format!("pipeline[{}]", ops.join("+"))
}

/// Renders a plan like [`crate::pretty_plan`], additionally marking every
/// fused-pipeline member with its pipeline id (`·p0`, `·p1`, … in execution
/// order of the chains' *top* operators). An aliased or bare scan under a
/// chain belongs to that chain's pipeline (the executors fuse the scan
/// rename); breakers carry no marker — they are where the plan
/// materializes.
pub fn pretty_plan_pipelines(plan: &Plan) -> String {
    fn go(plan: &Plan, depth: usize, inherited: Option<usize>, next: &mut usize, out: &mut String) {
        let member = is_row_local(plan) || matches!(plan, Plan::Scan { .. });
        let pid = if member {
            Some(inherited.unwrap_or_else(|| {
                let id = *next;
                *next += 1;
                id
            }))
        } else {
            None
        };
        out.push_str(&"  ".repeat(depth));
        out.push_str(&node_line(plan));
        if let Some(pid) = pid {
            out.push_str(&format!("  ·p{pid}"));
        }
        out.push('\n');
        for child in plan.children() {
            // A row-local operator extends its pipeline into its single
            // input (when that input is row-local or a scan); a breaker's
            // children start fresh pipelines.
            let pass = match (pid, is_row_local(plan)) {
                (Some(pid), true) if is_row_local(child) || matches!(child, Plan::Scan { .. }) => {
                    Some(pid)
                }
                _ => None,
            };
            go(child, depth + 1, pass, next, out);
        }
    }
    let mut out = String::new();
    go(plan, 0, None, &mut 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanJoinKind;

    fn chain_names(plan: &Plan) -> Vec<&'static str> {
        fuse_chain(plan)
            .0
            .into_iter()
            .map(pipeline_op_name)
            .collect()
    }

    #[test]
    fn fuse_chain_groups_row_local_ops_and_stops_at_breakers() {
        let plan = Plan::scan_as("R", "x")
            .select(crate::ScalarExpr::col("x.a"))
            .extend(vec![("y".into(), crate::ScalarExpr::col("x.b"))])
            .unnest("x.items")
            .project_columns(&["x.a"]);
        let (chain, source) = fuse_chain(&plan);
        assert_eq!(
            chain
                .iter()
                .map(|p| pipeline_op_name(p))
                .collect::<Vec<_>>(),
            vec!["select", "extend", "unnest", "project"],
            "chain must be in execution order, source side first"
        );
        assert!(matches!(source, Plan::Scan { .. }));

        let joined = plan
            .clone()
            .join(Plan::scan("S"), &["x.a"], &["a"], PlanJoinKind::Inner);
        let above = joined.clone().select(crate::ScalarExpr::col("x.a"));
        let (chain, source) = fuse_chain(&above);
        assert_eq!(chain.len(), 1, "the join breaks the pipeline");
        assert!(matches!(source, Plan::Join { .. }));

        // A breaker is its own (empty-chain) source.
        let (chain, source) = fuse_chain(&joined);
        assert!(chain.is_empty());
        assert!(std::ptr::eq(source, &joined));
        assert_eq!(chain_names(&Plan::scan("R")), Vec::<&str>::new());
    }

    #[test]
    fn sequential_detection_flags_id_assigning_ops() {
        let p = Plan::scan("R").add_index("__id");
        assert!(needs_sequential(fuse_chain(&p).0[0]));
        let p = Plan::scan("R").outer_unnest("items", "__id");
        assert!(needs_sequential(fuse_chain(&p).0[0]));
        let p = Plan::scan("R").unnest("items");
        assert!(!needs_sequential(fuse_chain(&p).0[0]));
        let p = Plan::scan("R").select(crate::ScalarExpr::col("a"));
        assert!(!needs_sequential(fuse_chain(&p).0[0]));
    }

    #[test]
    fn pretty_plan_marks_pipeline_groups() {
        let plan = Plan::scan_as("R", "x")
            .select(crate::ScalarExpr::col("x.a"))
            .join(
                Plan::scan_as("S", "y").unnest("y.items"),
                &["x.a"],
                &["y.a"],
                PlanJoinKind::Inner,
            )
            .project_columns(&["x.a"]);
        let s = pretty_plan_pipelines(&plan);
        // The projection above the join is one pipeline; each join input is
        // its own; the join itself carries no marker.
        assert!(s.contains("Project [x.a]  ·p0"), "{s}");
        assert!(s.contains("Select x.a  ·p1"), "{s}");
        assert!(s.contains("Scan R as x  ·p1"), "{s}");
        assert!(s.contains("Unnest y.items  ·p2"), "{s}");
        assert!(s.contains("Scan S as y  ·p2"), "{s}");
        let join_line = s.lines().find(|l| l.contains("Join")).unwrap();
        assert!(!join_line.contains("·p"), "breakers carry no marker: {s}");
    }

    #[test]
    fn pipeline_labels_compose_member_ops() {
        assert_eq!(
            pipeline_label(&["scan".into(), "select".into(), "project".into()]),
            "pipeline[scan+select+project]"
        );
    }
}
