//! The plan language (Section 2): the algebraic operators the unnesting
//! algorithm targets, variants of the intermediate object algebra of
//! Fegaras & Maier used by the paper.
//!
//! Plans are produced by [`crate::lower`], rewritten by [`crate::optimize`],
//! and interpreted on the distributed engine by `trance-compiler`'s physical
//! executor. Attribute names in a lowered plan follow the flattened-stream
//! convention of the unnesting algorithm: a [`Plan::Scan`] or [`Plan::Unnest`]
//! carrying an `alias` renames the fields it introduces to `alias.field`.

use std::collections::BTreeSet;

use crate::scalar::ScalarExpr;

/// Join flavour at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanJoinKind {
    /// Inner equi-join `⋈`.
    Inner,
    /// Left-outer equi-join `⟕` generated when compiling at a non-root
    /// nesting level.
    LeftOuter,
}

/// The physical join strategy the optimizer selected for a [`Plan::Join`].
///
/// `Auto` defers the broadcast-vs-shuffle decision to the engine's runtime
/// size check; the optimizer upgrades it to `Broadcast` / `Shuffle` when the
/// catalog's size information makes the choice provable, and to `Skew` when
/// the pipeline requests skew-aware execution (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Decide broadcast vs. shuffle from actual side sizes at runtime.
    #[default]
    Auto,
    /// Replicate the right side to every worker (provably under the
    /// broadcast limit).
    Broadcast,
    /// Shuffle both sides by key hash (provably neither side fits).
    Shuffle,
    /// Skew-aware execution: sampled heavy keys broadcast, light keys
    /// shuffled.
    Skew,
}

impl JoinStrategy {
    /// Short label used by EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::Auto => "auto",
            JoinStrategy::Broadcast => "broadcast",
            JoinStrategy::Shuffle => "shuffle",
            JoinStrategy::Skew => "skew",
        }
    }
}

/// Aggregate flavour of the nest operator `Γ`.
#[derive(Debug, Clone, PartialEq)]
pub enum NestOp {
    /// `Γ⊎`: collect the `values` attributes of each group into a bag-valued
    /// attribute named `group_attr` (NULLs become the empty bag).
    Bag {
        /// Name of the produced bag-valued attribute.
        group_attr: String,
    },
    /// `Γ+`: sum the `values` attributes within each group (NULLs become 0).
    Sum,
}

/// A node of the query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan of a named input collection (top-level bag, materialized
    /// dictionary, or a materialized intermediate assignment).
    Scan {
        /// The input's name in the catalog.
        name: String,
        /// When set, fields of scanned tuples are renamed to `alias.field`
        /// (non-tuple rows become a single `alias.__value` attribute) — the
        /// flattened-stream naming of the unnesting algorithm.
        alias: Option<String>,
    },
    /// A single empty tuple — the unit input of a constant singleton bag.
    Unit,
    /// The empty collection (lowered from `∅`).
    Empty,
    /// Selection `σ`.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Filter predicate.
        predicate: ScalarExpr,
    },
    /// Projection `π` (also used for renaming and pruning columns).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs.
        columns: Vec<(String, ScalarExpr)>,
    },
    /// Map-style projection that adds (or overwrites) computed columns and
    /// keeps every other attribute of the row — the lowering's tuple
    /// construction step over a flattened stream.
    Extend {
        /// Input plan.
        input: Box<Plan>,
        /// `(attribute, expression)` pairs set on every row, in order.
        columns: Vec<(String, ScalarExpr)>,
    },
    /// Attaches a globally unique integer under `id_attr` to every row —
    /// the fresh parent identifier the unnesting algorithm introduces before
    /// compiling a nested output level.
    AddIndex {
        /// Input plan.
        input: Box<Plan>,
        /// Name of the generated identifier attribute.
        id_attr: String,
    },
    /// Equi-join `⋈` / left-outer equi-join `⟕`. Empty key lists denote a
    /// cross product (every pair of rows matches).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key attributes of the left input.
        left_key: Vec<String>,
        /// Join key attributes of the right input.
        right_key: Vec<String>,
        /// Inner or left-outer.
        kind: PlanJoinKind,
        /// Physical strategy chosen by the optimizer.
        strategy: JoinStrategy,
    },
    /// Unnest `µ` / outer-unnest `µ̄` of a bag-valued attribute.
    Unnest {
        /// Input plan.
        input: Box<Plan>,
        /// The bag-valued attribute to flatten.
        bag_attr: String,
        /// When set, fields of the flattened elements are renamed to
        /// `alias.field` (non-tuple elements become `alias.__value`).
        alias: Option<String>,
        /// When true this is the outer variant: the parent tuple is kept even
        /// if the bag is empty (inner attributes become NULL) and a unique
        /// parent identifier `id_attr` is attached.
        outer: bool,
        /// Name of the generated parent-identifier attribute (outer variant).
        id_attr: Option<String>,
    },
    /// Nest `Γ⊎` / `Γ+`.
    Nest {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping attributes.
        key: Vec<String>,
        /// Attributes grouped or summed.
        values: Vec<String>,
        /// Bag-collecting or summing flavour.
        op: NestOp,
    },
    /// Duplicate elimination.
    Dedup {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Additive union of two inputs with identical schemas.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Casts a bag of `⟨label, value⟩` rows into a dictionary with a
    /// label-based partitioning guarantee (shredded pipeline only).
    BagToDict {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Looks up every row's `label_attr` in a materialized dictionary and
    /// pairs the row with each element of the found `value` bag. Translated
    /// to an outer join on `label` followed by a flatten — the shredded
    /// pipeline's workhorse.
    DictLookup {
        /// The plan producing rows containing `label_attr`.
        input: Box<Plan>,
        /// The plan producing the materialized dictionary.
        dict: Box<Plan>,
        /// The label-valued attribute of `input` rows.
        label_attr: String,
        /// Whether rows whose label finds no entry survive (outer semantics).
        outer: bool,
    },
}

impl Plan {
    /// Scan of a named input (fields keep their original names).
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan {
            name: name.into(),
            alias: None,
        }
    }

    /// Scan of a named input bound to an iteration variable: fields are
    /// renamed to `alias.field`, the flattened-stream convention.
    pub fn scan_as(name: impl Into<String>, alias: impl Into<String>) -> Plan {
        Plan::Scan {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// Wraps this plan in a selection.
    pub fn select(self, predicate: ScalarExpr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps this plan in a projection.
    pub fn project(self, columns: Vec<(String, ScalarExpr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Wraps this plan in a projection that keeps the named columns as-is.
    pub fn project_columns(self, names: &[&str]) -> Plan {
        self.project(
            names
                .iter()
                .map(|n| (n.to_string(), ScalarExpr::col(*n)))
                .collect(),
        )
    }

    /// Wraps this plan in an [`Plan::Extend`] computing the given columns.
    pub fn extend(self, columns: Vec<(String, ScalarExpr)>) -> Plan {
        Plan::Extend {
            input: Box::new(self),
            columns,
        }
    }

    /// Wraps this plan in an [`Plan::AddIndex`] generating `id_attr`.
    pub fn add_index(self, id_attr: impl Into<String>) -> Plan {
        Plan::AddIndex {
            input: Box::new(self),
            id_attr: id_attr.into(),
        }
    }

    /// Joins this plan with `right` (strategy left to the optimizer).
    pub fn join(
        self,
        right: Plan,
        left_key: &[&str],
        right_key: &[&str],
        kind: PlanJoinKind,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.iter().map(|s| s.to_string()).collect(),
            right_key: right_key.iter().map(|s| s.to_string()).collect(),
            kind,
            strategy: JoinStrategy::Auto,
        }
    }

    /// Unnests a bag-valued attribute (inner variant, no renaming).
    pub fn unnest(self, bag_attr: impl Into<String>) -> Plan {
        Plan::Unnest {
            input: Box::new(self),
            bag_attr: bag_attr.into(),
            alias: None,
            outer: false,
            id_attr: None,
        }
    }

    /// Unnests a bag-valued attribute, renaming the flattened element fields
    /// to `alias.field` (the lowering's `for var in x.bag`).
    pub fn unnest_as(self, bag_attr: impl Into<String>, alias: impl Into<String>) -> Plan {
        Plan::Unnest {
            input: Box::new(self),
            bag_attr: bag_attr.into(),
            alias: Some(alias.into()),
            outer: false,
            id_attr: None,
        }
    }

    /// Outer-unnests a bag-valued attribute, attaching `id_attr` as the parent
    /// identifier.
    pub fn outer_unnest(self, bag_attr: impl Into<String>, id_attr: impl Into<String>) -> Plan {
        Plan::Unnest {
            input: Box::new(self),
            bag_attr: bag_attr.into(),
            alias: None,
            outer: true,
            id_attr: Some(id_attr.into()),
        }
    }

    /// Wraps this plan in a bag-collecting nest `Γ⊎`.
    pub fn nest_bag(self, key: &[&str], values: &[&str], group_attr: impl Into<String>) -> Plan {
        Plan::Nest {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            values: values.iter().map(|s| s.to_string()).collect(),
            op: NestOp::Bag {
                group_attr: group_attr.into(),
            },
        }
    }

    /// Wraps this plan in a summing nest `Γ+`.
    pub fn nest_sum(self, key: &[&str], values: &[&str]) -> Plan {
        Plan::Nest {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            values: values.iter().map(|s| s.to_string()).collect(),
            op: NestOp::Sum,
        }
    }

    /// Wraps this plan in duplicate elimination.
    pub fn dedup(self) -> Plan {
        Plan::Dedup {
            input: Box::new(self),
        }
    }

    /// Children of this node, in order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::Unit | Plan::Empty => vec![],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Extend { input, .. }
            | Plan::AddIndex { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Dedup { input }
            | Plan::BagToDict { input } => vec![input],
            Plan::Join { left, right, .. } | Plan::Union { left, right } => vec![left, right],
            Plan::DictLookup { input, dict, .. } => vec![input, dict],
        }
    }

    /// Names of all scanned inputs below (and including) this node.
    pub fn scanned_inputs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |p| {
            if let Plan::Scan { name, .. } = p {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Number of operators of a particular shape, as judged by `pred`.
    pub fn count(&self, pred: impl Fn(&Plan) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if pred(p) {
                n += 1;
            }
        });
        n
    }
}

/// One line of the rendered operator tree for `plan` (without children).
pub(crate) fn node_line(plan: &Plan) -> String {
    match plan {
        Plan::Scan { name, alias } => match alias {
            Some(a) => format!("Scan {name} as {a}"),
            None => format!("Scan {name}"),
        },
        Plan::Unit => "Unit".to_string(),
        Plan::Empty => "Empty".to_string(),
        Plan::Select { predicate, .. } => format!("Select {}", predicate.display()),
        Plan::Project { columns, input } => {
            let cols = columns
                .iter()
                .map(|(n, e)| {
                    if e == &ScalarExpr::col(n.clone()) {
                        n.clone()
                    } else {
                        format!("{n}:={}", e.display())
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            // A pass-through projection directly above a source operator is a
            // pruning projection inserted by the optimizer: say so.
            let pruning = columns
                .iter()
                .all(|(n, e)| e == &ScalarExpr::col(n.clone()))
                && matches!(input.as_ref(), Plan::Scan { .. } | Plan::Unnest { .. });
            if pruning {
                format!("Prune [{cols}]")
            } else {
                format!("Project [{cols}]")
            }
        }
        Plan::Extend { columns, .. } => format!(
            "Extend [{}]",
            columns
                .iter()
                .map(|(n, e)| format!("{n}:={}", e.display()))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Plan::AddIndex { id_attr, .. } => format!("AddIndex {id_attr}"),
        Plan::Join {
            left_key,
            right_key,
            kind,
            strategy,
            ..
        } => {
            let keys = if left_key.is_empty() {
                "cross".to_string()
            } else {
                format!("on {} = {}", left_key.join(","), right_key.join(","))
            };
            format!(
                "{} {keys} [{}]",
                match kind {
                    PlanJoinKind::Inner => "Join",
                    PlanJoinKind::LeftOuter => "OuterJoin",
                },
                strategy.label(),
            )
        }
        Plan::Unnest {
            bag_attr,
            alias,
            outer,
            ..
        } => {
            let head = if *outer { "OuterUnnest" } else { "Unnest" };
            match alias {
                Some(a) => format!("{head} {bag_attr} as {a}"),
                None => format!("{head} {bag_attr}"),
            }
        }
        Plan::Nest {
            key, values, op, ..
        } => match op {
            NestOp::Bag { group_attr } => format!(
                "NestBag key=[{}] values=[{}] as {group_attr}",
                key.join(","),
                values.join(",")
            ),
            NestOp::Sum => format!(
                "NestSum key=[{}] values=[{}]",
                key.join(","),
                values.join(",")
            ),
        },
        Plan::Dedup { .. } => "Dedup".to_string(),
        Plan::Union { .. } => "Union".to_string(),
        Plan::BagToDict { .. } => "BagToDict".to_string(),
        Plan::DictLookup {
            label_attr, outer, ..
        } => format!(
            "DictLookup on {label_attr}{}",
            if *outer { " (outer)" } else { "" }
        ),
    }
}

/// Renders a plan as an indented operator tree (children below parents), in
/// the spirit of Figure 3. Pruning projections and chosen join strategies are
/// called out inline, which makes this the EXPLAIN rendering as well.
pub fn pretty_plan(plan: &Plan) -> String {
    fn go(plan: &Plan, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&node_line(plan));
        out.push('\n');
        for c in plan.children() {
            go(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(plan, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_plan() -> Plan {
        // The running example's standard plan skeleton (Figure 3).
        Plan::scan("COP")
            .outer_unnest("corders", "copID")
            .outer_unnest("oparts", "coID")
            .join(
                Plan::scan("Part"),
                &["pid"],
                &["pid"],
                PlanJoinKind::LeftOuter,
            )
            .nest_sum(&["copID", "coID", "cname", "odate", "pname"], &["total"])
            .nest_bag(
                &["copID", "coID", "cname", "odate"],
                &["pname", "total"],
                "oparts",
            )
            .nest_bag(&["copID", "cname"], &["odate", "oparts"], "corders")
            .project_columns(&["cname", "corders"])
    }

    #[test]
    fn plan_builders_and_traversal() {
        let p = example_plan();
        assert_eq!(p.scanned_inputs().len(), 2);
        assert!(p.size() >= 8);
        assert_eq!(p.count(|n| matches!(n, Plan::Nest { .. })), 3);
        assert_eq!(p.count(|n| matches!(n, Plan::Unnest { .. })), 2);
    }

    #[test]
    fn pretty_plan_shows_operator_tree() {
        let s = pretty_plan(&example_plan());
        assert!(s.contains("OuterUnnest corders"));
        assert!(s.contains("NestSum"));
        assert!(s.contains("Scan COP"));
        assert!(s.contains("OuterJoin on pid = pid"));
        // Children are indented deeper than parents.
        let proj_line = s.lines().next().unwrap();
        assert!(proj_line.starts_with("Project"));
    }

    #[test]
    fn pretty_plan_labels_strategies_and_aliases() {
        let p = Plan::scan_as("Part", "p").join(
            Plan::scan("Small"),
            &["p.pid"],
            &["pid"],
            PlanJoinKind::Inner,
        );
        let p = match p {
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
                kind,
                ..
            } => Plan::Join {
                left,
                right,
                left_key,
                right_key,
                kind,
                strategy: JoinStrategy::Broadcast,
            },
            other => other,
        };
        let s = pretty_plan(&p);
        assert!(s.contains("[broadcast]"), "{s}");
        assert!(s.contains("Scan Part as p"), "{s}");
    }
}
