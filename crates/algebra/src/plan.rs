//! The plan language (Section 2): the algebraic operators the unnesting
//! algorithm targets, variants of the intermediate object algebra of
//! Fegaras & Maier used by the paper.

use std::collections::BTreeSet;

use crate::scalar::ScalarExpr;

/// Join flavour at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanJoinKind {
    /// Inner equi-join `⋈`.
    Inner,
    /// Left-outer equi-join `⟕` generated when compiling at a non-root
    /// nesting level.
    LeftOuter,
}

/// Aggregate flavour of the nest operator `Γ`.
#[derive(Debug, Clone, PartialEq)]
pub enum NestOp {
    /// `Γ⊎`: collect the `values` attributes of each group into a bag-valued
    /// attribute named `group_attr` (NULLs become the empty bag).
    Bag {
        /// Name of the produced bag-valued attribute.
        group_attr: String,
    },
    /// `Γ+`: sum the `values` attributes within each group (NULLs become 0).
    Sum,
}

/// A node of the query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan of a named input collection (top-level bag or materialized
    /// dictionary).
    Scan {
        /// The input's name in the catalog.
        name: String,
    },
    /// Selection `σ`.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Filter predicate.
        predicate: ScalarExpr,
    },
    /// Projection `π` (also used for renaming and computing derived columns).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs.
        columns: Vec<(String, ScalarExpr)>,
    },
    /// Equi-join `⋈` / left-outer equi-join `⟕`.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key attributes of the left input.
        left_key: Vec<String>,
        /// Join key attributes of the right input.
        right_key: Vec<String>,
        /// Inner or left-outer.
        kind: PlanJoinKind,
    },
    /// Unnest `µ` / outer-unnest `µ̄` of a bag-valued attribute.
    Unnest {
        /// Input plan.
        input: Box<Plan>,
        /// The bag-valued attribute to flatten.
        bag_attr: String,
        /// When true this is the outer variant: the parent tuple is kept even
        /// if the bag is empty (inner attributes become NULL) and a unique
        /// parent identifier `id_attr` is attached.
        outer: bool,
        /// Name of the generated parent-identifier attribute (outer variant).
        id_attr: Option<String>,
    },
    /// Nest `Γ⊎` / `Γ+`.
    Nest {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping attributes.
        key: Vec<String>,
        /// Attributes grouped or summed.
        values: Vec<String>,
        /// Bag-collecting or summing flavour.
        op: NestOp,
    },
    /// Duplicate elimination.
    Dedup {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Additive union of two inputs with identical schemas.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Casts a bag of `⟨label, value⟩` rows into a dictionary with a
    /// label-based partitioning guarantee (shredded pipeline only).
    BagToDict {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Looks up every row's `label_attr` in a materialized dictionary and
    /// pairs the row with each element of the found `value` bag. Translated
    /// to an outer join on `label` followed by a flatten — the shredded
    /// pipeline's workhorse.
    DictLookup {
        /// The plan producing rows containing `label_attr`.
        input: Box<Plan>,
        /// The plan producing the materialized dictionary.
        dict: Box<Plan>,
        /// The label-valued attribute of `input` rows.
        label_attr: String,
        /// Whether rows whose label finds no entry survive (outer semantics).
        outer: bool,
    },
}

impl Plan {
    /// Scan of a named input.
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan { name: name.into() }
    }

    /// Wraps this plan in a selection.
    pub fn select(self, predicate: ScalarExpr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps this plan in a projection.
    pub fn project(self, columns: Vec<(String, ScalarExpr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Wraps this plan in a projection that keeps the named columns as-is.
    pub fn project_columns(self, names: &[&str]) -> Plan {
        self.project(
            names
                .iter()
                .map(|n| (n.to_string(), ScalarExpr::col(*n)))
                .collect(),
        )
    }

    /// Joins this plan with `right`.
    pub fn join(
        self,
        right: Plan,
        left_key: &[&str],
        right_key: &[&str],
        kind: PlanJoinKind,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.iter().map(|s| s.to_string()).collect(),
            right_key: right_key.iter().map(|s| s.to_string()).collect(),
            kind,
        }
    }

    /// Unnests a bag-valued attribute (inner variant).
    pub fn unnest(self, bag_attr: impl Into<String>) -> Plan {
        Plan::Unnest {
            input: Box::new(self),
            bag_attr: bag_attr.into(),
            outer: false,
            id_attr: None,
        }
    }

    /// Outer-unnests a bag-valued attribute, attaching `id_attr` as the parent
    /// identifier.
    pub fn outer_unnest(self, bag_attr: impl Into<String>, id_attr: impl Into<String>) -> Plan {
        Plan::Unnest {
            input: Box::new(self),
            bag_attr: bag_attr.into(),
            outer: true,
            id_attr: Some(id_attr.into()),
        }
    }

    /// Wraps this plan in a bag-collecting nest `Γ⊎`.
    pub fn nest_bag(self, key: &[&str], values: &[&str], group_attr: impl Into<String>) -> Plan {
        Plan::Nest {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            values: values.iter().map(|s| s.to_string()).collect(),
            op: NestOp::Bag {
                group_attr: group_attr.into(),
            },
        }
    }

    /// Wraps this plan in a summing nest `Γ+`.
    pub fn nest_sum(self, key: &[&str], values: &[&str]) -> Plan {
        Plan::Nest {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            values: values.iter().map(|s| s.to_string()).collect(),
            op: NestOp::Sum,
        }
    }

    /// Wraps this plan in duplicate elimination.
    pub fn dedup(self) -> Plan {
        Plan::Dedup {
            input: Box::new(self),
        }
    }

    /// Children of this node, in order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Dedup { input }
            | Plan::BagToDict { input } => vec![input],
            Plan::Join { left, right, .. } | Plan::Union { left, right } => vec![left, right],
            Plan::DictLookup { input, dict, .. } => vec![input, dict],
        }
    }

    /// Names of all scanned inputs below (and including) this node.
    pub fn scanned_inputs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |p| {
            if let Plan::Scan { name } = p {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Number of operators of a particular shape, as judged by `pred`.
    pub fn count(&self, pred: impl Fn(&Plan) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if pred(p) {
                n += 1;
            }
        });
        n
    }
}

/// Renders a plan as an indented operator tree (children below parents), in
/// the spirit of Figure 3.
pub fn pretty_plan(plan: &Plan) -> String {
    fn go(plan: &Plan, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match plan {
            Plan::Scan { name } => format!("Scan {name}"),
            Plan::Select { predicate, .. } => format!("Select {}", predicate.display()),
            Plan::Project { columns, .. } => format!(
                "Project [{}]",
                columns
                    .iter()
                    .map(|(n, e)| if e == &ScalarExpr::col(n.clone()) {
                        n.clone()
                    } else {
                        format!("{n}:={}", e.display())
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Plan::Join {
                left_key,
                right_key,
                kind,
                ..
            } => format!(
                "{} on {} = {}",
                match kind {
                    PlanJoinKind::Inner => "Join",
                    PlanJoinKind::LeftOuter => "OuterJoin",
                },
                left_key.join(","),
                right_key.join(",")
            ),
            Plan::Unnest {
                bag_attr, outer, ..
            } => format!(
                "{} {bag_attr}",
                if *outer { "OuterUnnest" } else { "Unnest" }
            ),
            Plan::Nest {
                key, values, op, ..
            } => match op {
                NestOp::Bag { group_attr } => format!(
                    "NestBag key=[{}] values=[{}] as {group_attr}",
                    key.join(","),
                    values.join(",")
                ),
                NestOp::Sum => format!(
                    "NestSum key=[{}] values=[{}]",
                    key.join(","),
                    values.join(",")
                ),
            },
            Plan::Dedup { .. } => "Dedup".to_string(),
            Plan::Union { .. } => "Union".to_string(),
            Plan::BagToDict { .. } => "BagToDict".to_string(),
            Plan::DictLookup {
                label_attr, outer, ..
            } => format!(
                "DictLookup on {label_attr}{}",
                if *outer { " (outer)" } else { "" }
            ),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in plan.children() {
            go(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(plan, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_plan() -> Plan {
        // The running example's standard plan skeleton (Figure 3).
        Plan::scan("COP")
            .outer_unnest("corders", "copID")
            .outer_unnest("oparts", "coID")
            .join(
                Plan::scan("Part"),
                &["pid"],
                &["pid"],
                PlanJoinKind::LeftOuter,
            )
            .nest_sum(&["copID", "coID", "cname", "odate", "pname"], &["total"])
            .nest_bag(
                &["copID", "coID", "cname", "odate"],
                &["pname", "total"],
                "oparts",
            )
            .nest_bag(&["copID", "cname"], &["odate", "oparts"], "corders")
            .project_columns(&["cname", "corders"])
    }

    #[test]
    fn plan_builders_and_traversal() {
        let p = example_plan();
        assert_eq!(p.scanned_inputs().len(), 2);
        assert!(p.size() >= 8);
        assert_eq!(p.count(|n| matches!(n, Plan::Nest { .. })), 3);
        assert_eq!(p.count(|n| matches!(n, Plan::Unnest { .. })), 2);
    }

    #[test]
    fn pretty_plan_shows_operator_tree() {
        let s = pretty_plan(&example_plan());
        assert!(s.contains("OuterUnnest corders"));
        assert!(s.contains("NestSum"));
        assert!(s.contains("Scan COP"));
        assert!(s.contains("OuterJoin on pid = pid"));
        // Children are indented deeper than parents.
        let proj_line = s.lines().next().unwrap();
        assert!(proj_line.starts_with("Project"));
    }
}
