//! Row-level scalar expressions used by plan operators (selection predicates,
//! projection columns, join keys).

use std::collections::BTreeSet;

use trance_nrc::{CmpOp, Label, NrcError, PrimOp, Result, Tuple, Value};

/// A scalar expression evaluated against a single row (tuple).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to a column of the row.
    Col(String),
    /// A constant value.
    Const(Value),
    /// Binary arithmetic.
    Prim {
        /// The operator.
        op: PrimOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Comparison.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
    /// True when the operand evaluates to NULL (used to filter outer-join
    /// mismatches).
    IsNull(Box<ScalarExpr>),
    /// The first operand unless it evaluates to NULL, else the second. Used
    /// by the lowering to turn the NULL a left-outer join leaves on an
    /// unmatched nesting level into the empty bag (`Γ⊎` semantics).
    Coalesce(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Construct a label capturing the named columns (shredded plans).
    NewLabel {
        /// Label construction site.
        site: u32,
        /// `(capture name, column expression)` pairs.
        captures: Vec<(String, ScalarExpr)>,
    },
    /// Extract the `index`-th captured value out of a label-valued operand
    /// (the plan-level counterpart of `match l = NewLabel(x…)`).
    LabelCapture {
        /// The label-valued operand.
        label: Box<ScalarExpr>,
        /// Position of the capture to extract.
        index: usize,
    },
}

impl ScalarExpr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Col(name.into())
    }

    /// Constant.
    pub fn constant(v: Value) -> Self {
        ScalarExpr::Const(v)
    }

    /// Equality between two columns.
    pub fn col_eq(a: impl Into<String>, b: impl Into<String>) -> Self {
        ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(ScalarExpr::col(a)),
            right: Box::new(ScalarExpr::col(b)),
        }
    }

    /// Evaluates the expression against `row`.
    ///
    /// A column absent from the row evaluates to NULL — plan streams follow
    /// the outer-join convention where missing attributes stand for NULL.
    pub fn eval(&self, row: &Tuple) -> Result<Value> {
        match self {
            ScalarExpr::Col(name) => Ok(row.get(name).cloned().unwrap_or(Value::Null)),
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Prim { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if matches!(l, Value::Null) || matches!(r, Value::Null) {
                    return Ok(Value::Null);
                }
                match op {
                    PrimOp::Add if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                        Ok(Value::Int(l.as_int()? + r.as_int()?))
                    }
                    PrimOp::Sub if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                        Ok(Value::Int(l.as_int()? - r.as_int()?))
                    }
                    PrimOp::Mul if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                        Ok(Value::Int(l.as_int()? * r.as_int()?))
                    }
                    PrimOp::Add => Ok(Value::Real(l.as_real()? + r.as_real()?)),
                    PrimOp::Sub => Ok(Value::Real(l.as_real()? - r.as_real()?)),
                    PrimOp::Mul => Ok(Value::Real(l.as_real()? * r.as_real()?)),
                    PrimOp::Div => {
                        let d = r.as_real()?;
                        if d == 0.0 {
                            return Err(NrcError::DivisionByZero);
                        }
                        Ok(Value::Real(l.as_real()? / d))
                    }
                }
            }
            ScalarExpr::Cmp { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if matches!(l, Value::Null) || matches!(r, Value::Null) {
                    // NULL never matches (outer-join mismatch rows must not
                    // satisfy join/filter predicates).
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(op.eval(l.cmp(&r))))
            }
            ScalarExpr::And(a, b) => Ok(Value::Bool(
                a.eval(row)?.as_bool()? && b.eval(row)?.as_bool()?,
            )),
            ScalarExpr::Or(a, b) => Ok(Value::Bool(
                a.eval(row)?.as_bool()? || b.eval(row)?.as_bool()?,
            )),
            ScalarExpr::Not(e) => Ok(Value::Bool(!e.eval(row)?.as_bool()?)),
            ScalarExpr::IsNull(e) => Ok(Value::Bool(matches!(e.eval(row)?, Value::Null))),
            ScalarExpr::Coalesce(a, b) => match a.eval(row)? {
                Value::Null => b.eval(row),
                v => Ok(v),
            },
            ScalarExpr::NewLabel { site, captures } => {
                let mut vals = Vec::with_capacity(captures.len());
                for (_, e) in captures {
                    vals.push(e.eval(row)?);
                }
                Ok(Value::Label(Label::new(*site, vals)))
            }
            ScalarExpr::LabelCapture { label, index } => {
                let v = label.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Label(l) => Ok(l.values.get(*index).cloned().unwrap_or(Value::Null)),
                    other => Err(NrcError::TypeMismatch {
                        expected: "label".into(),
                        found: other.kind().into(),
                        context: "LabelCapture".into(),
                    }),
                }
            }
        }
    }

    /// Columns referenced by the expression.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            ScalarExpr::Col(c) => {
                out.insert(c.clone());
            }
            ScalarExpr::Const(_) => {}
            ScalarExpr::Prim { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) | ScalarExpr::Coalesce(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.collect_columns(out),
            ScalarExpr::NewLabel { captures, .. } => {
                for (_, e) in captures {
                    e.collect_columns(out);
                }
            }
            ScalarExpr::LabelCapture { label, .. } => label.collect_columns(out),
        }
    }

    /// Renders the expression compactly (used by the plan pretty printer).
    pub fn display(&self) -> String {
        match self {
            ScalarExpr::Col(c) => c.clone(),
            ScalarExpr::Const(v) => format!("{v}"),
            ScalarExpr::Prim { op, left, right } => {
                format!("({} {} {})", left.display(), op.symbol(), right.display())
            }
            ScalarExpr::Cmp { op, left, right } => {
                format!("({} {} {})", left.display(), op.symbol(), right.display())
            }
            ScalarExpr::And(a, b) => format!("({} && {})", a.display(), b.display()),
            ScalarExpr::Or(a, b) => format!("({} || {})", a.display(), b.display()),
            ScalarExpr::Not(e) => format!("!({})", e.display()),
            ScalarExpr::IsNull(e) => format!("isnull({})", e.display()),
            ScalarExpr::Coalesce(a, b) => {
                format!("coalesce({}, {})", a.display(), b.display())
            }
            ScalarExpr::NewLabel { site, captures } => format!(
                "NewLabel#{site}({})",
                captures
                    .iter()
                    .map(|(n, e)| format!("{n}:={}", e.display()))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ScalarExpr::LabelCapture { label, index } => {
                format!("{}.capture[{index}]", label.display())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Tuple {
        Tuple::new([
            ("qty", Value::Real(3.0)),
            ("price", Value::Real(2.0)),
            ("pid", Value::Int(7)),
            ("missing_val", Value::Null),
        ])
    }

    #[test]
    fn arithmetic_and_comparison_evaluate() {
        let e = ScalarExpr::Prim {
            op: PrimOp::Mul,
            left: Box::new(ScalarExpr::col("qty")),
            right: Box::new(ScalarExpr::col("price")),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Real(6.0));
        let c = ScalarExpr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(ScalarExpr::col("pid")),
            right: Box::new(ScalarExpr::Const(Value::Int(5))),
        };
        assert_eq!(c.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_fails_comparisons() {
        let e = ScalarExpr::Prim {
            op: PrimOp::Add,
            left: Box::new(ScalarExpr::col("missing_val")),
            right: Box::new(ScalarExpr::col("qty")),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let c = ScalarExpr::col_eq("missing_val", "pid");
        assert_eq!(c.eval(&row()).unwrap(), Value::Bool(false));
        let is_null = ScalarExpr::IsNull(Box::new(ScalarExpr::col("missing_val")));
        assert_eq!(is_null.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn labels_can_be_built_and_deconstructed() {
        let mk = ScalarExpr::NewLabel {
            site: 9,
            captures: vec![("pid".into(), ScalarExpr::col("pid"))],
        };
        let label = mk.eval(&row()).unwrap();
        let mut r2 = row();
        r2.set("lbl", label);
        let cap = ScalarExpr::LabelCapture {
            label: Box::new(ScalarExpr::col("lbl")),
            index: 0,
        };
        assert_eq!(cap.eval(&r2).unwrap(), Value::Int(7));
    }

    #[test]
    fn referenced_columns_are_collected() {
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::col_eq("a", "b")),
            Box::new(ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(
                ScalarExpr::col("c"),
            ))))),
        );
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains("a") && cols.contains("b") && cols.contains("c"));
    }
}
