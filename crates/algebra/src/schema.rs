//! Attribute-level schemas for plans.
//!
//! The optimizer does not need full types, only which attributes exist at
//! each operator's output, which of them are bag-valued, and what the inner
//! attributes of those bags are. [`AttrSchema`] captures exactly that, and
//! [`output_schema`] propagates it through a plan given a [`Catalog`] of
//! input schemas.

use std::collections::BTreeMap;

use crate::plan::{NestOp, Plan};
use crate::scalar::ScalarExpr;

/// The attribute structure of a (possibly nested) bag of tuples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrSchema {
    /// Top-level attribute names, in order.
    pub attrs: Vec<String>,
    /// For each bag-valued attribute, the schema of its inner tuples.
    pub nested: BTreeMap<String, AttrSchema>,
}

impl AttrSchema {
    /// A flat schema with the given attributes.
    pub fn flat<S: Into<String>>(attrs: impl IntoIterator<Item = S>) -> Self {
        AttrSchema {
            attrs: attrs.into_iter().map(Into::into).collect(),
            nested: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a bag-valued attribute with the given inner schema.
    pub fn with_nested(mut self, attr: impl Into<String>, inner: AttrSchema) -> Self {
        let attr = attr.into();
        if !self.attrs.contains(&attr) {
            self.attrs.push(attr.clone());
        }
        self.nested.insert(attr, inner);
        self
    }

    /// True when the schema contains `attr` at the top level.
    pub fn contains(&self, attr: &str) -> bool {
        self.attrs.iter().any(|a| a == attr)
    }

    /// True when every name in `attrs` is a top-level attribute.
    pub fn contains_all<'a>(&self, attrs: impl IntoIterator<Item = &'a String>) -> bool {
        attrs.into_iter().all(|a| self.contains(a))
    }

    /// The inner schema of a bag-valued attribute, when known.
    pub fn nested_schema(&self, attr: &str) -> Option<&AttrSchema> {
        self.nested.get(attr)
    }

    /// Keeps only the attributes in `keep` (with their nested schemas).
    pub fn restrict(&self, keep: &[String]) -> AttrSchema {
        AttrSchema {
            attrs: self
                .attrs
                .iter()
                .filter(|a| keep.contains(a))
                .cloned()
                .collect(),
            nested: self
                .nested
                .iter()
                .filter(|(a, _)| keep.contains(a))
                .map(|(a, s)| (a.clone(), s.clone()))
                .collect(),
        }
    }

    /// Merges another schema into this one (union of attributes).
    pub fn merge(&self, other: &AttrSchema) -> AttrSchema {
        let mut out = self.clone();
        for a in &other.attrs {
            if !out.contains(a) {
                out.attrs.push(a.clone());
            }
        }
        for (a, s) in &other.nested {
            out.nested.entry(a.clone()).or_insert_with(|| s.clone());
        }
        out
    }
}

/// The physical column type an attribute should take in the engine's
/// columnar batches — the schema→physical-type mapping the executor uses to
/// type batches *from plan schemas* instead of only from sampled values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysType {
    /// Scalar attribute: the concrete vector type (int/real/bool/date/
    /// dictionary string) is refined from the values at ingest.
    Scalar,
    /// Bag-valued attribute: an offset-encoded nested-bag column whose child
    /// batch has the given fields.
    Bag(Vec<PhysField>),
}

/// One attribute of a physical batch schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysField {
    /// Attribute name.
    pub name: String,
    /// Physical column type.
    pub ty: PhysType,
}

/// Maps an attribute-level schema to physical batch fields: every attribute
/// in schema order, bag-valued ones carrying their inner fields recursively.
/// An attribute the schema marks as nested becomes a bag column even when
/// the data at hand holds only NULLs or empty bags — plan-schema typing,
/// which value sampling alone cannot provide.
pub fn physical_fields(schema: &AttrSchema) -> Vec<PhysField> {
    schema
        .attrs
        .iter()
        .map(|name| PhysField {
            name: name.clone(),
            ty: match schema.nested_schema(name) {
                Some(inner) => PhysType::Bag(physical_fields(inner)),
                None => PhysType::Scalar,
            },
        })
        .collect()
}

/// Maps input (scan) names to their schemas and, when known, their
/// materialized sizes (used for the optimizer's join strategy selection).
///
/// The catalog also carries a monotonically increasing **epoch**: every
/// mutation (schema registration, size update, removal) bumps it. Long-lived
/// holders — the serving layer's table registry — key their compiled-plan
/// caches on the epoch, so *any* catalog change conservatively invalidates
/// every plan optimized against the previous state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    inputs: BTreeMap<String, AttrSchema>,
    sizes: BTreeMap<String, usize>,
    epoch: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers an input schema (bumps the epoch).
    pub fn register(&mut self, name: impl Into<String>, schema: AttrSchema) -> &mut Self {
        self.inputs.insert(name.into(), schema);
        self.epoch += 1;
        self
    }

    /// Records the materialized size in bytes of an input (bumps the epoch).
    pub fn set_size(&mut self, name: impl Into<String>, bytes: usize) -> &mut Self {
        self.sizes.insert(name.into(), bytes);
        self.epoch += 1;
        self
    }

    /// Removes an input and its recorded size (bumps the epoch when the
    /// input existed).
    pub fn remove(&mut self, name: &str) -> &mut Self {
        let had = self.inputs.remove(name).is_some() | self.sizes.remove(name).is_some();
        if had {
            self.epoch += 1;
        }
        self
    }

    /// The catalog's mutation epoch: strictly increases with every
    /// registration, size update or removal. Two equal epochs from the same
    /// catalog instance imply no mutation happened in between — the
    /// invariant compiled-plan caches key on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The recorded size in bytes of an input, when known.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.sizes.get(name).copied()
    }

    /// Looks up an input schema.
    pub fn get(&self, name: &str) -> Option<&AttrSchema> {
        self.inputs.get(name)
    }

    /// True when `name` is a registered input.
    pub fn contains(&self, name: &str) -> bool {
        self.inputs.contains_key(name)
    }

    /// Names of all registered inputs.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs.keys().map(|s| s.as_str()).collect()
    }
}

/// Renames every top-level attribute of `schema` to `alias.attr`, keeping the
/// nested schemas (whose inner names stay raw, matching the flattened-stream
/// convention where only the level just introduced is prefixed).
fn prefix_schema(schema: &AttrSchema, alias: &str) -> AttrSchema {
    AttrSchema {
        attrs: schema
            .attrs
            .iter()
            .map(|a| format!("{alias}.{a}"))
            .collect(),
        nested: schema
            .nested
            .iter()
            .map(|(a, s)| (format!("{alias}.{a}"), s.clone()))
            .collect(),
    }
}

/// Computes the output schema of a plan. Unknown inputs produce an empty
/// schema, which downstream rules treat as "don't know — don't touch".
pub fn output_schema(plan: &Plan, catalog: &Catalog) -> AttrSchema {
    match plan {
        Plan::Scan { name, alias } => {
            let base = catalog.get(name).cloned().unwrap_or_default();
            match alias {
                Some(a) if !base.attrs.is_empty() => prefix_schema(&base, a),
                _ => base,
            }
        }
        Plan::Unit | Plan::Empty => AttrSchema::default(),
        Plan::Select { input, .. } | Plan::Dedup { input } | Plan::BagToDict { input } => {
            output_schema(input, catalog)
        }
        Plan::Extend { input, columns } => {
            let mut out = output_schema(input, catalog);
            if out.attrs.is_empty() {
                // Unknown input schema: the extension alone is known.
                return AttrSchema::default();
            }
            for (name, expr) in columns {
                if !out.contains(name) {
                    out.attrs.push(name.clone());
                }
                // Pass-through (possibly NULL-coalesced) columns keep their
                // nested schema; other expressions reset it.
                let source_col = match expr {
                    ScalarExpr::Col(c) => Some(c.clone()),
                    ScalarExpr::Coalesce(a, _) => match a.as_ref() {
                        ScalarExpr::Col(c) => Some(c.clone()),
                        _ => None,
                    },
                    _ => None,
                };
                match source_col.and_then(|c| out.nested_schema(&c).cloned()) {
                    Some(inner) => {
                        out.nested.insert(name.clone(), inner);
                    }
                    None => {
                        out.nested.remove(name);
                    }
                }
            }
            out
        }
        Plan::AddIndex { input, id_attr } => {
            let mut out = output_schema(input, catalog);
            if out.attrs.is_empty() {
                return AttrSchema::default();
            }
            if !out.contains(id_attr) {
                out.attrs.push(id_attr.clone());
            }
            out
        }
        Plan::Project { input, columns } => {
            let in_schema = output_schema(input, catalog);
            let mut out = AttrSchema::default();
            for (name, expr) in columns {
                out.attrs.push(name.clone());
                // Pass-through columns keep their nested schema.
                if let ScalarExpr::Col(c) = expr {
                    if let Some(n) = in_schema.nested_schema(c) {
                        out.nested.insert(name.clone(), n.clone());
                    }
                }
            }
            out
        }
        Plan::Join { left, right, .. } => {
            let l = output_schema(left, catalog);
            let r = output_schema(right, catalog);
            l.merge(&r)
        }
        Plan::Unnest {
            input,
            bag_attr,
            alias,
            outer,
            id_attr,
        } => {
            let in_schema = output_schema(input, catalog);
            let inner = in_schema
                .nested_schema(bag_attr)
                .cloned()
                .unwrap_or_default();
            let inner = match alias {
                Some(a) if !inner.attrs.is_empty() => prefix_schema(&inner, a),
                _ => inner,
            };
            let mut out = AttrSchema {
                attrs: in_schema
                    .attrs
                    .iter()
                    .filter(|a| *a != bag_attr)
                    .cloned()
                    .collect(),
                nested: in_schema
                    .nested
                    .iter()
                    .filter(|(a, _)| *a != bag_attr)
                    .map(|(a, s)| (a.clone(), s.clone()))
                    .collect(),
            };
            if *outer {
                if let Some(id) = id_attr {
                    out.attrs.push(id.clone());
                }
            }
            out = out.merge(&inner);
            out
        }
        Plan::Nest {
            input,
            key,
            values,
            op,
        } => {
            let in_schema = output_schema(input, catalog);
            let mut out = in_schema.restrict(key);
            match op {
                NestOp::Bag { group_attr } => {
                    out = out.with_nested(group_attr.clone(), in_schema.restrict(values));
                }
                NestOp::Sum => {
                    for v in values {
                        if !out.contains(v) {
                            out.attrs.push(v.clone());
                        }
                    }
                }
            }
            out
        }
        Plan::Union { left, .. } => output_schema(left, catalog),
        Plan::DictLookup { input, dict, .. } => {
            let in_schema = output_schema(input, catalog);
            let dict_schema = output_schema(dict, catalog);
            let value_inner = dict_schema
                .nested_schema("value")
                .cloned()
                .unwrap_or_default();
            in_schema.merge(&value_inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanJoinKind;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "COP",
            AttrSchema::flat(["cname"]).with_nested(
                "corders",
                AttrSchema::flat(["odate"]).with_nested("oparts", AttrSchema::flat(["pid", "qty"])),
            ),
        );
        c.register("Part", AttrSchema::flat(["pid", "pname", "price"]));
        c
    }

    #[test]
    fn schema_propagates_through_unnest_and_join() {
        let c = catalog();
        let p = Plan::scan("COP")
            .outer_unnest("corders", "copID")
            .outer_unnest("oparts", "coID")
            .join(
                Plan::scan("Part"),
                &["pid"],
                &["pid"],
                PlanJoinKind::LeftOuter,
            );
        let s = output_schema(&p, &c);
        for a in [
            "cname", "copID", "odate", "coID", "pid", "qty", "pname", "price",
        ] {
            assert!(s.contains(a), "missing attribute {a}");
        }
        assert!(
            !s.contains("corders"),
            "unnested attribute is projected away"
        );
    }

    #[test]
    fn nest_restores_nested_structure() {
        let c = catalog();
        let p = Plan::scan("COP").outer_unnest("corders", "copID").nest_bag(
            &["copID", "cname"],
            &["odate", "oparts"],
            "corders",
        );
        let s = output_schema(&p, &c);
        assert!(s.contains("corders"));
        let inner = s.nested_schema("corders").unwrap();
        assert!(inner.contains("odate"));
        assert!(inner.contains("oparts"));
    }

    #[test]
    fn unknown_inputs_yield_empty_schema() {
        let c = Catalog::new();
        let s = output_schema(&Plan::scan("Mystery"), &c);
        assert!(s.attrs.is_empty());
    }

    #[test]
    fn restrict_and_merge_behave_setwise() {
        let s = AttrSchema::flat(["a", "b", "c"]).with_nested("g", AttrSchema::flat(["x"]));
        let r = s.restrict(&["a".into(), "g".into()]);
        assert_eq!(r.attrs, vec!["a".to_string(), "g".to_string()]);
        assert!(r.nested_schema("g").is_some());
        let m = r.merge(&AttrSchema::flat(["b", "a"]));
        assert_eq!(m.attrs.len(), 3);
    }
}
