//! Micro-benchmarks: one benchmark per paper figure, at a reduced scale so
//! `cargo bench` completes quickly. The full tables are produced by the
//! `figure7`/`figure8`/`figure9` binaries.
//!
//! The workspace builds offline, so instead of Criterion this uses a small
//! hand-rolled harness (`harness = false` in the manifest): each case runs a
//! warmup iteration plus `SAMPLES` measured iterations and reports
//! min/median/max wall-clock milliseconds.

use std::time::{Duration, Instant};

use trance_bench::{run_biomed_pipeline, run_tpch_query, Family};
use trance_biomed::BiomedConfig;
use trance_compiler::Strategy;
use trance_tpch::{QueryVariant, TpchConfig};

const SAMPLES: usize = 10;

fn bench<F: FnMut()>(group: &str, name: &str, mut f: F) {
    f(); // warmup
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    let ms = |d: &Duration| d.as_secs_f64() * 1000.0;
    println!(
        "{group}/{name}: min {:8.2} ms   median {:8.2} ms   max {:8.2} ms   ({SAMPLES} samples)",
        ms(&times[0]),
        ms(&times[times.len() / 2]),
        ms(times.last().unwrap()),
    );
}

fn figure7() {
    let cfg = TpchConfig::new(0.1, 0);
    for strategy in [Strategy::Shred, Strategy::Standard, Strategy::Baseline] {
        bench("figure7_nested_to_nested_narrow", strategy.label(), || {
            run_tpch_query(
                &cfg,
                Family::NestedToNested,
                2,
                QueryVariant::Narrow,
                &[strategy],
                0.0,
            );
        });
    }
}

fn figure8() {
    let cfg = TpchConfig::new(0.1, 3);
    for strategy in [Strategy::Shred, Strategy::ShredSkew, Strategy::Standard] {
        bench("figure8_skew", strategy.label(), || {
            run_tpch_query(
                &cfg,
                Family::NestedToNested,
                2,
                QueryVariant::Narrow,
                &[strategy],
                0.0,
            );
        });
    }
}

fn figure9() {
    let cfg = BiomedConfig::small().scaled(0.3);
    for strategy in [Strategy::Shred, Strategy::Standard] {
        bench("figure9_biomedical_e2e", strategy.label(), || {
            run_biomed_pipeline(&cfg, strategy, 0.0);
        });
    }
}

fn main() {
    figure7();
    figure8();
    figure9();
}
