//! Criterion micro-benchmarks: one benchmark per paper figure, at a reduced
//! scale so `cargo bench` completes quickly. The full tables are produced by
//! the `figure7`/`figure8`/`figure9` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trance_bench::{run_biomed_pipeline, run_tpch_query, Family};
use trance_biomed::BiomedConfig;
use trance_compiler::Strategy;
use trance_tpch::{QueryVariant, TpchConfig};

fn figure7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_nested_to_nested_narrow");
    group.sample_size(10);
    let cfg = TpchConfig::new(0.1, 0);
    for strategy in [Strategy::Shred, Strategy::Standard, Strategy::Baseline] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    run_tpch_query(&cfg, Family::NestedToNested, 2, QueryVariant::Narrow, &[*s], 0.0)
                })
            },
        );
    }
    group.finish();
}

fn figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_skew");
    group.sample_size(10);
    let cfg = TpchConfig::new(0.1, 3);
    for strategy in [Strategy::Shred, Strategy::ShredSkew, Strategy::Standard] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    run_tpch_query(&cfg, Family::NestedToNested, 2, QueryVariant::Narrow, &[*s], 0.0)
                })
            },
        );
    }
    group.finish();
}

fn figure9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_biomedical_e2e");
    group.sample_size(10);
    let cfg = BiomedConfig::small().scaled(0.3);
    for strategy in [Strategy::Shred, Strategy::Standard] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| b.iter(|| run_biomed_pipeline(&cfg, *s, 0.0)),
        );
    }
    group.finish();
}

criterion_group!(benches, figure7, figure8, figure9);
criterion_main!(benches);
