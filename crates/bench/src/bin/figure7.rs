//! Reproduces Figure 7 (a: narrow, b: wide): TPC-H query families at nesting
//! depths 0–4 under each strategy.
//!
//! Usage: `figure7 [--schema narrow|wide] [--family <name>|all] [--scale F] [--memory-factor F]
//! [--partitions N] [--memory BYTES] [--spill] [--staged] [--explain [--depth N]]`
//!
//! `--memory` sets an absolute per-worker cap (overriding the
//! input-proportional `--memory-factor`), `--partitions` the shuffle
//! partition count, and `--spill` enables the out-of-core subsystem so
//! capped cells complete (with spill metrics) instead of printing FAIL.
//!
//! With `--explain` the binary prints, instead of the timing table, the
//! optimized plans each strategy executes at `--depth` (default 2).

use trance_bench::{
    cli_arg, cli_flag, cli_tuning, run_tpch_query_tuned, tpch_input_set_tuned, Family,
};
use trance_compiler::{explain_query, Strategy};
use trance_tpch::{QueryVariant, TpchConfig};

fn main() {
    let schema = cli_arg("--schema", "narrow");
    let family_arg = cli_arg("--family", "all");
    let scale: f64 = cli_arg("--scale", "0.3").parse().unwrap();
    let memory_factor: f64 = cli_arg("--memory-factor", "3.0").parse().unwrap();
    let tuning = cli_tuning();
    let variant = if schema == "wide" {
        QueryVariant::Wide
    } else {
        QueryVariant::Narrow
    };
    let families: Vec<Family> = if family_arg == "all" {
        Family::all().to_vec()
    } else {
        vec![Family::parse(&family_arg).expect("unknown family")]
    };
    let strategies = [
        Strategy::ShredUnshred,
        Strategy::Shred,
        Strategy::Standard,
        Strategy::Baseline,
    ];
    if cli_flag("--explain") {
        let depth: usize = cli_arg("--depth", "2").parse().unwrap();
        let cfg = TpchConfig::new(scale, 0);
        for family in families {
            let (inputs, spec) =
                tpch_input_set_tuned(&cfg, family, depth, variant, memory_factor, &tuning);
            for s in &strategies {
                match explain_query(&spec, &inputs, *s) {
                    Ok(text) => println!("{text}\n"),
                    Err(e) => println!("== {} · {} == run failed: {e}\n", spec.name, s.label()),
                }
            }
        }
        return;
    }
    println!("Figure 7 ({schema} schema), scale {scale}, memory factor {memory_factor}");
    println!("runtimes in ms, shuffle in MiB; FAIL = simulated worker memory exhausted\n");
    for family in families {
        println!("== {} ==", family.label());
        print!("{:>6}", "depth");
        for s in &strategies {
            print!(" | {:>8} {:>7}", s.label(), "shufMiB");
        }
        println!();
        for depth in 0..=4usize {
            let cfg = TpchConfig::new(scale, 0);
            let rows = run_tpch_query_tuned(
                &cfg,
                family,
                depth,
                variant,
                &strategies,
                memory_factor,
                &tuning,
            );
            print!("{depth:>6}");
            for r in &rows {
                print!(" | {} {}", r.time_cell(), r.shuffle_cell());
            }
            println!();
        }
        println!();
    }
}
