//! Reproduces Figure 7 (a: narrow, b: wide): TPC-H query families at nesting
//! depths 0–4 under each strategy.
//!
//! Usage: `figure7 [--schema narrow|wide] [--family <name>|all] [--scale F] [--memory-factor F]`

use trance_bench::{run_tpch_query, Family};
use trance_compiler::Strategy;
use trance_tpch::{QueryVariant, TpchConfig};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let schema = arg("--schema", "narrow");
    let family_arg = arg("--family", "all");
    let scale: f64 = arg("--scale", "0.3").parse().unwrap();
    let memory_factor: f64 = arg("--memory-factor", "3.0").parse().unwrap();
    let variant = if schema == "wide" {
        QueryVariant::Wide
    } else {
        QueryVariant::Narrow
    };
    let families: Vec<Family> = if family_arg == "all" {
        Family::all().to_vec()
    } else {
        vec![Family::parse(&family_arg).expect("unknown family")]
    };
    let strategies = [
        Strategy::ShredUnshred,
        Strategy::Shred,
        Strategy::Standard,
        Strategy::Baseline,
    ];
    println!("Figure 7 ({schema} schema), scale {scale}, memory factor {memory_factor}");
    println!("runtimes in ms, shuffle in MiB; FAIL = simulated worker memory exhausted\n");
    for family in families {
        println!("== {} ==", family.label());
        print!("{:>6}", "depth");
        for s in &strategies {
            print!(" | {:>8} {:>7}", s.label(), "shufMiB");
        }
        println!();
        for depth in 0..=4usize {
            let cfg = TpchConfig::new(scale, 0);
            let rows = run_tpch_query(&cfg, family, depth, variant, &strategies, memory_factor);
            print!("{depth:>6}");
            for r in &rows {
                print!(" | {} {}", r.time_cell(), r.shuffle_cell());
            }
            println!();
        }
        println!();
    }
}
