//! Reproduces Figure 8: the nested-to-nested narrow query with two levels of
//! nesting on increasingly skewed datasets (skew factor 0–4), with and without
//! skew-aware processing.
//!
//! Usage: `figure8 [--scale F] [--memory-factor F] [--partitions N] [--memory BYTES]
//! [--spill] [--staged] [--explain [--skew N]]`
//!
//! With `--explain` the binary prints, instead of the timing table, the
//! optimized plans each strategy executes at skew factor `--skew` (default 3)
//! — including the `[skew]` join annotations the skew-aware strategies get.

use trance_bench::{
    cli_arg, cli_flag, cli_tuning, run_tpch_query_tuned, tpch_input_set_tuned, Family,
};
use trance_compiler::{explain_query, Strategy};
use trance_tpch::{QueryVariant, TpchConfig};

fn main() {
    let scale: f64 = cli_arg("--scale", "0.3").parse().unwrap();
    let memory_factor: f64 = cli_arg("--memory-factor", "3.0").parse().unwrap();
    let tuning = cli_tuning();
    let strategies = [
        Strategy::ShredUnshred,
        Strategy::Shred,
        Strategy::Standard,
        Strategy::Baseline,
        Strategy::ShredUnshredSkew,
        Strategy::ShredSkew,
        Strategy::StandardSkew,
    ];
    if cli_flag("--explain") {
        let skew: u32 = cli_arg("--skew", "3").parse().unwrap();
        let cfg = TpchConfig::new(scale, skew);
        let (inputs, spec) = tpch_input_set_tuned(
            &cfg,
            Family::NestedToNested,
            2,
            QueryVariant::Narrow,
            memory_factor,
            &tuning,
        );
        for s in &strategies {
            match explain_query(&spec, &inputs, *s) {
                Ok(text) => println!("{text}\n"),
                Err(e) => println!("== {} · {} == run failed: {e}\n", spec.name, s.label()),
            }
        }
        return;
    }
    println!("Figure 8: nested-to-nested narrow, depth 2, skew factors 0-4 (scale {scale})");
    println!("runtimes in ms, shuffle in MiB; FAIL = simulated worker memory exhausted\n");
    print!("{:>5}", "skew");
    for s in &strategies {
        print!(" | {:>18} {:>7}", s.label(), "shufMiB");
    }
    println!();
    for skew in 0..=4u32 {
        let cfg = TpchConfig::new(scale, skew);
        let rows = run_tpch_query_tuned(
            &cfg,
            Family::NestedToNested,
            2,
            QueryVariant::Narrow,
            &strategies,
            memory_factor,
            &tuning,
        );
        print!("{skew:>5}");
        for r in &rows {
            print!(" | {:>18} {}", r.time_cell(), r.shuffle_cell());
        }
        println!();
    }
}
