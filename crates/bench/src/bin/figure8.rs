//! Reproduces Figure 8: the nested-to-nested narrow query with two levels of
//! nesting on increasingly skewed datasets (skew factor 0–4), with and without
//! skew-aware processing.
//!
//! Usage: `figure8 [--scale F] [--memory-factor F]`

use trance_bench::{run_tpch_query, Family};
use trance_compiler::Strategy;
use trance_tpch::{QueryVariant, TpchConfig};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let scale: f64 = arg("--scale", "0.3").parse().unwrap();
    let memory_factor: f64 = arg("--memory-factor", "3.0").parse().unwrap();
    let strategies = [
        Strategy::ShredUnshred,
        Strategy::Shred,
        Strategy::Standard,
        Strategy::Baseline,
        Strategy::ShredUnshredSkew,
        Strategy::ShredSkew,
        Strategy::StandardSkew,
    ];
    println!("Figure 8: nested-to-nested narrow, depth 2, skew factors 0-4 (scale {scale})");
    println!("runtimes in ms, shuffle in MiB; FAIL = simulated worker memory exhausted\n");
    print!("{:>5}", "skew");
    for s in &strategies {
        print!(" | {:>18} {:>7}", s.label(), "shufMiB");
    }
    println!();
    for skew in 0..=4u32 {
        let cfg = TpchConfig::new(scale, skew);
        let rows = run_tpch_query(
            &cfg,
            Family::NestedToNested,
            2,
            QueryVariant::Narrow,
            &strategies,
            memory_factor,
        );
        print!("{skew:>5}");
        for r in &rows {
            print!(" | {:>18} {}", r.time_cell(), r.shuffle_cell());
        }
        println!();
    }
}
