//! Reproduces Figure 9: the five-step biomedical end-to-end pipeline on the
//! small and full datasets, per strategy and per step.
//!
//! Usage: `figure9 [--memory-factor F] [--scale F] [--partitions N] [--memory BYTES]
//! [--spill] [--staged] [--explain]`
//!
//! With `--explain` the binary prints, instead of the timing table, the
//! optimized plans each pipeline step executes per strategy (small dataset).

use trance_bench::{
    cli_arg, cli_flag, cli_tuning, explain_biomed_pipeline, run_biomed_pipeline_tuned,
};
use trance_biomed::BiomedConfig;
use trance_compiler::Strategy;

fn main() {
    let memory_factor: f64 = cli_arg("--memory-factor", "12.0").parse().unwrap();
    let scale: f64 = cli_arg("--scale", "1.0").parse().unwrap();
    let tuning = cli_tuning();
    let strategies = [Strategy::Shred, Strategy::Standard, Strategy::Baseline];
    if cli_flag("--explain") {
        let cfg = BiomedConfig::small().scaled(scale);
        for strategy in strategies {
            for (step, text) in explain_biomed_pipeline(&cfg, strategy, memory_factor) {
                println!("### step {step} ({})", strategy.label());
                println!("{text}\n");
            }
        }
        return;
    }
    for (label, cfg) in [
        ("SMALL DATASET", BiomedConfig::small().scaled(scale)),
        ("FULL DATASET", BiomedConfig::full().scaled(scale)),
    ] {
        println!("== Figure 9: E2E pipeline, {label} ==");
        for strategy in strategies {
            let row = run_biomed_pipeline_tuned(&cfg, strategy, memory_factor, &tuning);
            print!("{:>14}:", strategy.label());
            for (step, d) in &row.steps {
                match d {
                    Some(d) => print!("  {step}={:.1}ms", d.as_secs_f64() * 1000.0),
                    None => print!("  {step}=FAIL"),
                }
            }
            println!(
                "  | total={:.1}ms shuffled={:.2}MiB{}",
                row.total().as_secs_f64() * 1000.0,
                row.shuffled_bytes as f64 / (1024.0 * 1024.0),
                if row.failed() { "  [FAILED]" } else { "" }
            );
        }
        println!();
    }
}
