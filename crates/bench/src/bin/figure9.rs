//! Reproduces Figure 9: the five-step biomedical end-to-end pipeline on the
//! small and full datasets, per strategy and per step.
//!
//! Usage: `figure9 [--memory-factor F] [--scale F]`

use trance_bench::run_biomed_pipeline;
use trance_biomed::BiomedConfig;
use trance_compiler::Strategy;

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let memory_factor: f64 = arg("--memory-factor", "12.0").parse().unwrap();
    let scale: f64 = arg("--scale", "1.0").parse().unwrap();
    let strategies = [Strategy::Shred, Strategy::Standard, Strategy::Baseline];
    for (label, cfg) in [
        ("SMALL DATASET", BiomedConfig::small().scaled(scale)),
        ("FULL DATASET", BiomedConfig::full().scaled(scale)),
    ] {
        println!("== Figure 9: E2E pipeline, {label} ==");
        for strategy in strategies {
            let row = run_biomed_pipeline(&cfg, strategy, memory_factor);
            print!("{:>14}:", strategy.label());
            for (step, d) in &row.steps {
                match d {
                    Some(d) => print!("  {step}={:.1}ms", d.as_secs_f64() * 1000.0),
                    None => print!("  {step}=FAIL"),
                }
            }
            println!(
                "  | total={:.1}ms shuffled={:.2}MiB{}",
                row.total().as_secs_f64() * 1000.0,
                row.shuffled_bytes as f64 / (1024.0 * 1024.0),
                if row.failed() { "  [FAILED]" } else { "" }
            );
        }
        println!();
    }
}
