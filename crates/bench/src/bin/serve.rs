//! The standalone multi-client serving driver: builds a resident engine
//! over the TPC-H tables, drives the mixed query set closed-loop from N
//! client threads, then runs the cold-vs-warm compiled-plan-cache A/B pair
//! on the Wide STANDARD cell. Knobs: `--clients N` (default 4),
//! `--iterations M` passes over the query set per client (default 3),
//! `--samples K` A/B samples per side (default 5), `--scale S` TPC-H scale
//! (default 0.1), `--depth D` nesting depth (default 2).

use trance_bench::{
    cli_arg, run_closed_loop, run_cold_warm_pair, serve_engine, serve_query_set,
    wide_standard_case, ServeRow,
};
use trance_tpch::{QueryVariant, TpchConfig};

fn print_row(row: &ServeRow) {
    println!(
        "{:<22} {:>3} clients {:>5} queries ({:>3} busy): {:>7.1} qps, \
         p50 {:>7.1} ms, p95 {:>7.1} ms, p99 {:>7.1} ms, \
         cache hit {:>5.1}%, compile {:>6.2} ms/q, {} plans",
        row.label,
        row.clients,
        row.queries,
        row.rejected,
        row.qps,
        row.p50_ms,
        row.p95_ms,
        row.p99_ms,
        row.cache_hit_rate * 100.0,
        row.compile_ms,
        row.plans_compiled,
    );
}

fn main() {
    let clients: usize = cli_arg("--clients", "4").parse().expect("--clients N");
    let iterations: usize = cli_arg("--iterations", "3")
        .parse()
        .expect("--iterations M");
    let samples: usize = cli_arg("--samples", "5").parse().expect("--samples K");
    let scale: f64 = cli_arg("--scale", "0.1").parse().expect("--scale S");
    let depth: usize = cli_arg("--depth", "2").parse().expect("--depth D");

    let cfg = TpchConfig::new(scale, 0);
    println!(
        "serving benchmark: scale {scale}, depth {depth}, {clients} clients x \
         {iterations} iterations over the mixed set, {samples} A/B samples\n"
    );
    let engine = serve_engine(&cfg, depth, QueryVariant::Wide, clients);
    let cases = serve_query_set(depth, QueryVariant::Wide);

    let mixed = run_closed_loop(&engine, &cases, clients, iterations, "mixed");
    print_row(&mixed);

    let (spec, strategy) = wide_standard_case(depth);
    let (cold, warm) = run_cold_warm_pair(&engine, &spec, strategy, samples, "wide-standard");
    print_row(&cold);
    print_row(&warm);

    let stats = engine.stats();
    println!(
        "\nengine: {} admitted, {} rejected, plan cache {} hits / {} misses \
         ({} evicted, {} resident), kernel cache {} hits / {} misses",
        stats.admitted,
        stats.rejected,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_len,
        stats.kernel_hits,
        stats.kernel_misses,
    );
    assert!(
        warm.compile_ms == 0.0 && warm.plans_compiled == 0,
        "warm cache hits must book zero compile work"
    );
}
