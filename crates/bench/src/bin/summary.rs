//! Prints the headline comparison ratios of the experimental summary
//! (Section 6 bullet list) and writes every measured cell to
//! `BENCH_summary.json` so successive changes have a machine-readable perf
//! trajectory to regress against.
//!
//! Every row carries an explicit `status` (`ok` / `fail`); `wall_ms` is a
//! number exactly when `status` is `ok` and `null` only for failed runs (the
//! paper's FAIL cells, whose shuffle counters still reflect the work done
//! before the memory cap hit). `op_ms` breaks the run down per engine
//! operator. `spill` / `spilled_bytes` / `spill_files` / `spill_ms` describe
//! the out-of-core subsystem: the `-capped` rows re-run the three FAIL cells
//! on a spill-capable cluster at the same cap, spill off (still FAIL) and
//! spill on (ok, differentially checked against an uncapped oracle via
//! `results_match_uncapped`). `faults_injected` / `retries` /
//! `recovered_partitions` / `cancelled` report the fault-tolerance layer —
//! all zero unless a fault plan (`--faults` / `TRANCE_FAULT_SEED`) armed the
//! injector. The top-level `net` key holds the multi-node cells: the
//! running example executed by real worker *processes* over TCP, each cell
//! differentially checked against the in-process thread oracle (equal bags,
//! equal logical shuffle bytes), plus a seeded connection-drop chaos cell
//! that must recover to the oracle result through the coordinator's global
//! retry (`TRANCE_NET_SEED` picks the victim and drop point).

use std::fmt::Write as _;

use trance_bench::{
    best_of, cli_flag, parse_typecheck_us, run_capped_cells, run_closed_loop, run_cold_warm_pair,
    run_tpch_query_exec, run_tpch_query_expr, serve_engine, serve_query_set, tpch_type_env,
    wide_standard_case, BenchRow, Family, ServeRow,
};
use trance_compiler::Strategy;
use trance_net::{run_smoke, spawn_self_cluster, ClusterParams, DropSpec, SmokeOutcome};
use trance_tpch::{flat_to_nested, nested_to_flat, nested_to_nested, QueryVariant, TpchConfig};

fn ratio(a: Option<std::time::Duration>, b: Option<std::time::Duration>) -> String {
    match (a, b) {
        (Some(a), Some(b)) if b.as_secs_f64() > 0.0 => {
            format!("{:.1}x", a.as_secs_f64() / b.as_secs_f64())
        }
        (None, Some(_)) => "FAIL vs ok".to_string(),
        _ => "n/a".to_string(),
    }
}

/// One measured cell destined for `BENCH_summary.json`.
struct JsonCell {
    query: String,
    repr: &'static str,
    /// Which executor drove the run: morsel-driven fused pipelines
    /// (`pipelined`, the default) or one materialization per operator
    /// (`staged`).
    exec: &'static str,
    /// Which expression engine evaluated scalar operators: register-based
    /// vectorized kernels (`compiled`, the default) or the tree-walking
    /// interpreter (`interp`).
    expr: &'static str,
    /// Whether the out-of-core subsystem was enabled for this run.
    spill: &'static str,
    /// For capped spill-on runs: did the result match the uncapped oracle?
    results_match: Option<bool>,
    /// Front-end cost of the textual path for this cell's query: parse the
    /// pretty-printed surface text and typecheck it (microseconds).
    parse_typecheck_us: f64,
    row: BenchRow,
}

impl JsonCell {
    fn new(query: String, repr: &'static str, parse_typecheck_us: f64, row: BenchRow) -> JsonCell {
        JsonCell {
            query,
            repr,
            exec: "pipelined",
            expr: ambient_expr(),
            spill: "off",
            results_match: None,
            parse_typecheck_us,
            row,
        }
    }
}

/// The expression engine ambient runs use (`compiled` unless
/// `TRANCE_EXPR=interp` overrides the session default).
fn ambient_expr() -> &'static str {
    if trance_compiler::compiled_exprs_default() {
        "compiled"
    } else {
        "interp"
    }
}

/// Renders the collected cells as a JSON document (the workspace builds
/// offline, so the document is assembled by hand instead of via serde).
/// The serving rows live under their own top-level `serve` key: they
/// measure a different object (sustained multi-client throughput against
/// the resident engine) and carry a different schema than the per-run
/// `rows`.
fn render_json(cells: &[JsonCell], serve: &[ServeRow], net: &[SmokeOutcome]) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let s = &cell.row.stats;
        let (status, wall) = match cell.row.elapsed {
            Some(d) => ("ok", format!("{:.3}", d.as_secs_f64() * 1000.0)),
            None => ("fail", "null".to_string()),
        };
        let op_ms = s
            .op_timings
            .iter()
            .map(|(op, t)| format!("\"{}\": {:.3}", escape(op), t.micros as f64 / 1000.0))
            .collect::<Vec<_>>()
            .join(", ");
        // Per-row shuffled bytes (physical): the representation win the perf
        // trajectory tracks next to wall time.
        let bytes_per_tuple = if s.shuffled_tuples > 0 {
            s.shuffled_bytes_phys as f64 / s.shuffled_tuples as f64
        } else {
            0.0
        };
        let results_match = match cell.results_match {
            Some(m) => format!(", \"results_match_uncapped\": {m}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"strategy\": \"{}\", \"repr\": \"{}\", \
             \"exec\": \"{}\", \"expr\": \"{}\", \"status\": \"{}\", \"wall_ms\": {}, \
             \"shuffled_tuples\": {}, \"shuffled_bytes\": {}, \
             \"shuffled_bytes_phys\": {}, \"bytes_per_tuple\": {:.3}, \
             \"broadcast_tuples\": {}, \"broadcast_bytes\": {}, \
             \"broadcast_bytes_phys\": {}, \
             \"shuffle_joins\": {}, \"broadcast_joins\": {}, \
             \"skew_broadcast_joins\": {}, \"skew_fallback_joins\": {}, \
             \"spill\": \"{}\", \"spilled_bytes\": {}, \"spill_files\": {}, \
             \"spill_ms\": {:.3}{}, \
             \"pipeline_ms\": {:.3}, \"morsels\": {}, \"steals\": {}, \
             \"expr_compile_ms\": {:.3}, \"expr_instrs\": {}, \
             \"parse_typecheck_us\": {:.3}, \
             \"faults_injected\": {}, \"retries\": {}, \
             \"recovered_partitions\": {}, \"cancelled\": {}, \
             \"op_ms\": {{{}}}}}{}",
            escape(&cell.query),
            escape(cell.row.strategy.label()),
            cell.repr,
            cell.exec,
            cell.expr,
            status,
            wall,
            s.shuffled_tuples,
            s.shuffled_bytes,
            s.shuffled_bytes_phys,
            bytes_per_tuple,
            s.broadcast_tuples,
            s.broadcast_bytes,
            s.broadcast_bytes_phys,
            s.shuffle_joins,
            s.broadcast_joins,
            s.skew_broadcast_joins,
            s.skew_fallback_joins,
            cell.spill,
            s.spilled_bytes,
            s.spill_files,
            s.spill_ms(),
            results_match,
            s.pipeline_ms(),
            s.total_morsels(),
            s.steal_count,
            s.expr_compile_ms(),
            s.expr_kernel_instrs,
            cell.parse_typecheck_us,
            s.faults_injected,
            s.retries,
            s.recovered_partitions,
            s.cancelled,
            op_ms,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"serve\": [\n");
    for (i, row) in serve.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"clients\": {}, \"queries\": {}, \
             \"rejected\": {}, \"qps\": {:.3}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hit_rate\": {:.4}, \
             \"compile_ms\": {:.3}, \"plans_compiled\": {}}}{}",
            escape(&row.label),
            row.clients,
            row.queries,
            row.rejected,
            row.qps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.cache_hit_rate,
            row.compile_ms,
            row.plans_compiled,
            if i + 1 < serve.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"net\": [\n");
    for (i, cell) in net.iter().enumerate() {
        let chaos = cell.label.starts_with("chaos");
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"ranks\": {}, \"status\": \"ok\", \
             \"oracle_match\": true, \"chaos\": {}, \"attempts\": {}, \
             \"rows\": {}, \"shuffled_bytes\": {}, \"wall_ms_tcp\": {}, \
             \"wall_ms_thread\": {}}}{}",
            escape(&cell.label),
            NET_RANKS,
            chaos,
            cell.attempts,
            cell.rows,
            cell.shuffled_bytes,
            cell.wall_ms,
            cell.oracle_wall_ms,
            if i + 1 < net.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Worker processes of the multi-node cells.
const NET_RANKS: usize = 3;

/// Runs the multi-node cells: spawn [`NET_RANKS`] worker processes
/// (re-executions of this binary, diverted by `TRANCE_NET_WORKER`), drive
/// the smoke suite over real TCP, and return the verified cells. `run_smoke`
/// itself asserts every cell bag- and shuffle-byte-identical to the
/// in-process oracle, so a divergence fails the benchmark run loudly.
fn run_net_cells() -> Vec<SmokeOutcome> {
    let params = ClusterParams {
        partitions: 8,
        threads: 2,
        broadcast_limit: 8 * 1024 * 1024,
    };
    let seed = std::env::var("TRANCE_NET_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let chaos = DropSpec {
        victim: (seed % NET_RANKS as u64) as u32,
        after_frames: 2 + seed % 5,
    };
    println!(
        "\nmulti-node cells: {NET_RANKS} worker processes over TCP \
         (chaos seed {seed}: rank {} drops after {} frames)",
        chaos.victim, chaos.after_frames
    );
    let mut cluster = match spawn_self_cluster("TRANCE_NET_WORKER", NET_RANKS, params) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to spawn the multi-node cluster: {e}");
            return Vec::new();
        }
    };
    let cells = match run_smoke(&mut cluster.coordinator, params, Some(chaos)) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("multi-node cells failed: {e}");
            Vec::new()
        }
    };
    for cell in &cells {
        println!(
            "net {:<22} TCP {} ms vs thread {} ms, {} shuffle bytes, \
             {} attempt(s), oracle match",
            cell.label, cell.wall_ms, cell.oracle_wall_ms, cell.shuffled_bytes, cell.attempts
        );
    }
    cluster.shutdown();
    cells
}

fn main() {
    // Re-executions of this binary become worker processes for the
    // multi-node cells — divert them before any benchmarking starts.
    if let Ok(addr) = std::env::var("TRANCE_NET_WORKER") {
        if let Err(e) = trance_net::worker::serve(&addr) {
            eprintln!("net worker failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut cells: Vec<JsonCell> = Vec::new();
    // `--staged` switches the headline cells to the staged executor (the
    // pipelined-vs-staged A/B pair below always runs both).
    let pipelined = !cli_flag("--staged");
    let exec_label = if pipelined { "pipelined" } else { "staged" };
    let cfg = TpchConfig::new(0.3, 0);
    // Front-end cost per distinct query text: a tiny generated sample gives
    // the table types, then the cell's query is pretty-printed, re-parsed and
    // typechecked — the price a textual submission pays once per cache miss.
    let fe_cfg = TpchConfig::new(0.01, 0);
    let fe_env_wide = tpch_type_env(&fe_cfg, 2, QueryVariant::Wide);
    let fe_env_narrow = tpch_type_env(&fe_cfg, 2, QueryVariant::Narrow);
    let front_end_us = |family: Family, variant: QueryVariant| -> f64 {
        let query = match family {
            Family::FlatToNested => flat_to_nested(2, variant),
            Family::NestedToNested => nested_to_nested(2, variant),
            Family::NestedToFlat => nested_to_flat(2, variant),
        };
        let env = match variant {
            QueryVariant::Wide => &fe_env_wide,
            QueryVariant::Narrow => &fe_env_narrow,
        };
        parse_typecheck_us(&query, env)
    };
    let strategies = [
        Strategy::Shred,
        Strategy::ShredUnshred,
        Strategy::Standard,
        Strategy::Baseline,
    ];
    println!("Summary ratios (flattening / shredded), scale 0.3\n");
    for (family, depth) in [
        (Family::FlatToNested, 2usize),
        (Family::NestedToNested, 2),
        (Family::NestedToFlat, 2),
    ] {
        let rows = run_tpch_query_exec(
            &cfg,
            family,
            depth,
            QueryVariant::Wide,
            &strategies,
            3.0,
            true,
            pipelined,
        );
        let shred = &rows[0];
        let standard = &rows[2];
        let baseline = &rows[3];
        println!(
            "{:<18} depth {depth}: standard/shred = {:>9}, baseline/shred = {:>9}, shuffle standard/shred = {:.1}x",
            family.label(),
            ratio(standard.elapsed, shred.elapsed),
            ratio(baseline.elapsed, shred.elapsed),
            standard.stats.shuffled_bytes.max(1) as f64 / shred.stats.shuffled_bytes.max(1) as f64,
        );
        let query = format!("{family:?}-depth{depth}-Wide-scale0.3");
        let fe_us = front_end_us(family, QueryVariant::Wide);
        cells.extend(rows.into_iter().map(|row| JsonCell {
            query: query.clone(),
            repr: "columnar",
            exec: exec_label,
            expr: ambient_expr(),
            spill: "off",
            results_match: None,
            parse_typecheck_us: fe_us,
            row,
        }));
    }
    // Optimizer-on vs optimizer-off at a scale where both runs complete: the
    // plan optimizer (column pruning + pushdown) must strictly reduce the
    // shuffled volume of the standard route vs the SparkSQL-like baseline.
    let rows = run_tpch_query_exec(
        &cfg,
        Family::NestedToNested,
        2,
        QueryVariant::Narrow,
        &[Strategy::Standard, Strategy::Baseline],
        3.0,
        true,
        pipelined,
    );
    println!(
        "NestedToNested     depth 2 (narrow): standard shuffle / baseline shuffle = {:.2}x",
        rows[0].stats.shuffled_bytes.max(1) as f64 / rows[1].stats.shuffled_bytes.max(1) as f64
    );
    let narrow_fe_us = front_end_us(Family::NestedToNested, QueryVariant::Narrow);
    cells.extend(rows.into_iter().map(|row| JsonCell {
        query: "NestedToNested-depth2-Narrow-scale0.3".to_string(),
        repr: "columnar",
        exec: exec_label,
        expr: ambient_expr(),
        spill: "off",
        results_match: None,
        parse_typecheck_us: narrow_fe_us,
        row,
    }));

    // Row-vs-columnar representation pair × pipelined-vs-staged executor
    // pair: the same Wide STANDARD cell run over typed batches and row
    // collections (no memory cap so all complete), each both through the
    // morsel-driven fused pipelines and through the staged
    // one-materialization-per-operator oracle. Columnar must ship strictly
    // fewer *physical* bytes; the pipelined executor must beat the staged
    // wall clock at identical logical shuffle volume (fusion moves no extra
    // byte — it only removes barriers and intermediate materializations).
    // Each cell reports the best of three runs (`best_of`, keyed on wall
    // clock — the metric this pair compares).
    let wide_n2n_fe_us = front_end_us(Family::NestedToNested, QueryVariant::Wide);
    let mut exec_walls: Vec<(String, Option<std::time::Duration>)> = Vec::new();
    for (label, columnar) in [("columnar", true), ("row", false)] {
        for (exec, pipelined) in [("pipelined", true), ("staged", false)] {
            let row = best_of(
                3,
                || {
                    run_tpch_query_exec(
                        &cfg,
                        Family::NestedToNested,
                        2,
                        QueryVariant::Wide,
                        &[Strategy::Standard],
                        0.0,
                        columnar,
                        pipelined,
                    )
                    .remove(0)
                },
                |r| r.elapsed.map(|d| d.as_secs_f64()),
            );
            println!(
                "representation {label:>8} ({exec:>9}): STANDARD wide wall {} ms, \
                 {} physical bytes ({} logical), {} morsels, {} steals",
                row.time_cell().trim(),
                row.stats.shuffled_bytes_phys,
                row.stats.shuffled_bytes,
                row.stats.total_morsels(),
                row.stats.steal_count,
            );
            exec_walls.push((format!("{label}-{exec}"), row.elapsed));
            cells.push(JsonCell {
                query: "NestedToNested-depth2-Wide-scale0.3-repr".to_string(),
                repr: label,
                exec,
                expr: ambient_expr(),
                spill: "off",
                results_match: None,
                parse_typecheck_us: wide_n2n_fe_us,
                row,
            });
        }
    }
    if let (Some((_, pipelined)), Some((_, staged))) = (
        exec_walls.iter().find(|(k, _)| k == "columnar-pipelined"),
        exec_walls.iter().find(|(k, _)| k == "columnar-staged"),
    ) {
        println!(
            "executor           wide STANDARD: staged / pipelined wall = {}",
            ratio(*staged, *pipelined)
        );
    }

    // Compiled-kernel vs interpreted expression engine pair: the same Wide
    // STANDARD columnar pipelined cell with scalar operators evaluated by
    // register-based vectorized kernel programs (the default) and by the
    // tree-walking interpreter. Both evaluate identical plans over identical
    // shuffles — the expr_agree suite proves byte-identical results — so the
    // pair isolates pure expression-evaluation time; the compiled side's
    // fused pipeline time must not regress past the interpreter's. Best of
    // three per side (`best_of`), selected on pipeline time (the metric the
    // pair compares; wall clock includes input loading noise).
    let mut expr_walls: Vec<(&str, Option<std::time::Duration>)> = Vec::new();
    for (expr_label, compiled) in [("compiled", true), ("interp", false)] {
        let row = best_of(
            3,
            || {
                run_tpch_query_expr(
                    &cfg,
                    Family::NestedToNested,
                    2,
                    QueryVariant::Wide,
                    &[Strategy::Standard],
                    0.0,
                    true,
                    compiled,
                )
                .remove(0)
            },
            |r| Some(r.stats.pipeline_ms()),
        );
        println!(
            "expressions {expr_label:>9}: STANDARD wide wall {} ms, pipeline {:.1} ms, \
             {} kernel instrs over {} programs, {:.2} ms compile",
            row.time_cell().trim(),
            row.stats.pipeline_ms(),
            row.stats.expr_kernel_instrs,
            row.stats.expr_compiles(),
            row.stats.expr_compile_ms(),
        );
        expr_walls.push((expr_label, row.elapsed));
        cells.push(JsonCell {
            query: "NestedToNested-depth2-Wide-scale0.3-expr".to_string(),
            repr: "columnar",
            exec: "pipelined",
            expr: expr_label,
            spill: "off",
            results_match: None,
            parse_typecheck_us: wide_n2n_fe_us,
            row,
        });
    }
    if let (Some((_, compiled)), Some((_, interp))) = (
        expr_walls.iter().find(|(k, _)| *k == "compiled"),
        expr_walls.iter().find(|(k, _)| *k == "interp"),
    ) {
        println!(
            "expr engine        wide STANDARD: interp / compiled wall = {}",
            ratio(*interp, *compiled)
        );
    }

    // Skew: shuffle reduction of the skew-aware shredded join (Figure 8 claim).
    let skew_cfg = TpchConfig::new(0.3, 3);
    let rows = run_tpch_query_exec(
        &skew_cfg,
        Family::NestedToNested,
        2,
        QueryVariant::Narrow,
        &[Strategy::Shred, Strategy::ShredSkew],
        3.0,
        true,
        pipelined,
    );
    println!(
        "skew factor 3      depth 2: shred shuffle / shred-skew shuffle = {:.1}x",
        rows[0].stats.shuffled_bytes.max(1) as f64 / rows[1].stats.shuffled_bytes.max(1) as f64
    );
    cells.extend(rows.into_iter().map(|row| JsonCell {
        query: "NestedToNested-depth2-Narrow-scale0.3-skew3".to_string(),
        repr: "columnar",
        exec: exec_label,
        expr: ambient_expr(),
        spill: "off",
        results_match: None,
        parse_typecheck_us: narrow_fe_us,
        row,
    }));

    // Capped mode: the three FAIL cells re-run on a spill-capable cluster at
    // the same cap — FAIL (spill off) next to ok-with-spill (spill on), the
    // paper's story plus the engineering answer to it. The spill-on result is
    // differentially checked against an uncapped in-memory oracle.
    for cell in run_capped_cells(&cfg, 3.0) {
        let query = format!("{:?}-depth2-Wide-scale0.3-capped", cell.family);
        println!(
            "capped {:<15} {:>13}: spill off = {}, spill on = {} ms \
             ({} spilled bytes, {} files, {:.1} ms I/O, oracle match = {})",
            format!("{:?}", cell.family),
            cell.strategy.label(),
            cell.spill_off.time_cell().trim(),
            cell.spill_on.time_cell().trim(),
            cell.spill_on.stats.spilled_bytes,
            cell.spill_on.stats.spill_files,
            cell.spill_on.stats.spill_ms(),
            cell.results_match_uncapped,
        );
        let fe_us = front_end_us(cell.family, QueryVariant::Wide);
        cells.push(JsonCell::new(
            query.clone(),
            "columnar",
            fe_us,
            cell.spill_off,
        ));
        cells.push(JsonCell {
            query,
            repr: "columnar",
            exec: "pipelined",
            expr: ambient_expr(),
            spill: "on",
            results_match: Some(cell.results_match_uncapped),
            parse_typecheck_us: fe_us,
            row: cell.spill_on,
        });
    }

    // Query-as-a-service: the resident engine serving the mixed query set
    // closed-loop from four clients, then the cold-vs-warm compiled-plan-
    // cache A/B pair on the Wide STANDARD cell (cold clears the plan and
    // kernel caches before every sample; warm replays the cached plans and
    // must book zero compile time). Scale 0.1 keeps the added wall time
    // modest while leaving the per-query compile cost visible.
    let serve_cfg = TpchConfig::new(0.1, 0);
    let engine = serve_engine(&serve_cfg, 2, QueryVariant::Wide, 4);
    let serve_cases = serve_query_set(2, QueryVariant::Wide);
    let mixed = run_closed_loop(&engine, &serve_cases, 4, 2, "mixed-depth2-Wide-scale0.1");
    println!(
        "serving mixed set  4 clients: {:.1} qps, p50 {:.1} ms, p99 {:.1} ms, \
         cache hit {:.0}%",
        mixed.qps,
        mixed.p50_ms,
        mixed.p99_ms,
        mixed.cache_hit_rate * 100.0,
    );
    let (ab_spec, ab_strategy) = wide_standard_case(2);
    let (cold, warm) = run_cold_warm_pair(&engine, &ab_spec, ab_strategy, 7, "wide-standard");
    println!(
        "serving plan cache wide STANDARD: cold p50 {:.1} ms ({:.2} ms compile, \
         {} plans), warm p50 {:.1} ms ({:.2} ms compile, {} plans)",
        cold.p50_ms,
        cold.compile_ms,
        cold.plans_compiled,
        warm.p50_ms,
        warm.compile_ms,
        warm.plans_compiled,
    );
    let serve_rows = vec![mixed, cold, warm];

    let net_cells = run_net_cells();

    let json = render_json(&cells, &serve_rows, &net_cells);
    match std::fs::write("BENCH_summary.json", &json) {
        Ok(()) => println!(
            "\nwrote {} benchmark rows to BENCH_summary.json",
            cells.len()
        ),
        Err(e) => eprintln!("\nfailed to write BENCH_summary.json: {e}"),
    }
}
