//! Prints the headline comparison ratios of the experimental summary
//! (Section 6 bullet list): shredded vs flattening runtimes and shuffle
//! volumes for representative configurations.

use trance_bench::{run_tpch_query, Family};
use trance_compiler::Strategy;
use trance_tpch::{QueryVariant, TpchConfig};

fn ratio(a: Option<std::time::Duration>, b: Option<std::time::Duration>) -> String {
    match (a, b) {
        (Some(a), Some(b)) if b.as_secs_f64() > 0.0 => format!("{:.1}x", a.as_secs_f64() / b.as_secs_f64()),
        (None, Some(_)) => "FAIL vs ok".to_string(),
        _ => "n/a".to_string(),
    }
}

fn main() {
    let cfg = TpchConfig::new(0.3, 0);
    let strategies = [Strategy::Shred, Strategy::ShredUnshred, Strategy::Standard, Strategy::Baseline];
    println!("Summary ratios (flattening / shredded), scale 0.3\n");
    for (family, depth) in [
        (Family::FlatToNested, 2usize),
        (Family::NestedToNested, 2),
        (Family::NestedToFlat, 2),
    ] {
        let rows = run_tpch_query(&cfg, family, depth, QueryVariant::Wide, &strategies, 3.0);
        let shred = &rows[0];
        let standard = &rows[2];
        let baseline = &rows[3];
        println!(
            "{:<18} depth {depth}: standard/shred = {:>9}, baseline/shred = {:>9}, shuffle standard/shred = {:.1}x",
            family.label(),
            ratio(standard.elapsed, shred.elapsed),
            ratio(baseline.elapsed, shred.elapsed),
            standard.stats.shuffled_bytes.max(1) as f64 / shred.stats.shuffled_bytes.max(1) as f64,
        );
    }
    // Skew: shuffle reduction of the skew-aware shredded join (Figure 8 claim).
    let skew_cfg = TpchConfig::new(0.3, 3);
    let rows = run_tpch_query(
        &skew_cfg,
        Family::NestedToNested,
        2,
        QueryVariant::Narrow,
        &[Strategy::Shred, Strategy::ShredSkew],
        3.0,
    );
    println!(
        "skew factor 3      depth 2: shred shuffle / shred-skew shuffle = {:.1}x",
        rows[0].stats.shuffled_bytes.max(1) as f64 / rows[1].stats.shuffled_bytes.max(1) as f64
    );
}
