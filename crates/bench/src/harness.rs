//! Shared machinery for the figure-reproducing binaries and Criterion benches.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use trance_biomed::{BiomedConfig, BiomedData};
use trance_compiler::{
    run_query, run_query_configured, run_query_expr, run_query_repr, run_query_spill, InputSet,
    QuerySpec, RunOutcome, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext, FaultPlan, StatsSnapshot};
use trance_nrc::{eval, infer, Bag, Env, Expr, MemSize, Type, TypeEnv, Value};
use trance_shred::ShreddedInputDecl;
use trance_tpch::{
    flat_to_nested, generate, nested_to_flat, nested_to_nested, nesting_structure_for_depth,
    QueryVariant, TpchConfig,
};

/// The three TPC-H query families of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Build nested output from the flat tables.
    FlatToNested,
    /// Nested input, nested output with the Part join + aggregation.
    NestedToNested,
    /// Nested input, flat aggregated output.
    NestedToFlat,
}

impl Family {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Family> {
        match s {
            "flat-to-nested" => Some(Family::FlatToNested),
            "nested-to-nested" => Some(Family::NestedToNested),
            "nested-to-flat" => Some(Family::NestedToFlat),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Family::FlatToNested => "Flat to Nested",
            Family::NestedToNested => "Nested to Nested",
            Family::NestedToFlat => "Nested to Flat",
        }
    }

    /// All families in figure order.
    pub fn all() -> [Family; 3] {
        [
            Family::FlatToNested,
            Family::NestedToNested,
            Family::NestedToFlat,
        ]
    }
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Runtime; `None` when the run failed (FAIL in the paper's figures).
    pub elapsed: Option<Duration>,
    /// Engine metrics.
    pub stats: StatsSnapshot,
}

impl BenchRow {
    /// Formats the runtime column (`FAIL` for failed runs).
    pub fn time_cell(&self) -> String {
        match self.elapsed {
            Some(d) => format!("{:8.1}", d.as_secs_f64() * 1000.0),
            None => format!("{:>8}", "FAIL"),
        }
    }

    /// Formats the shuffled-data column in MiB.
    pub fn shuffle_cell(&self) -> String {
        format!("{:7.2}", self.stats.shuffled_mib())
    }
}

fn outcome_to_row(outcome: RunOutcome) -> BenchRow {
    let elapsed = match outcome.result {
        RunResult::Failed(_) => None,
        _ => Some(outcome.elapsed),
    };
    BenchRow {
        strategy: outcome.strategy,
        elapsed,
        stats: outcome.stats,
    }
}

/// Runs `run` `n` times and keeps the row with the smallest `key` — the
/// best-of-N selection every timing A/B pair in `BENCH_summary.json` uses:
/// single-shot walls on a shared CI machine are noisy enough to invert a
/// 10–20% margin, and the byte/morsel counters are identical across
/// repetitions anyway. A `None` key marks a failed run; any completed row
/// beats it, so a failed row survives only when every repetition failed.
pub fn best_of(
    n: usize,
    mut run: impl FnMut() -> BenchRow,
    key: impl Fn(&BenchRow) -> Option<f64>,
) -> BenchRow {
    assert!(n > 0, "best_of needs at least one run");
    let mut best: Option<BenchRow> = None;
    for _ in 0..n {
        let row = run();
        let better = match &best {
            None => true,
            Some(b) => match (key(&row), key(b)) {
                (Some(r), Some(k)) => r < k,
                (Some(_), None) => true,
                _ => false,
            },
        };
        if better {
            best = Some(row);
        }
    }
    best.expect("n > 0 produces a row")
}

/// Command-line overrides of the simulated cluster shape shared by the
/// figure binaries (see `trance_bench::cli_tuning`).
#[derive(Debug, Clone, Default)]
pub struct ClusterTuning {
    /// Overrides the number of hash partitions (default 16).
    pub partitions: Option<usize>,
    /// Absolute per-worker memory cap in bytes, overriding the
    /// input-proportional `--memory-factor` formula.
    pub memory_bytes: Option<usize>,
    /// Enables the out-of-core spill subsystem on the cluster.
    pub spill: bool,
    /// Runs the **staged** executor (no fused pipelines) instead of the
    /// default morsel-driven pipelined one — the A side of `--staged` A/B
    /// comparisons.
    pub staged: bool,
    /// Fault-plan spec (`--faults`, e.g. `42` or
    /// `seed=42,morsel=0.02,once=spill_read@3`) arming the cluster's
    /// deterministic fault injector. When absent, `TRANCE_FAULT_SEED`
    /// supplies the plan instead; when both are absent, runs are fault-free.
    pub faults: Option<String>,
}

/// The default simulated cluster used by every figure: 4 workers, 16 shuffle
/// partitions, a small broadcast threshold (so joins actually shuffle), and a
/// per-worker memory cap proportional to the input size so that strategies
/// which blow up the flattened representation fail exactly as in the paper.
pub fn default_cluster(input_bytes: usize, memory_factor: f64) -> DistContext {
    default_cluster_tuned(input_bytes, memory_factor, &ClusterTuning::default())
}

/// [`default_cluster`] with CLI-provided overrides applied.
pub fn default_cluster_tuned(
    input_bytes: usize,
    memory_factor: f64,
    tuning: &ClusterTuning,
) -> DistContext {
    // 4 KiB keeps even the small dimension tables over the limit at the
    // benchmark scales, so ordinary joins shuffle and only the skew path's
    // heavy-key subsets qualify for broadcast. `TRANCE_WORKERS` overrides
    // the 4-worker default (the CI matrix knob).
    let mut cfg = ClusterConfig::new(4, tuning.partitions.unwrap_or(16))
        .with_broadcast_limit(4 * 1024)
        .with_env_workers();
    if let Some(bytes) = tuning.memory_bytes {
        cfg = cfg.with_worker_memory(bytes);
    } else if memory_factor > 0.0 {
        let per_worker = ((input_bytes as f64 / cfg.workers as f64) * memory_factor) as usize;
        cfg = cfg.with_worker_memory(per_worker.max(64 * 1024));
    }
    if tuning.spill {
        cfg = cfg.with_spill();
    }
    cfg = match &tuning.faults {
        // `--faults` beats the `TRANCE_FAULT_SEED` environment knob.
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => cfg.with_faults(plan),
            Err(e) => {
                eprintln!("warning: ignoring invalid --faults spec: {e}");
                cfg
            }
        },
        None => cfg.with_env_faults(),
    };
    DistContext::new(cfg)
}

/// Environment with all flat TPC-H tables bound (for local materialization).
fn tpch_env(config: &TpchConfig) -> (Env, usize) {
    let data = generate(config);
    let bytes = [
        &data.lineitem,
        &data.orders,
        &data.customer,
        &data.nation,
        &data.region,
        &data.part,
    ]
    .iter()
    .map(|b| b.iter().map(MemSize::mem_size).sum::<usize>())
    .sum();
    let env = Env::from_bindings([
        ("Lineitem", Value::Bag(data.lineitem)),
        ("Orders", Value::Bag(data.orders)),
        ("Customer", Value::Bag(data.customer)),
        ("Nation", Value::Bag(data.nation)),
        ("Region", Value::Bag(data.region)),
        ("Part", Value::Bag(data.part)),
    ]);
    (env, bytes)
}

/// Typing environment mirroring [`tpch_env`]'s bindings, for driving the
/// textual front-end path: flat table types are inferred from a generated
/// sample and, when `depth > 0`, the nested input's type (the flat-to-nested
/// output type at `depth`) is bound as `Nested`.
pub fn tpch_type_env(config: &TpchConfig, depth: usize, variant: QueryVariant) -> TypeEnv {
    let data = generate(config);
    let mut env = TypeEnv::new();
    for (name, bag) in [
        ("Lineitem", &data.lineitem),
        ("Orders", &data.orders),
        ("Customer", &data.customer),
        ("Nation", &data.nation),
        ("Region", &data.region),
        ("Part", &data.part),
    ] {
        let elem = bag
            .iter()
            .next()
            .map(Value::infer_type)
            .unwrap_or(Type::Unknown);
        env.bind(name, Type::bag(elem));
    }
    if depth > 0 {
        let nested = infer(&flat_to_nested(depth, variant), &env)
            .expect("flat-to-nested must typecheck against the flat tables");
        env.bind("Nested", nested);
    }
    env
}

/// Microseconds to parse and typecheck the pretty-printed surface text of
/// `query` under `env` — the front-end cost a textual submission pays before
/// reaching the (cached) plan compiler. Panics if the query fails to
/// round-trip through the surface syntax: every benched query must be
/// expressible as text.
pub fn parse_typecheck_us(query: &Expr, env: &TypeEnv) -> f64 {
    let text = trance_nrc::pretty::pretty(query);
    let start = Instant::now();
    let parsed = trance_frontend::parse_expr(&text)
        .unwrap_or_else(|e| panic!("bench query text must re-parse: {e}"));
    infer(&parsed, env).expect("bench query text must typecheck");
    start.elapsed().as_secs_f64() * 1e6
}

/// Materializes the nested input of the nested-to-* families (the flat-to-
/// nested output at `depth`), exactly as the paper materializes it before
/// measuring.
pub fn materialize_nested_input(config: &TpchConfig, depth: usize, variant: QueryVariant) -> Bag {
    let (env, _) = tpch_env(config);
    eval(&flat_to_nested(depth, variant), &env)
        .expect("flat-to-nested materialization")
        .into_bag()
        .expect("bag result")
}

/// Builds the [`InputSet`] for one TPC-H experiment cell.
pub fn tpch_input_set(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    memory_factor: f64,
) -> (InputSet, QuerySpec) {
    tpch_input_set_tuned(
        config,
        family,
        depth,
        variant,
        memory_factor,
        &ClusterTuning::default(),
    )
}

/// [`tpch_input_set`] with CLI-provided cluster overrides applied.
pub fn tpch_input_set_tuned(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    memory_factor: f64,
    tuning: &ClusterTuning,
) -> (InputSet, QuerySpec) {
    let (env, flat_bytes) = tpch_env(config);
    let (query, nested_decls, nested_input) = match family {
        Family::FlatToNested => (flat_to_nested(depth, variant), vec![], None),
        Family::NestedToNested | Family::NestedToFlat => {
            let nested = materialize_nested_input(config, depth, variant);
            let query = match family {
                Family::NestedToNested => nested_to_nested(depth, variant),
                _ => nested_to_flat(depth, variant),
            };
            let decls = if depth == 0 {
                vec![]
            } else {
                vec![ShreddedInputDecl::new(
                    "Nested",
                    nesting_structure_for_depth(depth),
                )]
            };
            (query, decls, Some(nested))
        }
    };
    let nested_bytes: usize = nested_input
        .as_ref()
        .map(|b| b.iter().map(MemSize::mem_size).sum())
        .unwrap_or(0);
    let ctx = default_cluster_tuned(flat_bytes + nested_bytes, memory_factor, tuning);
    let mut inputs = InputSet::new(ctx);
    for name in ["Lineitem", "Orders", "Customer", "Nation", "Region", "Part"] {
        inputs
            .add_flat(name, env.get(name).unwrap().as_bag().unwrap().clone())
            .unwrap();
    }
    if let Some(nested) = nested_input {
        if depth == 0 {
            inputs.add_flat("Nested", nested).unwrap();
        } else {
            inputs.add_nested("Nested", nested).unwrap();
        }
    }
    let spec = QuerySpec::new(
        format!("{family:?}-depth{depth}-{variant:?}"),
        query,
        nested_decls,
    );
    (inputs, spec)
}

/// Runs one TPC-H experiment cell for each requested strategy (columnar
/// representation, the default).
pub fn run_tpch_query(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    strategies: &[Strategy],
    memory_factor: f64,
) -> Vec<BenchRow> {
    run_tpch_query_repr(
        config,
        family,
        depth,
        variant,
        strategies,
        memory_factor,
        true,
    )
}

/// Runs one TPC-H experiment cell in an explicit physical representation
/// (`columnar = false` selects the row oracle) — the pair the
/// row-vs-columnar byte comparisons in `BENCH_summary.json` are built from.
#[allow(clippy::too_many_arguments)]
pub fn run_tpch_query_repr(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    strategies: &[Strategy],
    memory_factor: f64,
    columnar: bool,
) -> Vec<BenchRow> {
    let (inputs, spec) = tpch_input_set(config, family, depth, variant, memory_factor);
    strategies
        .iter()
        .map(|s| outcome_to_row(run_query_repr(&spec, &inputs, *s, columnar)))
        .collect()
}

/// Runs one TPC-H experiment cell with the physical representation **and**
/// the executor mode spelled out (`pipelined = false` selects the staged
/// executor) — the pipelined-vs-staged A/B pairs in `BENCH_summary.json`
/// are built from this.
#[allow(clippy::too_many_arguments)]
pub fn run_tpch_query_exec(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    strategies: &[Strategy],
    memory_factor: f64,
    columnar: bool,
    pipelined: bool,
) -> Vec<BenchRow> {
    let (inputs, spec) = tpch_input_set(config, family, depth, variant, memory_factor);
    strategies
        .iter()
        .map(|s| {
            outcome_to_row(run_query_configured(
                &spec, &inputs, *s, columnar, pipelined,
            ))
        })
        .collect()
}

/// Runs one TPC-H experiment cell with the **expression engine** spelled out
/// (`compiled = false` forces the tree interpreter instead of the register
/// kernels) — the compiled-vs-interpreted A/B pairs in `BENCH_summary.json`
/// are built from this.
#[allow(clippy::too_many_arguments)]
pub fn run_tpch_query_expr(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    strategies: &[Strategy],
    memory_factor: f64,
    columnar: bool,
    compiled: bool,
) -> Vec<BenchRow> {
    let (inputs, spec) = tpch_input_set(config, family, depth, variant, memory_factor);
    strategies
        .iter()
        .map(|s| outcome_to_row(run_query_expr(&spec, &inputs, *s, columnar, compiled)))
        .collect()
}

/// [`run_tpch_query`] on a CLI-tuned cluster (partitions / absolute memory
/// cap / spill subsystem / staged executor).
pub fn run_tpch_query_tuned(
    config: &TpchConfig,
    family: Family,
    depth: usize,
    variant: QueryVariant,
    strategies: &[Strategy],
    memory_factor: f64,
    tuning: &ClusterTuning,
) -> Vec<BenchRow> {
    let (inputs, spec) =
        tpch_input_set_tuned(config, family, depth, variant, memory_factor, tuning);
    strategies
        .iter()
        .map(|s| {
            outcome_to_row(run_query_configured(
                &spec,
                &inputs,
                *s,
                true,
                !tuning.staged,
            ))
        })
        .collect()
}

/// One memory-capped cell run both ways on a spill-capable cluster: spill
/// off (reproducing the paper's FAIL) and spill on (completing out-of-core),
/// with the spill-on result differentially checked against an uncapped
/// in-memory oracle run.
#[derive(Debug, Clone)]
pub struct CappedCell {
    /// Query family of the cell.
    pub family: Family,
    /// Strategy of the cell.
    pub strategy: Strategy,
    /// The run with spilling disabled (expected: FAIL).
    pub spill_off: BenchRow,
    /// The run with spilling enabled (expected: ok, `spilled_bytes > 0`).
    pub spill_on: BenchRow,
    /// Whether the spill-on result matched the uncapped oracle
    /// (multiset-equal up to float-summation order).
    pub results_match_uncapped: bool,
}

/// Re-runs the three cells that FAIL under the default memory cap
/// (FlatToNested-Wide STANDARD + SPARKSQL-LIKE, NestedToNested-Wide
/// SPARKSQL-LIKE) on a spill-capable cluster at the **same cap**: spill off
/// must still FAIL, spill on must complete with results identical to an
/// uncapped oracle run.
pub fn run_capped_cells(config: &TpchConfig, memory_factor: f64) -> Vec<CappedCell> {
    let cells = [
        (Family::FlatToNested, Strategy::Standard),
        (Family::FlatToNested, Strategy::Baseline),
        (Family::NestedToNested, Strategy::Baseline),
    ];
    let mut out = Vec::new();
    for (family, strategy) in cells {
        // Uncapped in-memory oracle.
        let (oracle_inputs, oracle_spec) =
            tpch_input_set(config, family, 2, QueryVariant::Wide, 0.0);
        let oracle = run_query(&oracle_spec, &oracle_inputs, strategy);
        let oracle_bag = match &oracle.result {
            RunResult::Nested(d) => Some(d.collect_bag()),
            _ => None,
        };

        // The capped, spill-capable cluster (same memory factor as the
        // figure runs that FAIL).
        let tuning = ClusterTuning {
            spill: true,
            ..ClusterTuning::default()
        };
        let (inputs, spec) = tpch_input_set_tuned(
            config,
            family,
            2,
            QueryVariant::Wide,
            memory_factor,
            &tuning,
        );
        let off = run_query_spill(&spec, &inputs, strategy, false);
        let on = run_query_spill(&spec, &inputs, strategy, true);
        let results_match_uncapped = match (&oracle_bag, &on.result) {
            (Some(expected), RunResult::Nested(d)) => {
                trance_nrc::bags_approx_equal(expected, &d.collect_bag())
            }
            _ => false,
        };
        out.push(CappedCell {
            family,
            strategy,
            spill_off: outcome_to_row(off),
            spill_on: outcome_to_row(on),
            results_match_uncapped,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// biomedical pipeline
// ---------------------------------------------------------------------------

/// Per-step measurement of the E2E pipeline for one strategy.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// The strategy.
    pub strategy: Strategy,
    /// Per-step runtimes; `None` marks the step where the run failed (later
    /// steps are not attempted, as in the paper).
    pub steps: Vec<(String, Option<Duration>)>,
    /// Total shuffled bytes across the whole pipeline.
    pub shuffled_bytes: u64,
}

impl PipelineRow {
    /// Total runtime across completed steps.
    pub fn total(&self) -> Duration {
        self.steps.iter().filter_map(|(_, d)| *d).sum()
    }

    /// True when some step failed.
    pub fn failed(&self) -> bool {
        self.steps.iter().any(|(_, d)| d.is_none())
    }
}

/// Builds the distributed input set for the biomedical benchmark.
pub fn biomed_input_set(config: &BiomedConfig, memory_factor: f64) -> (InputSet, BiomedData) {
    biomed_input_set_tuned(config, memory_factor, &ClusterTuning::default())
}

/// [`biomed_input_set`] with CLI-provided cluster overrides applied.
pub fn biomed_input_set_tuned(
    config: &BiomedConfig,
    memory_factor: f64,
    tuning: &ClusterTuning,
) -> (InputSet, BiomedData) {
    let data = trance_biomed::generate(config);
    let bytes: usize = [
        &data.occurrences,
        &data.network,
        &data.gene_info,
        &data.impact_weights,
        &data.conseq_weights,
    ]
    .iter()
    .map(|b| b.iter().map(MemSize::mem_size).sum::<usize>())
    .sum();
    let ctx = default_cluster_tuned(bytes, memory_factor, tuning);
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("Occurrences", data.occurrences.clone())
        .unwrap();
    inputs.add_nested("Network", data.network.clone()).unwrap();
    inputs.add_flat("GeneInfo", data.gene_info.clone()).unwrap();
    inputs
        .add_flat("ImpactWeights", data.impact_weights.clone())
        .unwrap();
    inputs
        .add_flat("ConseqWeights", data.conseq_weights.clone())
        .unwrap();
    (inputs, data)
}

/// Runs the five-step E2E pipeline under one strategy, feeding each step's
/// output to the next (shredded outputs stay shredded between steps for the
/// shredded strategies; nested outputs stay distributed for the others).
pub fn run_biomed_pipeline(
    config: &BiomedConfig,
    strategy: Strategy,
    memory_factor: f64,
) -> PipelineRow {
    run_biomed_pipeline_tuned(config, strategy, memory_factor, &ClusterTuning::default())
}

/// [`run_biomed_pipeline`] on a CLI-tuned cluster.
pub fn run_biomed_pipeline_tuned(
    config: &BiomedConfig,
    strategy: Strategy,
    memory_factor: f64,
    tuning: &ClusterTuning,
) -> PipelineRow {
    run_biomed_pipeline_impl(config, strategy, memory_factor, tuning, None)
}

/// Runs the pipeline like [`run_biomed_pipeline`] while capturing, per step,
/// the EXPLAIN rendering of the optimized plans the step executed.
pub fn explain_biomed_pipeline(
    config: &BiomedConfig,
    strategy: Strategy,
    memory_factor: f64,
) -> Vec<(String, String)> {
    let mut explains = Vec::new();
    run_biomed_pipeline_impl(
        config,
        strategy,
        memory_factor,
        &ClusterTuning::default(),
        Some(&mut explains),
    );
    explains
}

fn run_biomed_pipeline_impl(
    config: &BiomedConfig,
    strategy: Strategy,
    memory_factor: f64,
    tuning: &ClusterTuning,
    mut explains: Option<&mut Vec<(String, String)>>,
) -> PipelineRow {
    let (mut inputs, _) = biomed_input_set_tuned(config, memory_factor, tuning);
    let structures: HashMap<&str, trance_shred::NestingStructure> = HashMap::from([
        ("Occurrences", trance_biomed::occurrences_structure()),
        ("Network", trance_biomed::network_structure()),
        ("HybridScores", trance_biomed::step1_structure()),
        ("NetworkScores", trance_biomed::step2_structure()),
    ]);
    let mut steps = Vec::new();
    let mut shuffled = 0u64;
    let mut failed = false;
    for (step_name, output_name, expr) in trance_biomed::pipeline_steps() {
        if failed {
            steps.push((step_name.to_string(), None));
            continue;
        }
        // Declare the nested inputs this step reads.
        let decls: Vec<ShreddedInputDecl> = expr
            .free_vars()
            .into_iter()
            .filter_map(|v| {
                structures
                    .get(v.as_str())
                    .map(|s| ShreddedInputDecl::new(v.clone(), s.clone()))
            })
            .collect();
        let spec = QuerySpec::new(step_name, expr, decls);
        let outcome = match explains.as_deref_mut() {
            Some(explains) => {
                let (outcome, text) =
                    trance_compiler::run_query_explained(&spec, &inputs, strategy);
                explains.push((step_name.to_string(), text));
                outcome
            }
            None => run_query_configured(&spec, &inputs, strategy, true, !tuning.staged),
        };
        shuffled += outcome.stats.shuffled_bytes;
        match &outcome.result {
            RunResult::Failed(_) => {
                steps.push((step_name.to_string(), None));
                failed = true;
            }
            RunResult::Nested(d) => {
                steps.push((step_name.to_string(), Some(outcome.elapsed)));
                inputs.add_nested_collection(output_name, d.clone());
                // Also make it available to a shredded next step.
                if let Some(s) = structures.get(output_name) {
                    let bag = d.collect_bag();
                    let _ = s;
                    inputs.add_nested(output_name, bag).unwrap();
                } else {
                    inputs.add_flat(output_name, d.collect_bag()).unwrap();
                }
            }
            RunResult::Shredded(out) => {
                steps.push((step_name.to_string(), Some(outcome.elapsed)));
                inputs.add_shredded(output_name, out);
                // The standard route of a later step (if mixed) would need the
                // nested form too; reconstruct it cheaply at this scale.
                if let Ok(bag) = trance_compiler::collect_unshredded(out) {
                    if structures.contains_key(output_name) {
                        inputs.add_nested(output_name, bag).unwrap();
                    } else {
                        inputs.add_flat(output_name, bag).unwrap();
                    }
                }
            }
        }
    }
    PipelineRow {
        strategy,
        steps,
        shuffled_bytes: shuffled,
    }
}
