//! # trance-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (Section 6) on the simulated cluster:
//!
//! * `figure7` — the TPC-H micro-benchmark: flat-to-nested, nested-to-nested
//!   and nested-to-flat queries at nesting depths 0–4, narrow and wide
//!   (Figure 7a / 7b);
//! * `figure8` — the skew experiment: nested-to-nested narrow at depth 2 for
//!   skew factors 0–4, with and without skew-aware operators (Figure 8);
//! * `figure9` — the biomedical end-to-end pipeline, per step, small and full
//!   datasets (Figure 9);
//! * `summary` — the headline ratios quoted in the experiment summary;
//! * `serve` — the closed-loop multi-client serving benchmark over the
//!   resident query-as-a-service engine: sustained QPS, latency percentiles
//!   and the compiled-plan-cache cold-vs-warm A/B pair.
//!
//! Each binary prints a table with one line per configuration: runtime in
//! milliseconds (or `FAIL` when the run exceeded the simulated per-worker
//! memory cap) and shuffled mebibytes per strategy.

#![warn(missing_docs)]

pub mod harness;
pub mod serve;

pub use harness::{
    best_of, biomed_input_set, biomed_input_set_tuned, default_cluster, default_cluster_tuned,
    explain_biomed_pipeline, materialize_nested_input, parse_typecheck_us, run_biomed_pipeline,
    run_biomed_pipeline_tuned, run_capped_cells, run_tpch_query, run_tpch_query_exec,
    run_tpch_query_expr, run_tpch_query_repr, run_tpch_query_tuned, tpch_input_set,
    tpch_input_set_tuned, tpch_type_env, BenchRow, CappedCell, ClusterTuning, Family, PipelineRow,
};
pub use serve::{
    run_closed_loop, run_cold_warm_pair, serve_engine, serve_query_set, wide_standard_case,
    ServeRow,
};

/// Returns the value following `name` on the command line, or `default`
/// (shared argument parsing of the figure binaries).
pub fn cli_arg(name: &str, default: &str) -> String {
    cli_opt(name).unwrap_or_else(|| default.to_string())
}

/// Returns the value following `name` on the command line, if present.
pub fn cli_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True when `name` appears anywhere on the command line.
pub fn cli_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses the cluster-shape flags shared by every figure binary:
/// `--partitions N`, `--memory BYTES` (an absolute per-worker cap overriding
/// `--memory-factor`), `--spill` (enable the out-of-core subsystem) and
/// `--staged` (disable fused pipelines and run the staged
/// one-materialization-per-operator executor — the A side of pipelined
/// vs. staged A/B runs) and `--faults SPEC` (arm the deterministic fault
/// injector, e.g. `--faults 42` or
/// `--faults seed=42,morsel=0.02,once=spill_read@3`; the `TRANCE_FAULT_SEED`
/// environment variable supplies the spec when the flag is absent), so
/// capped, spilling, A/B and chaos runs are reproducible from the command
/// line.
pub fn cli_tuning() -> ClusterTuning {
    ClusterTuning {
        partitions: cli_opt("--partitions").map(|v| v.parse().expect("--partitions N")),
        memory_bytes: cli_opt("--memory").map(|v| v.parse().expect("--memory BYTES")),
        spill: cli_flag("--spill"),
        staged: cli_flag("--staged"),
        faults: cli_opt("--faults"),
    }
}
