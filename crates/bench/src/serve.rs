//! Closed-loop **multi-client serving benchmark** over the resident
//! [`Engine`]: N client threads each drive M iterations of a mixed TPC-H
//! query set against one shared worker pool, measuring sustained QPS,
//! client-observed latency percentiles (queue wait included — that is what
//! a client sees) and the compiled-plan cache hit rate. A cold-vs-warm A/B
//! pair on the Wide STANDARD cell isolates what the cache buys: the cold
//! side clears the plan *and* kernel caches before every sample (full
//! lowering, optimizer pass and kernel compilation each time), the warm
//! side replays the cached plans verbatim and must book zero compile time.

use std::time::Instant;

use trance_compiler::{QuerySpec, Strategy};
use trance_dist::ClusterConfig;
use trance_server::{Engine, EngineConfig, QueryRequest};
use trance_shred::ShreddedInputDecl;
use trance_tpch::{
    flat_to_nested, generate, nested_to_flat, nested_to_nested, nesting_structure_for_depth,
    QueryVariant, TpchConfig,
};

use crate::harness::materialize_nested_input;

/// One measured serving configuration, destined for the `serve` section of
/// `BENCH_summary.json`.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Which configuration this row measures (e.g. `mixed`,
    /// `wide-standard-cold`, `wide-standard-warm`).
    pub label: String,
    /// Concurrent client threads driving the closed loop (1 for A/B rows).
    pub clients: usize,
    /// Queries completed.
    pub queries: u64,
    /// `Busy` rejections observed (each retried until admitted).
    pub rejected: u64,
    /// Sustained throughput: completed queries per wall-clock second.
    pub qps: f64,
    /// Median client-observed latency (queue wait + execution).
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Fraction of queries served from the compiled-plan cache.
    pub cache_hit_rate: f64,
    /// Mean kernel-compile milliseconds per query (0 on a pure warm run).
    pub compile_ms: f64,
    /// Optimized plans compiled across the run (0 on a pure warm run).
    pub plans_compiled: u64,
}

/// Builds a serving engine over the TPC-H tables: every flat table plus the
/// materialized nested input (the flat-to-nested output at `depth`),
/// registered once and resident for every query the engine serves.
pub fn serve_engine(
    config: &TpchConfig,
    depth: usize,
    variant: QueryVariant,
    clients: usize,
) -> Engine {
    // Same cluster shape as the figure runs (small broadcast limit so joins
    // actually shuffle; `TRANCE_WORKERS` overrides the pool size), no memory
    // cap: the serving benchmark measures throughput, not FAIL cells.
    let cluster = ClusterConfig::new(4, 16)
        .with_broadcast_limit(4 * 1024)
        .with_env_workers();
    let mut engine_config = EngineConfig::with_cluster(cluster);
    engine_config.max_in_flight = 4;
    engine_config.queue_capacity = (clients * 2).max(16);
    let engine = Engine::new(engine_config);

    let data = generate(config);
    for (name, bag) in [
        ("Lineitem", data.lineitem),
        ("Orders", data.orders),
        ("Customer", data.customer),
        ("Nation", data.nation),
        ("Region", data.region),
        ("Part", data.part),
    ] {
        engine
            .register_flat(name, bag)
            .expect("register flat table");
    }
    let nested = materialize_nested_input(config, depth, variant);
    if depth == 0 {
        engine
            .register_flat("Nested", nested)
            .expect("register depth-0 input");
    } else {
        engine
            .register_nested("Nested", nested)
            .expect("register nested input");
    }
    engine
}

fn nested_decls(depth: usize) -> Vec<ShreddedInputDecl> {
    if depth == 0 {
        vec![]
    } else {
        vec![ShreddedInputDecl::new(
            "Nested",
            nesting_structure_for_depth(depth),
        )]
    }
}

/// The mixed query set of the closed loop: all three TPC-H families, each
/// under a flattening and a shredded strategy — six distinct plan-cache
/// entries exercising both the standard and the shredded serving routes.
pub fn serve_query_set(depth: usize, variant: QueryVariant) -> Vec<(QuerySpec, Strategy)> {
    vec![
        (
            QuerySpec::new("serve-f2n", flat_to_nested(depth, variant), vec![]),
            Strategy::Standard,
        ),
        (
            QuerySpec::new("serve-f2n", flat_to_nested(depth, variant), vec![]),
            Strategy::Shred,
        ),
        (
            QuerySpec::new(
                "serve-n2n",
                nested_to_nested(depth, variant),
                nested_decls(depth),
            ),
            Strategy::Standard,
        ),
        (
            QuerySpec::new(
                "serve-n2n",
                nested_to_nested(depth, variant),
                nested_decls(depth),
            ),
            Strategy::Shred,
        ),
        (
            QuerySpec::new(
                "serve-n2f",
                nested_to_flat(depth, variant),
                nested_decls(depth),
            ),
            Strategy::Standard,
        ),
        (
            QuerySpec::new(
                "serve-n2f",
                nested_to_flat(depth, variant),
                nested_decls(depth),
            ),
            Strategy::ShredUnshred,
        ),
    ]
}

/// The Wide STANDARD cell the cold-vs-warm A/B pair runs: nested-to-nested
/// under the STANDARD strategy — the cell every other A/B pair in
/// `BENCH_summary.json` is anchored on.
pub fn wide_standard_case(depth: usize) -> (QuerySpec, Strategy) {
    (
        QuerySpec::new(
            "serve-n2n",
            nested_to_nested(depth, QueryVariant::Wide),
            nested_decls(depth),
        ),
        Strategy::Standard,
    )
}

#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    hits: u64,
    rejected: u64,
    compile_ms: f64,
    plans_compiled: u64,
}

impl Tally {
    fn record(&mut self, latency_ms: f64, resp: &trance_server::QueryResponse) {
        self.latencies_ms.push(latency_ms);
        if resp.cache_hit {
            self.hits += 1;
        }
        self.compile_ms += resp.compile_ms;
        self.plans_compiled += resp.plans_compiled as u64;
    }

    fn into_row(self, label: &str, clients: usize, wall_secs: f64) -> ServeRow {
        let mut sorted = self.latencies_ms;
        sorted.sort_by(|a, b| a.total_cmp(b));
        let queries = sorted.len() as u64;
        ServeRow {
            label: label.to_string(),
            clients,
            queries,
            rejected: self.rejected,
            qps: queries as f64 / wall_secs.max(1e-9),
            p50_ms: percentile(&sorted, 50.0),
            p95_ms: percentile(&sorted, 95.0),
            p99_ms: percentile(&sorted, 99.0),
            cache_hit_rate: if queries == 0 {
                0.0
            } else {
                self.hits as f64 / queries as f64
            },
            compile_ms: if queries == 0 {
                0.0
            } else {
                self.compile_ms / queries as f64
            },
            plans_compiled: self.plans_compiled,
        }
    }

    fn merge(mut tallies: Vec<Tally>) -> Tally {
        let mut out = Tally::default();
        for t in tallies.drain(..) {
            out.latencies_ms.extend(t.latencies_ms);
            out.hits += t.hits;
            out.rejected += t.rejected;
            out.compile_ms += t.compile_ms;
            out.plans_compiled += t.plans_compiled;
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The closed loop: `clients` threads each submit `iterations` passes over
/// the mixed query set (start offsets rotated per client so the mix
/// interleaves instead of marching in lockstep). `Busy` rejections are
/// counted and retried — a closed-loop client backs off, it does not drop
/// work — and every latency is client-observed: queue wait included.
pub fn run_closed_loop(
    engine: &Engine,
    cases: &[(QuerySpec, Strategy)],
    clients: usize,
    iterations: usize,
    label: &str,
) -> ServeRow {
    let t0 = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for it in 0..iterations {
                        for j in 0..cases.len() {
                            let (spec, strategy) = &cases[(c + it + j) % cases.len()];
                            let req =
                                QueryRequest::new(format!("client-{c}"), spec.clone(), *strategy);
                            let q0 = Instant::now();
                            loop {
                                match engine.submit(&req) {
                                    Ok(resp) => {
                                        tally.record(q0.elapsed().as_secs_f64() * 1000.0, &resp);
                                        break;
                                    }
                                    Err(e) if e.is_busy() => {
                                        tally.rejected += 1;
                                        std::thread::yield_now();
                                    }
                                    Err(e) => panic!("serve bench query failed: {e}"),
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    Tally::merge(tallies).into_row(label, clients, t0.elapsed().as_secs_f64())
}

/// The cold-vs-warm compiled-plan-cache A/B pair on one cell, single
/// client. Cold: the plan *and* kernel caches are cleared before every
/// sample, so each one pays full lowering, the optimizer pass and kernel
/// compilation. Warm: one unrecorded priming submission fills the cache,
/// then every sample replays the captured plans — each must be a cache hit
/// booking zero compile time.
pub fn run_cold_warm_pair(
    engine: &Engine,
    spec: &QuerySpec,
    strategy: Strategy,
    samples: usize,
    label: &str,
) -> (ServeRow, ServeRow) {
    let req = QueryRequest::new("ab-client", spec.clone(), strategy);
    let sample_loop = |cold: bool| -> (Tally, f64) {
        engine.clear_plan_cache();
        if !cold {
            engine.submit(&req).expect("warm priming run");
        }
        let mut tally = Tally::default();
        let t0 = Instant::now();
        for _ in 0..samples {
            if cold {
                engine.clear_plan_cache();
            }
            let q0 = Instant::now();
            let resp = engine.submit(&req).expect("A/B sample");
            debug_assert_eq!(resp.cache_hit, !cold, "A/B side hit the wrong cache state");
            tally.record(q0.elapsed().as_secs_f64() * 1000.0, &resp);
        }
        (tally, t0.elapsed().as_secs_f64())
    };
    let (cold_tally, cold_wall) = sample_loop(true);
    let (warm_tally, warm_wall) = sample_loop(false);
    (
        cold_tally.into_row(&format!("{label}-cold"), 1, cold_wall),
        warm_tally.into_row(&format!("{label}-warm"), 1, warm_wall),
    )
}
