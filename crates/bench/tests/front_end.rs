//! Every benched TPC-H query must be expressible in the surface syntax:
//! `parse_typecheck_us` pretty-prints the query, re-parses it with the
//! front-end and typechecks it, panicking on any mismatch. This pins the
//! `parse_typecheck_us` column of `BENCH_summary.json` to a measurable
//! (non-degenerate) front-end pass for every cell the summary emits.

use trance_bench::{parse_typecheck_us, tpch_type_env, Family};
use trance_tpch::{flat_to_nested, nested_to_flat, nested_to_nested, QueryVariant, TpchConfig};

#[test]
fn all_summary_queries_round_trip_through_the_front_end() {
    let cfg = TpchConfig::new(0.01, 0);
    for variant in [QueryVariant::Narrow, QueryVariant::Wide] {
        for depth in [1usize, 2] {
            let env = tpch_type_env(&cfg, depth, variant);
            for family in [
                Family::FlatToNested,
                Family::NestedToNested,
                Family::NestedToFlat,
            ] {
                let query = match family {
                    Family::FlatToNested => flat_to_nested(depth, variant),
                    Family::NestedToNested => nested_to_nested(depth, variant),
                    Family::NestedToFlat => nested_to_flat(depth, variant),
                };
                let us = parse_typecheck_us(&query, &env);
                assert!(
                    us >= 0.0 && us.is_finite(),
                    "{family:?} depth {depth} {variant:?}: bad measurement {us}"
                );
            }
        }
    }
}
