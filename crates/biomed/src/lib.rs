//! # trance-biomed
//!
//! The biomedical benchmark of Section 6: synthetic data generators shaped
//! like the ICGC inputs used by the paper (a two-level nested occurrences
//! relation, a one-level nested gene network, and flat annotation tables) and
//! the five-step end-to-end pipeline `E2E` whose final output is flat.
//!
//! Substitution note (see DESIGN.md): the real inputs are controlled-access
//! cancer-genomics datasets (BN2 ≈ 280 GB of somatic mutation occurrences
//! annotated by the Ensembl VEP, BN1 the STRING protein network, BF1–BF3 gene
//! and consequence annotations). The generators below reproduce the schema
//! shapes, nesting depths and cardinality ratios of those inputs at a
//! configurable scale, which is what the pipeline's behaviour depends on.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_nrc::builder::*;
use trance_nrc::{Bag, Expr, Value};
use trance_shred::NestingStructure;

/// Scale of the synthetic biomedical dataset.
#[derive(Debug, Clone)]
pub struct BiomedConfig {
    /// Number of samples in the occurrences relation (BN2).
    pub samples: usize,
    /// Mutations per sample (BN2 level 1).
    pub mutations_per_sample: usize,
    /// Consequences per mutation (BN2 level 2).
    pub consequences_per_mutation: usize,
    /// Number of genes (BN1 / BF1 domain).
    pub genes: usize,
    /// Network edges per gene (BN1 level 1).
    pub edges_per_gene: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BiomedConfig {
    /// The "small dataset" configuration of Figure 9.
    pub fn small() -> Self {
        BiomedConfig {
            samples: 40,
            mutations_per_sample: 25,
            consequences_per_mutation: 4,
            genes: 120,
            edges_per_gene: 12,
            seed: 7,
        }
    }

    /// The "full dataset" configuration of Figure 9 (larger along every axis,
    /// keeping the same ratios as the paper's 280 GB / 4 GB inputs).
    pub fn full() -> Self {
        BiomedConfig {
            samples: 150,
            mutations_per_sample: 60,
            consequences_per_mutation: 6,
            genes: 400,
            edges_per_gene: 25,
            seed: 7,
        }
    }

    /// Scales every cardinality by `factor`.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.samples = ((self.samples as f64) * factor).max(1.0) as usize;
        self.mutations_per_sample = ((self.mutations_per_sample as f64) * factor).max(1.0) as usize;
        self.genes = ((self.genes as f64) * factor).max(4.0) as usize;
        self
    }
}

/// The generated biomedical inputs.
#[derive(Debug, Clone)]
pub struct BiomedData {
    /// BN2: `⟨sample, mutations: Bag⟨mutid, gene, impact, consequences: Bag⟨conseq, score⟩⟩⟩`.
    pub occurrences: Bag,
    /// BN1: `⟨gene, edges: Bag⟨gene2, weight⟩⟩`.
    pub network: Bag,
    /// BF1: `⟨gene, gname, glen⟩`.
    pub gene_info: Bag,
    /// BF2: `⟨impact, iweight⟩`.
    pub impact_weights: Bag,
    /// BF3: `⟨conseq, cweight⟩` (tiny, like the Sequence Ontology table).
    pub conseq_weights: Bag,
}

const IMPACTS: [&str; 4] = ["HIGH", "MODERATE", "LOW", "MODIFIER"];
const CONSEQS: [&str; 6] = [
    "missense",
    "stop_gained",
    "synonymous",
    "frameshift",
    "splice",
    "intron",
];

/// Generates the synthetic biomedical inputs.
pub fn generate(config: &BiomedConfig) -> BiomedData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let occurrences = Bag::new(
        (0..config.samples)
            .map(|s| {
                let mutations: Vec<Value> = (0..config.mutations_per_sample)
                    .map(|m| {
                        let consequences: Vec<Value> = (0..config.consequences_per_mutation)
                            .map(|c| {
                                Value::tuple([
                                    ("conseq", Value::str(CONSEQS[(m + c) % CONSEQS.len()])),
                                    ("score", Value::Real(rng.gen_range(0.0..1.0))),
                                ])
                            })
                            .collect();
                        Value::tuple([
                            ("mutid", Value::Int((s * 10_000 + m) as i64)),
                            ("gene", Value::Int(rng.gen_range(0..config.genes) as i64)),
                            ("impact", Value::str(IMPACTS[m % IMPACTS.len()])),
                            ("consequences", Value::bag(consequences)),
                        ])
                    })
                    .collect();
                Value::tuple([
                    ("sample", Value::str(format!("sample-{s}"))),
                    ("mutations", Value::bag(mutations)),
                ])
            })
            .collect(),
    );
    let network = Bag::new(
        (0..config.genes)
            .map(|g| {
                let edges: Vec<Value> = (0..config.edges_per_gene)
                    .map(|e| {
                        Value::tuple([
                            ("gene2", Value::Int(((g + e + 1) % config.genes) as i64)),
                            ("weight", Value::Real(rng.gen_range(0.1..1.0))),
                        ])
                    })
                    .collect();
                Value::tuple([("gene", Value::Int(g as i64)), ("edges", Value::bag(edges))])
            })
            .collect(),
    );
    let gene_info = Bag::new(
        (0..config.genes)
            .map(|g| {
                Value::tuple([
                    ("gene", Value::Int(g as i64)),
                    ("gname", Value::str(format!("GENE{g}"))),
                    ("glen", Value::Int(1000 + (g * 37 % 5000) as i64)),
                ])
            })
            .collect(),
    );
    let impact_weights = Bag::new(
        IMPACTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Value::tuple([
                    ("impact", Value::str(*name)),
                    ("iweight", Value::Real(1.0 - i as f64 * 0.2)),
                ])
            })
            .collect(),
    );
    let conseq_weights = Bag::new(
        CONSEQS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Value::tuple([
                    ("conseq", Value::str(*name)),
                    ("cweight", Value::Real(1.0 - i as f64 * 0.1)),
                ])
            })
            .collect(),
    );
    BiomedData {
        occurrences,
        network,
        gene_info,
        impact_weights,
        conseq_weights,
    }
}

/// Nesting structure of the occurrences input (BN2).
pub fn occurrences_structure() -> NestingStructure {
    NestingStructure::flat().with_child(
        "mutations",
        NestingStructure::flat().with_child("consequences", NestingStructure::flat()),
    )
}

/// Nesting structure of the network input (BN1).
pub fn network_structure() -> NestingStructure {
    NestingStructure::flat().with_child("edges", NestingStructure::flat())
}

/// Nesting structure of Step 1's output (sample → gene scores).
pub fn step1_structure() -> NestingStructure {
    NestingStructure::flat().with_child("genescores", NestingStructure::flat())
}

/// Nesting structure of Step 2's output (sample → connectivity scores).
pub fn step2_structure() -> NestingStructure {
    NestingStructure::flat().with_child("connectivity", NestingStructure::flat())
}

/// Step 1 — hybrid scores: flatten the whole of BN2, joining BF2 at level 1
/// and BF3 at level 2, aggregating per gene and regrouping per sample.
pub fn step1() -> Expr {
    forin(
        "occ",
        var("Occurrences"),
        singleton(tuple([
            ("sample", proj(var("occ"), "sample")),
            (
                "genescores",
                sum_by(
                    forin(
                        "m",
                        proj(var("occ"), "mutations"),
                        forin(
                            "cq",
                            proj(var("m"), "consequences"),
                            forin(
                                "iw",
                                var("ImpactWeights"),
                                ifthen(
                                    cmp_eq(proj(var("iw"), "impact"), proj(var("m"), "impact")),
                                    forin(
                                        "cw",
                                        var("ConseqWeights"),
                                        ifthen(
                                            cmp_eq(
                                                proj(var("cw"), "conseq"),
                                                proj(var("cq"), "conseq"),
                                            ),
                                            singleton(tuple([
                                                ("gene", proj(var("m"), "gene")),
                                                (
                                                    "score",
                                                    mul(
                                                        proj(var("cq"), "score"),
                                                        mul(
                                                            proj(var("iw"), "iweight"),
                                                            proj(var("cw"), "cweight"),
                                                        ),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                    &["gene"],
                    &["score"],
                ),
            ),
        ])),
    )
}

/// Step 2 — network propagation: join BN1 with Step 1's output on gene at the
/// first level and aggregate connectivity per neighbouring gene.
pub fn step2() -> Expr {
    forin(
        "hs",
        var("HybridScores"),
        singleton(tuple([
            ("sample", proj(var("hs"), "sample")),
            (
                "connectivity",
                sum_by(
                    forin(
                        "g",
                        proj(var("hs"), "genescores"),
                        forin(
                            "n",
                            var("Network"),
                            ifthen(
                                cmp_eq(proj(var("n"), "gene"), proj(var("g"), "gene")),
                                forin(
                                    "e",
                                    proj(var("n"), "edges"),
                                    singleton(tuple([
                                        ("gene2", proj(var("e"), "gene2")),
                                        (
                                            "cscore",
                                            mul(proj(var("g"), "score"), proj(var("e"), "weight")),
                                        ),
                                    ])),
                                ),
                            ),
                        ),
                    ),
                    &["gene2"],
                    &["cscore"],
                ),
            ),
        ])),
    )
}

/// Step 3 — flatten to per-gene totals across all samples.
pub fn step3() -> Expr {
    sum_by(
        forin(
            "ns",
            var("NetworkScores"),
            forin(
                "c",
                proj(var("ns"), "connectivity"),
                singleton(tuple([
                    ("gene", proj(var("c"), "gene2")),
                    ("total", proj(var("c"), "cscore")),
                ])),
            ),
        ),
        &["gene"],
        &["total"],
    )
}

/// Step 4 — annotate per-gene totals with gene metadata (flat join).
pub fn step4() -> Expr {
    forin(
        "t",
        var("TopGenes"),
        forin(
            "gi",
            var("GeneInfo"),
            ifthen(
                cmp_eq(proj(var("gi"), "gene"), proj(var("t"), "gene")),
                singleton(tuple([
                    ("gname", proj(var("gi"), "gname")),
                    ("glen", proj(var("gi"), "glen")),
                    ("total", proj(var("t"), "total")),
                ])),
            ),
        ),
    )
}

/// Step 5 — final summary: normalized driver-gene score per gene name.
pub fn step5() -> Expr {
    sum_by(
        forin(
            "a",
            var("Annotated"),
            singleton(tuple([
                ("gname", proj(var("a"), "gname")),
                (
                    "driver_score",
                    div(proj(var("a"), "total"), proj(var("a"), "glen")),
                ),
            ])),
        ),
        &["gname"],
        &["driver_score"],
    )
}

/// The five pipeline steps: `(step name, name of the relation the step's
/// output is bound to, query)`.
pub fn pipeline_steps() -> Vec<(&'static str, &'static str, Expr)> {
    vec![
        ("Step1", "HybridScores", step1()),
        ("Step2", "NetworkScores", step2()),
        ("Step3", "TopGenes", step3()),
        ("Step4", "Annotated", step4()),
        ("Step5", "Summary", step5()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use trance_nrc::{Env, Evaluator};

    #[test]
    fn generator_respects_cardinalities() {
        let cfg = BiomedConfig::small();
        let d = generate(&cfg);
        assert_eq!(d.occurrences.len(), cfg.samples);
        assert_eq!(d.network.len(), cfg.genes);
        let first = d.occurrences.items()[0].as_tuple().unwrap().clone();
        assert_eq!(
            first.get("mutations").unwrap().as_bag().unwrap().len(),
            cfg.mutations_per_sample
        );
    }

    #[test]
    fn e2e_pipeline_evaluates_locally_and_ends_flat() {
        let d = generate(&BiomedConfig::small().scaled(0.3));
        let mut env = Env::from_bindings([
            ("Occurrences", Value::Bag(d.occurrences)),
            ("Network", Value::Bag(d.network)),
            ("GeneInfo", Value::Bag(d.gene_info)),
            ("ImpactWeights", Value::Bag(d.impact_weights)),
            ("ConseqWeights", Value::Bag(d.conseq_weights)),
        ]);
        let ev = Evaluator::default();
        for (step, output, expr) in pipeline_steps() {
            let out = ev.eval(&expr, &env).unwrap();
            assert!(
                !out.as_bag().unwrap().is_empty(),
                "{step} produced an empty result"
            );
            env.bind(output, out);
        }
        let summary = env.get("Summary").unwrap().as_bag().unwrap();
        let row = summary.items()[0].as_tuple().unwrap();
        assert!(row.get("gname").is_some() && row.get("driver_score").is_some());
    }

    #[test]
    fn structures_match_step_outputs() {
        assert_eq!(occurrences_structure().paths().len(), 2);
        assert_eq!(network_structure().paths(), vec!["edges".to_string()]);
        assert_eq!(step1_structure().paths(), vec!["genescores".to_string()]);
        assert_eq!(step2_structure().paths(), vec!["connectivity".to_string()]);
    }
}
