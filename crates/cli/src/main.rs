//! `trance-cli` — run a surface-NRC query file against a catalog.
//!
//! ```text
//! trance-cli [OPTIONS] QUERY.nrc
//! ```
//!
//! The query file is parsed with `trance-frontend`, type checked against the
//! selected catalog, lowered through the chosen compilation strategy and
//! executed on the in-process simulated cluster. Multi-assignment programs
//! (`A <= e1  Result <= e2`) are desugared into a `let` chain whose body is
//! the final assignment.
//!
//! Exit codes are typed so scripts can distinguish failure classes:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | success                                   |
//! | 2    | usage error (bad flags, unknown strategy) |
//! | 3    | I/O error (query file, CSV catalog)       |
//! | 4    | parse error (spanned diagnostic printed)  |
//! | 5    | type error                                |
//! | 6    | execution failure (memory cap, faults)    |

use std::process::ExitCode;

use trance_compiler::{
    collect_unshredded, explain_query, run_query, InputSet, QuerySpec, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext, FaultPlan};
use trance_nrc::{Bag, ScalarType, Type, TypeEnv, Value};
use trance_shred::{nesting_structure, NestingStructure, ShreddedInputDecl};

const USAGE: &str = "\
trance-cli — run a surface-NRC query file against a catalog

USAGE:
    trance-cli [OPTIONS] QUERY.nrc

OPTIONS:
    --catalog SPEC      tpch[:SCALE[:SKEW]] (default tpch:0.05:0), biomed,
                        or csv:DIR (every *.csv in DIR becomes a table; the
                        header names columns as `name:type` with types
                        int, real, string, bool, date)
    --strategy NAME     standard | baseline | shred (default) | shred-unshred |
                        standard-skew | shred-skew | shred-unshred-skew
                        (case-insensitive; paper labels like SHRED+UNSHRED
                        are accepted too)
    --explain           print the optimized plan(s) instead of executing
    --workers N         simulated worker count (default 4)
    --memory BYTES      per-worker memory cap; runs exceeding it FAIL
    --faults SPEC       fault-injection plan, e.g. `42` or
                        `seed=42,morsel=0.02,once=spill_read@3`
    --limit N           print at most N result rows (default 20, 0 = all)
    --help              this text

EXIT CODES:
    0 ok, 2 usage, 3 I/O, 4 parse error, 5 type error, 6 execution failure";

/// A terminal error: a message for stderr plus the process exit code.
#[derive(Debug)]
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: 2,
            message: message.into(),
        }
    }
    fn io(message: impl Into<String>) -> CliError {
        CliError {
            code: 3,
            message: message.into(),
        }
    }
    fn parse(message: impl Into<String>) -> CliError {
        CliError {
            code: 4,
            message: message.into(),
        }
    }
    fn types(message: impl Into<String>) -> CliError {
        CliError {
            code: 5,
            message: message.into(),
        }
    }
    fn exec(message: impl Into<String>) -> CliError {
        CliError {
            code: 6,
            message: message.into(),
        }
    }
}

/// Parsed command line.
#[derive(Debug)]
struct Options {
    query_file: String,
    catalog: String,
    strategy: Strategy,
    explain: bool,
    workers: Option<usize>,
    memory: Option<usize>,
    faults: Option<String>,
    limit: usize,
}

fn parse_strategy(name: &str) -> Option<Strategy> {
    // Accept both the CLI spellings and the paper labels the benchmark
    // figures use (SHRED+UNSHRED, SPARKSQL-LIKE, ...), case-insensitively.
    let norm: String = name
        .trim()
        .to_ascii_lowercase()
        .chars()
        .map(|c| {
            if c == '_' || c == '+' || c == ' ' {
                '-'
            } else {
                c
            }
        })
        .collect();
    match norm.as_str() {
        "standard" => Some(Strategy::Standard),
        "baseline" | "sparksql" | "sparksql-like" => Some(Strategy::Baseline),
        "shred" => Some(Strategy::Shred),
        "shred-unshred" | "unshred" => Some(Strategy::ShredUnshred),
        "standard-skew" => Some(Strategy::StandardSkew),
        "shred-skew" => Some(Strategy::ShredSkew),
        "shred-unshred-skew" => Some(Strategy::ShredUnshredSkew),
        _ => None,
    }
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        query_file: String::new(),
        catalog: "tpch:0.05:0".to_string(),
        strategy: Strategy::Shred,
        explain: false,
        workers: None,
        memory: None,
        faults: None,
        limit: 20,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{flag} requires a value\n\n{USAGE}")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                return Err(CliError {
                    code: 0,
                    message: USAGE.to_string(),
                })
            }
            "--catalog" => opts.catalog = value("--catalog")?,
            "--strategy" => {
                let name = value("--strategy")?;
                opts.strategy = parse_strategy(&name).ok_or_else(|| {
                    CliError::usage(format!("unknown strategy `{name}`\n\n{USAGE}"))
                })?;
            }
            "--explain" => opts.explain = true,
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = Some(v.trim().parse().map_err(|_| {
                    CliError::usage(format!("--workers expects a positive integer, got `{v}`"))
                })?);
            }
            "--memory" => {
                let v = value("--memory")?;
                opts.memory = Some(v.trim().parse().map_err(|_| {
                    CliError::usage(format!("--memory expects a byte count, got `{v}`"))
                })?);
            }
            "--faults" => opts.faults = Some(value("--faults")?),
            "--limit" => {
                let v = value("--limit")?;
                opts.limit = v.trim().parse().map_err(|_| {
                    CliError::usage(format!("--limit expects a non-negative integer, got `{v}`"))
                })?;
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!(
                    "unknown flag `{other}`\n\n{USAGE}"
                )));
            }
            file => {
                if !opts.query_file.is_empty() {
                    return Err(CliError::usage(format!(
                        "unexpected extra argument `{file}` (query file already given: `{}`)",
                        opts.query_file
                    )));
                }
                opts.query_file = file.to_string();
            }
        }
    }
    if opts.query_file.is_empty() {
        return Err(CliError::usage(format!("no query file given\n\n{USAGE}")));
    }
    Ok(opts)
}

/// One catalog table: its name and rows.
struct TableDef {
    name: String,
    rows: Bag,
}

fn load_catalog(spec: &str) -> Result<Vec<TableDef>, CliError> {
    let spec = spec.trim();
    if spec == "biomed" {
        let data = trance_biomed::generate(&trance_biomed::BiomedConfig::small());
        return Ok(vec![
            table("occurrences", data.occurrences),
            table("network", data.network),
            table("gene_info", data.gene_info),
            table("impact_weights", data.impact_weights),
            table("conseq_weights", data.conseq_weights),
        ]);
    }
    if let Some(rest) = spec.strip_prefix("csv:") {
        return load_csv_catalog(rest);
    }
    if spec == "tpch" || spec.starts_with("tpch:") {
        let mut scale = 0.05f64;
        let mut skew = 0u32;
        let mut parts = spec.splitn(3, ':');
        parts.next(); // "tpch"
        if let Some(s) = parts.next() {
            scale = s.parse().map_err(|_| {
                CliError::usage(format!("bad TPC-H scale `{s}` (expected a number)"))
            })?;
        }
        if let Some(s) = parts.next() {
            skew = s
                .parse()
                .map_err(|_| CliError::usage(format!("bad TPC-H skew `{s}` (expected 0-4)")))?;
        }
        let data = trance_tpch::generate(&trance_tpch::TpchConfig::new(scale, skew));
        return Ok(vec![
            table("lineitem", data.lineitem),
            table("orders", data.orders),
            table("customer", data.customer),
            table("nation", data.nation),
            table("region", data.region),
            table("part", data.part),
        ]);
    }
    Err(CliError::usage(format!(
        "unknown catalog `{spec}` (expected tpch[:SCALE[:SKEW]], biomed or csv:DIR)"
    )))
}

fn table(name: &str, rows: Bag) -> TableDef {
    TableDef {
        name: name.to_string(),
        rows,
    }
}

fn load_csv_catalog(dir: &str) -> Result<Vec<TableDef>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::io(format!("cannot read catalog directory `{dir}`: {e}")))?;
    let mut tables = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| CliError::io(format!("cannot list `{dir}`: {e}")))?
            .path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::io(format!("cannot read `{}`: {e}", path.display())))?;
        tables.push(TableDef {
            rows: parse_csv(&name, &text)?,
            name,
        });
    }
    if tables.is_empty() {
        return Err(CliError::io(format!("no *.csv files found in `{dir}`")));
    }
    tables.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(tables)
}

/// Parses a simple CSV table (no embedded commas or newlines). The header
/// declares `name:type` columns; types are int, real, string, bool, date.
/// Empty fields become NULL.
fn parse_csv(table: &str, text: &str) -> Result<Bag, CliError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| CliError::io(format!("table `{table}`: empty CSV file")))?;
    let mut cols = Vec::new();
    for col in header.split(',') {
        let (name, ty) = col.trim().split_once(':').ok_or_else(|| {
            CliError::io(format!(
                "table `{table}`: header column `{col}` is not `name:type`"
            ))
        })?;
        let ty = match ty.trim() {
            "int" => Type::int(),
            "real" => Type::real(),
            "string" => Type::string(),
            "bool" => Type::boolean(),
            "date" => Type::date(),
            other => {
                return Err(CliError::io(format!(
                    "table `{table}`: column `{name}` has unknown type `{other}` \
                     (expected int, real, string, bool or date)"
                )))
            }
        };
        cols.push((name.trim().to_string(), ty));
    }
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols.len() {
            return Err(CliError::io(format!(
                "table `{table}` row {}: {} fields, header declares {}",
                lineno + 2,
                fields.len(),
                cols.len()
            )));
        }
        let mut tuple = Vec::new();
        for ((name, ty), raw) in cols.iter().zip(fields) {
            tuple.push((name.clone(), parse_csv_field(table, name, ty, raw)?));
        }
        rows.push(Value::tuple(tuple));
    }
    Ok(Bag::new(rows))
}

fn parse_csv_field(table: &str, col: &str, ty: &Type, raw: &str) -> Result<Value, CliError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    let raw = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or(raw);
    let bad = |what: &str| {
        CliError::io(format!(
            "table `{table}` column `{col}`: `{raw}` is not a valid {what}"
        ))
    };
    match ty {
        Type::Scalar(ScalarType::Int) => raw.parse().map(Value::Int).map_err(|_| bad("int")),
        Type::Scalar(ScalarType::Real) => raw.parse().map(Value::Real).map_err(|_| bad("real")),
        Type::Scalar(ScalarType::Bool) => raw.parse().map(Value::Bool).map_err(|_| bad("bool")),
        Type::Scalar(ScalarType::Date) => raw.parse().map(Value::Date).map_err(|_| bad("date")),
        _ => Ok(Value::str(raw)),
    }
}

fn cluster_config(opts: &Options) -> Result<ClusterConfig, CliError> {
    let mut config = ClusterConfig::new(4, 16)
        .with_env_workers()
        .with_env_faults();
    if let Some(w) = opts.workers {
        config = config.with_workers(w);
    }
    if let Some(bytes) = opts.memory {
        config = config.with_worker_memory(bytes);
    }
    if let Some(spec) = &opts.faults {
        let plan = FaultPlan::parse(spec)
            .map_err(|e| CliError::usage(format!("bad --faults spec: {e}")))?;
        config = config.with_faults(plan);
    }
    Ok(config)
}

fn run(opts: &Options) -> Result<(), CliError> {
    let source = std::fs::read_to_string(&opts.query_file)
        .map_err(|e| CliError::io(format!("cannot read `{}`: {e}", opts.query_file)))?;
    let program = trance_frontend::parse_program(&source)
        .map_err(|e| CliError::parse(format!("{}: {e}", opts.query_file)))?;

    let tables = load_catalog(&opts.catalog)?;

    // Type check against the catalog schema (inferred from the data), then
    // derive the shredded-input declarations for every nested table.
    let mut env = TypeEnv::new();
    let mut structures: Vec<(String, NestingStructure)> = Vec::new();
    for t in &tables {
        let ty = Value::Bag(t.rows.clone()).infer_type();
        let structure =
            nesting_structure(&ty).map_err(|e| CliError::io(format!("table `{}`: {e}", t.name)))?;
        structures.push((t.name.clone(), structure));
        env.bind(t.name.clone(), ty);
    }
    let types = program
        .typecheck(&env)
        .map_err(|e| CliError::types(format!("{}: type error: {e}", opts.query_file)))?;
    if let Some((name, ty)) = types.last() {
        eprintln!("{name} : {ty}");
    }

    let query = program
        .to_let_chain()
        .ok_or_else(|| CliError::parse(format!("{}: empty program", opts.query_file)))?;
    let used = query.free_vars();
    let decls: Vec<ShreddedInputDecl> = structures
        .iter()
        .filter(|(name, s)| !s.children.is_empty() && used.contains(name))
        .map(|(name, s)| ShreddedInputDecl::new(name, s.clone()))
        .collect();

    let ctx = DistContext::new(cluster_config(opts)?);
    let mut inputs = InputSet::new(ctx);
    for t in &tables {
        if !used.contains(&t.name) {
            continue;
        }
        let structure = &structures.iter().find(|(n, _)| n == &t.name).unwrap().1;
        let loaded = if structure.children.is_empty() {
            inputs.add_flat(&t.name, t.rows.clone())
        } else {
            inputs.add_nested(&t.name, t.rows.clone())
        };
        loaded.map_err(|e| CliError::exec(format!("loading table `{}`: {e}", t.name)))?;
    }

    let spec_name = std::path::Path::new(&opts.query_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("query")
        .to_string();
    let spec = QuerySpec::new(spec_name, query, decls);

    if opts.explain {
        let text = explain_query(&spec, &inputs, opts.strategy)
            .map_err(|e| CliError::exec(format!("explain failed: {e}")))?;
        println!("{text}");
        return Ok(());
    }

    let outcome = run_query(&spec, &inputs, opts.strategy);
    let bag = match outcome.result {
        RunResult::Failed(e) => {
            return Err(CliError::exec(format!(
                "execution failed under {}: {e}",
                opts.strategy.label()
            )))
        }
        RunResult::Nested(d) => d.collect_bag(),
        RunResult::Shredded(out) => collect_unshredded(&out)
            .map_err(|e| CliError::exec(format!("unshredding failed: {e}")))?,
    };

    eprintln!(
        "{}: {} rows in {:.1} ms (shuffled {} bytes, broadcast {} bytes)",
        outcome.strategy.label(),
        bag.len(),
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.stats.shuffled_bytes,
        outcome.stats.broadcast_bytes,
    );
    let limit = if opts.limit == 0 {
        bag.len()
    } else {
        opts.limit
    };
    for row in bag.iter().take(limit) {
        println!("{row}");
    }
    if bag.len() > limit {
        println!("... ({} more rows)", bag.len() - limit);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            if e.code == 0 {
                println!("{}", e.message);
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {}", e.message);
            return ExitCode::from(e.code);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_accept_cli_and_paper_spellings() {
        assert_eq!(parse_strategy("shred"), Some(Strategy::Shred));
        assert_eq!(
            parse_strategy("SHRED+UNSHRED"),
            Some(Strategy::ShredUnshred)
        );
        assert_eq!(parse_strategy("SparkSQL-like"), Some(Strategy::Baseline));
        assert_eq!(
            parse_strategy(" shred_unshred_skew "),
            Some(Strategy::ShredUnshredSkew)
        );
        assert_eq!(parse_strategy("mapreduce"), None);
    }

    #[test]
    fn args_parse_flags_and_positional_query_file() {
        let args: Vec<String> = ["--strategy", "standard", "--limit", "5", "q.nrc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.query_file, "q.nrc");
        assert_eq!(opts.strategy, Strategy::Standard);
        assert_eq!(opts.limit, 5);
        assert!(!opts.explain);

        let bad: Vec<String> = vec!["--strategy".into(), "mapreduce".into(), "q.nrc".into()];
        assert_eq!(parse_args(&bad).unwrap_err().code, 2);
        assert_eq!(parse_args(&[]).unwrap_err().code, 2);
    }

    #[test]
    fn csv_tables_parse_typed_headers_and_null_fields() {
        let bag = parse_csv(
            "t",
            "id:int,name:string,score:real,ok:bool,day:date\n\
             1,alice,2.5,true,100\n\
             2,\"bob\",,false,101\n",
        )
        .unwrap();
        assert_eq!(bag.len(), 2);
        let first = bag.items()[0].as_tuple().unwrap();
        assert_eq!(first.get("id"), Some(&Value::Int(1)));
        assert_eq!(first.get("score"), Some(&Value::Real(2.5)));
        assert_eq!(first.get("day"), Some(&Value::Date(100)));
        let second = bag.items()[1].as_tuple().unwrap();
        assert_eq!(second.get("name"), Some(&Value::str("bob")));
        assert_eq!(second.get("score"), Some(&Value::Null));

        assert_eq!(parse_csv("t", "id:int\nx\n").unwrap_err().code, 3);
        assert_eq!(parse_csv("t", "id\n1\n").unwrap_err().code, 3);
    }
}
