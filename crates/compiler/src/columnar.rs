//! The columnar physical executor: interprets optimized [`Plan`] trees over
//! [`ColCollection`]s — typed batches end to end.
//!
//! This is the default route of **NRC → Plan → optimize → execute** since the
//! columnar refactor: inputs cross the row/column boundary exactly once at
//! **scan ingest** ([`ingest_env`], where batches are typed from the
//! plan-layer schemas via `trance_algebra::physical_fields`), every operator
//! — including materialized assignment intermediates — runs over batches,
//! and rows are only rebuilt at the **collect** boundary
//! (`ColCollection::to_rows` / `collect_bag`). The row interpreter in
//! [`crate::physical`] stays selectable through
//! [`ExecOptions::columnar`]`= false` as a differential oracle.
//!
//! Catalog inference is *exact and free* here: a batch already carries its
//! attribute schema (nested bag columns included), so intermediates register
//! their true schemas without scanning a single row.

use std::collections::HashMap;
use std::time::Instant;

use trance_algebra::{
    fuse_chain, lower, needs_sequential, optimize, physical_fields, pipeline_label,
    pipeline_op_name, AttrSchema, Catalog, JoinStrategy, NestOp, PhysField, PhysType, Plan,
    PlanJoinKind,
};
use trance_dist::batch::BagElems;
use trance_dist::{
    Batch, ColCollection, Column, DistCollection, DistContext, ExecError, FieldHint, JoinHint,
    JoinSpec, MorselCtx, Result,
};
use trance_nrc::{Expr, Value};

use crate::exec::ExecOptions;
use crate::kernel::{compile_mask, compile_ops, KernelCache, KernelOp};
use crate::physical::{optimizer_config, CapturedPlans};

/// Converts the plan layer's physical fields into engine field hints.
fn field_hints(fields: &[PhysField]) -> Vec<FieldHint> {
    fields
        .iter()
        .map(|f| match &f.ty {
            PhysType::Scalar => FieldHint::scalar(f.name.clone()),
            PhysType::Bag(inner) => FieldHint::bag(f.name.clone(), field_hints(inner)),
        })
        .collect()
}

/// Ingests row inputs into columnar collections — the scan-ingest boundary.
/// Each input's batches are typed from its (sampled) attribute schema, so
/// bag-valued attributes become offset-encoded bag columns even when the
/// sampled rows hold only empty bags.
pub fn ingest_env(
    inputs: &HashMap<String, DistCollection>,
) -> Result<HashMap<String, ColCollection>> {
    // Sorted iteration: schema inference runs cluster collectives under a
    // multi-process exchange, and HashMap order differs per process — every
    // rank must reach the collectives in the same input order.
    let mut names: Vec<&String> = inputs.keys().collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let coll = &inputs[name];
            let schema = crate::physical::infer_schema(coll)?;
            let hints = field_hints(&physical_fields(&schema));
            Ok((name.clone(), ColCollection::ingest(coll, &hints)?))
        })
        .collect()
}

/// The exact attribute schema of a columnar collection, read straight off the
/// batch schemas (nested bag columns recursively) — no row sampling. Spilled
/// partitions stream chunk by chunk (schema merge is associative), so
/// inspection never re-materializes what the memory cap evicted.
pub fn exact_schema_col(coll: &ColCollection) -> Result<AttrSchema> {
    let mut out = AttrSchema::default();
    coll.for_each_batch(|batch| {
        out = out.merge(&schema_of_batch(batch));
        Ok(())
    })?;
    // Under a cluster exchange each rank only saw its owned partitions:
    // allgather the partial schemas and merge them in rank order — with
    // contiguous partition ownership that folds the partitions in exactly
    // the single-process order, and the merge keeps first-occurrence
    // attribute order, so every rank lands on the identical schema.
    let Some(ex) = coll.context().exchange() else {
        return Ok(out);
    };
    let mut w = trance_store::ByteWriter::new();
    encode_attr_schema(&out, &mut w)?;
    let mut merged = AttrSchema::default();
    for bytes in &ex.allgather(w.into_bytes())? {
        let mut r = trance_store::ByteReader::new(bytes);
        merged = merged.merge(&decode_attr_schema(&mut r)?);
    }
    Ok(merged)
}

fn encode_attr_schema(s: &AttrSchema, w: &mut trance_store::ByteWriter) -> std::io::Result<()> {
    w.len_u32(s.attrs.len(), "schema attrs")?;
    for a in &s.attrs {
        w.str(a)?;
    }
    w.len_u32(s.nested.len(), "nested schemas")?;
    for (name, inner) in &s.nested {
        w.str(name)?;
        encode_attr_schema(inner, w)?;
    }
    Ok(())
}

fn decode_attr_schema(r: &mut trance_store::ByteReader<'_>) -> std::io::Result<AttrSchema> {
    let mut out = AttrSchema::default();
    let n = r.u32()? as usize;
    for _ in 0..n {
        out.attrs.push(r.str()?);
    }
    let m = r.u32()? as usize;
    for _ in 0..m {
        let name = r.str()?;
        let inner = decode_attr_schema(r)?;
        out.nested.insert(name, inner);
    }
    Ok(out)
}

fn schema_of_batch(batch: &Batch) -> AttrSchema {
    let mut out = AttrSchema::default();
    if batch.schema().is_opaque() {
        return out;
    }
    for (name, col) in batch.schema().fields().iter().zip(batch.columns()) {
        out.attrs.push(name.clone());
        match col.as_ref() {
            Column::Bag {
                elems: BagElems::Rows(child),
                ..
            } => {
                out.nested.insert(name.clone(), schema_of_batch(child));
            }
            Column::Bag { .. } => {
                out.nested.insert(name.clone(), AttrSchema::default());
            }
            Column::Other { values, .. } => {
                // A fallback column may still hold bags; sample for nesting.
                if let Some(Value::Bag(bag)) = values.iter().find(|v| matches!(v, Value::Bag(_))) {
                    let rows: Vec<&Value> = bag.iter().take(8).collect();
                    let inner = schema_of_batch(&Batch::from_row_refs(&rows));
                    out.nested.insert(name.clone(), inner);
                }
            }
            _ => {}
        }
    }
    out
}

/// Builds a [`Catalog`] from columnar inputs: exact batch schemas plus
/// logical (row-equivalent) sizes, so the optimizer makes the same join
/// strategy decisions as on the row route.
pub fn infer_catalog_col(inputs: &HashMap<String, ColCollection>) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    // Sorted for the same reason as ingest_env: schema and size inference
    // run cluster collectives that every rank must reach in the same order.
    let mut names: Vec<&String> = inputs.keys().collect();
    names.sort();
    for name in names {
        let coll = &inputs[name];
        catalog.register(name.clone(), exact_schema_col(coll)?);
        catalog.set_size(name.clone(), coll.planning_bytes()?);
    }
    Ok(catalog)
}

/// Lowers an NRC bag expression to a plan program and executes it over
/// columnar inputs — the columnar counterpart of
/// [`crate::physical::execute_via_plans`].
pub fn execute_via_plans_col(
    expr: &Expr,
    inputs: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    capture: Option<&mut CapturedPlans>,
) -> Result<ColCollection> {
    let catalog = infer_catalog_col(inputs)?;
    let program = lower(expr, &catalog).map_err(|e| ExecError::Other(e.to_string()))?;
    execute_program_col_impl(&program, inputs, catalog, ctx, options, root_label, capture)
}

/// Executes a lowered plan program over columnar inputs: each assignment is
/// optimized against the catalog known so far, evaluated to a columnar
/// intermediate, and registered with its exact batch schema and logical
/// size; then the root plan runs.
pub fn execute_program_col(
    program: &trance_algebra::PlanProgram,
    inputs: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    capture: Option<&mut CapturedPlans>,
) -> Result<ColCollection> {
    let catalog = infer_catalog_col(inputs)?;
    execute_program_col_impl(program, inputs, catalog, ctx, options, root_label, capture)
}

/// [`execute_program_col`] with the input catalog already computed — the
/// lowering entry point reuses the catalog it lowered against instead of
/// walking every input's bytes a second time.
#[allow(clippy::too_many_arguments)]
fn execute_program_col_impl(
    program: &trance_algebra::PlanProgram,
    inputs: &HashMap<String, ColCollection>,
    mut catalog: Catalog,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    mut capture: Option<&mut CapturedPlans>,
) -> Result<ColCollection> {
    let mut env = inputs.clone();
    let opt_config = optimizer_config(options, ctx);
    for assignment in &program.assignments {
        let plan = match &opt_config {
            Some(cfg) => optimize(&assignment.plan, &catalog, cfg),
            None => assignment.plan.clone(),
        };
        check_plan_agreement(ctx, &assignment.name, &plan)?;
        if let Some(capture) = capture.as_deref_mut() {
            capture.push((assignment.name.clone(), plan.clone()));
        }
        let out = eval_plan_col(&plan, &env, ctx, options)?;
        catalog.register(assignment.name.clone(), exact_schema_col(&out)?);
        catalog.set_size(assignment.name.clone(), out.planning_bytes()?);
        env.insert(assignment.name.clone(), out);
    }
    let root = match &opt_config {
        Some(cfg) => optimize(&program.root, &catalog, cfg),
        None => program.root.clone(),
    };
    check_plan_agreement(ctx, root_label, &root)?;
    if let Some(capture) = capture {
        capture.push((root_label.to_string(), root.clone()));
    }
    eval_plan_col(&root, &env, ctx, options)
}

/// Distributed-plan guardrail: every rank optimizes plans independently
/// from globally agreed catalogs, so the optimized plans must be identical
/// — a divergence would desynchronize the cluster collectives and corrupt
/// results silently. Fingerprints are allgathered and compared; a mismatch
/// fails loudly before any data moves.
fn check_plan_agreement(ctx: &DistContext, name: &str, plan: &Plan) -> Result<()> {
    let Some(ex) = ctx.exchange() else {
        return Ok(());
    };
    let fp = trance_algebra::fingerprint(plan);
    for (rank, other) in trance_dist::allgather_u64(ex.as_ref(), fp)?
        .into_iter()
        .enumerate()
    {
        if other != fp {
            return Err(ExecError::Other(format!(
                "distributed plan divergence on '{name}': rank {rank} optimized to fingerprint \
                 {other:#018x}, this rank to {fp:#018x}"
            )));
        }
    }
    Ok(())
}

/// Evaluates an expression into a column ready to be *set* on a batch:
/// projection/extension outputs always carry the attribute, so absence
/// collapses to an explicit NULL (the row engine's `Tuple::set` of a NULL).
fn set_column(batch: &Batch, expr: &trance_algebra::ScalarExpr) -> Result<std::sync::Arc<Column>> {
    let col = crate::vector::eval_scalar_batch(expr, batch)?;
    Ok(if col.has_absent() {
        std::sync::Arc::new(col.absent_as_null())
    } else {
        col
    })
}

/// Projection kernel (`π`): a fresh batch holding only the evaluated
/// columns — one definition shared by the staged operator arm and the fused
/// pipeline step, so the two executors cannot drift.
fn project_batch(b: &Batch, columns: &[(String, trance_algebra::ScalarExpr)]) -> Result<Batch> {
    let mut out = Batch::unit(b.rows());
    for (name, expr) in columns {
        out = out.with_column(name, set_column(b, expr)?);
    }
    Ok(out)
}

/// Extension kernel: each extension sees the columns set before it, exactly
/// like the row engine's in-order `Tuple::set` loop; untouched columns are
/// Arc-shared, not copied. Shared by the staged arm and the fused step.
fn extend_batch(b: &Batch, columns: &[(String, trance_algebra::ScalarExpr)]) -> Result<Batch> {
    let mut out = b.clone();
    for (name, expr) in columns {
        let col = set_column(&out, expr)?;
        out = out.with_column(name, col);
    }
    Ok(out)
}

/// The opaque-batch guard every staged structural operator applies (the
/// engine's `tuple_rows_required`) — fused id-assignment steps run it too,
/// so the pipelined executor raises the same errors as the staged oracle.
fn require_tuple_rows(b: &Batch) -> Result<()> {
    if b.schema().is_opaque() && !b.is_empty() {
        return Err(ExecError::Other(
            "columnar operator requires tuple rows (opaque batch)".into(),
        ));
    }
    Ok(())
}

/// One fused step of a columnar pipeline: batch in, batch out, with the
/// morsel cursor supplying per-partition id state for sequential chains.
type ColStep = Box<dyn Fn(&Batch, &mut MorselCtx) -> Result<Batch> + Send + Sync>;

/// Compiles a maximal chain of row-local plan operators (plus an optional
/// fused scan rename) into the batch-at-a-time steps of one pipeline.
struct CompiledColChain {
    steps: Vec<ColStep>,
    ops: Vec<String>,
    label: String,
    /// True when the chain assigns unique ids and must drive each
    /// partition's morsels sequentially.
    sequential: bool,
}

/// Compiles the accumulated run of expression operators into one register
/// kernel step, recording the program for the engine stats. With a shared
/// [`KernelCache`] threaded through the options, a structurally identical
/// run reuses the `Arc`'d program compiled earlier and records *nothing* —
/// a warm replay reports zero expression-compile time.
fn flush_kernel(
    pending: &mut Vec<KernelOp>,
    steps: &mut Vec<ColStep>,
    kernels: &mut Vec<(u64, std::time::Duration, String)>,
    cache: Option<&std::sync::Arc<KernelCache>>,
) {
    if pending.is_empty() {
        return;
    }
    let kops = std::mem::take(pending);
    if let Some(cache) = cache {
        let (prog, compiled) = cache.get_or_compile(&kops);
        if let Some(dt) = compiled {
            kernels.push((prog.instr_count() as u64, dt, prog.render()));
        }
        steps.push(Box::new(move |b, _| prog.run(b)));
        return;
    }
    let t0 = Instant::now();
    let prog = compile_ops(&kops);
    kernels.push((prog.instr_count() as u64, t0.elapsed(), prog.render()));
    steps.push(Box::new(move |b, _| prog.run(b)));
}

/// Compiles the single-op kernel of a staged `Project`/`Extend` arm, going
/// through the shared [`KernelCache`] when one is threaded through the
/// options. A hit reuses the `Arc`'d program and records no compile stats;
/// a miss (or no cache) compiles and books the elapsed time as before. The
/// staged `Select` mask program stays uncached: it is compiled through
/// [`compile_mask`], a different entry point, and never runs on the warm
/// pipelined serving path.
fn staged_kernel(
    label: &str,
    ops: &[KernelOp],
    ctx: &DistContext,
    options: &ExecOptions,
) -> std::sync::Arc<crate::kernel::KernelProgram> {
    if let Some(cache) = options.kernel_cache.as_ref() {
        let (prog, compiled) = cache.get_or_compile(ops);
        if let Some(dt) = compiled {
            ctx.stats()
                .record_expr_compile(label, prog.instr_count() as u64, dt, &prog.render());
        }
        return prog;
    }
    let t0 = Instant::now();
    let prog = compile_ops(ops);
    ctx.stats().record_expr_compile(
        label,
        prog.instr_count() as u64,
        t0.elapsed(),
        &prog.render(),
    );
    std::sync::Arc::new(prog)
}

fn compile_chain_col(
    scan_alias: Option<String>,
    chain: &[&Plan],
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<CompiledColChain> {
    let mut steps: Vec<ColStep> = Vec::new();
    let mut ops: Vec<String> = Vec::new();
    let mut id_slots = 0usize;
    let mut sequential = false;
    // Consecutive select/project/extend operators accumulate here and fuse
    // into ONE kernel program (sharing subexpressions, with the selection
    // vector carried across operator boundaries) — compiled once per
    // pipeline, before any morsel runs.
    let mut pending: Vec<KernelOp> = Vec::new();
    let mut kernels: Vec<(u64, std::time::Duration, String)> = Vec::new();
    if let Some(alias) = scan_alias {
        ops.push("scan".to_string());
        steps.push(Box::new(move |b, _| {
            Ok(b.rename_fields(|f| format!("{alias}.{f}"), &format!("{alias}.__value")))
        }));
    }
    for node in chain {
        ops.push(pipeline_op_name(node).to_string());
        if needs_sequential(node) {
            sequential = true;
        }
        if options.compiled_exprs {
            match node {
                Plan::Select { predicate, .. } => {
                    pending.push(KernelOp::Select(predicate.clone()));
                    continue;
                }
                Plan::Project { columns, .. } => {
                    pending.push(KernelOp::Project(columns.clone()));
                    continue;
                }
                Plan::Extend { columns, .. } => {
                    pending.push(KernelOp::Extend(columns.clone()));
                    continue;
                }
                _ => flush_kernel(
                    &mut pending,
                    &mut steps,
                    &mut kernels,
                    options.kernel_cache.as_ref(),
                ),
            }
        }
        match node {
            Plan::Select { predicate, .. } => {
                let predicate = predicate.clone();
                steps.push(Box::new(move |b, _| {
                    let mask = crate::vector::eval_mask(&predicate, b)?;
                    Ok(b.filter(&mask))
                }));
            }
            Plan::Project { columns, .. } => {
                let columns = columns.clone();
                steps.push(Box::new(move |b, _| project_batch(b, &columns)));
            }
            Plan::Extend { columns, .. } => {
                let columns = columns.clone();
                steps.push(Box::new(move |b, _| extend_batch(b, &columns)));
            }
            Plan::AddIndex { id_attr, .. } => {
                let attr = id_attr.clone();
                let slot = id_slots;
                id_slots += 1;
                steps.push(Box::new(move |b, cx| {
                    require_tuple_rows(b)?;
                    let start = cx.reserve(slot, b.rows());
                    Ok(b.with_unique_ids(&attr, cx.partition, start, cx.stride))
                }));
            }
            Plan::Unnest {
                bag_attr,
                alias,
                outer,
                id_attr,
                ..
            } => {
                let bag_attr = bag_attr.clone();
                let alias = alias.clone();
                let outer = *outer;
                match (outer, id_attr) {
                    (true, Some(id)) => {
                        let id = id.clone();
                        let slot = id_slots;
                        id_slots += 1;
                        steps.push(Box::new(move |b, cx| {
                            require_tuple_rows(b)?;
                            let start = cx.reserve(slot, b.rows());
                            let with_ids = b.with_unique_ids(&id, cx.partition, start, cx.stride);
                            trance_dist::colops::unnest_batch(
                                &with_ids,
                                &bag_attr,
                                alias.as_deref(),
                                true,
                            )
                        }));
                    }
                    _ => {
                        steps.push(Box::new(move |b, _| {
                            trance_dist::colops::unnest_batch(b, &bag_attr, alias.as_deref(), outer)
                        }));
                    }
                }
            }
            other => {
                return Err(ExecError::Other(format!(
                    "operator {} is not row-local and cannot join a fused pipeline",
                    pipeline_op_name(other)
                )))
            }
        }
    }
    flush_kernel(
        &mut pending,
        &mut steps,
        &mut kernels,
        options.kernel_cache.as_ref(),
    );
    let label = pipeline_label(&ops);
    for (i, (instrs, dt, text)) in kernels.iter().enumerate() {
        ctx.stats()
            .record_expr_compile(&format!("{label}#k{i}"), *instrs, *dt, text);
    }
    Ok(CompiledColChain {
        steps,
        ops,
        label,
        sequential,
    })
}

/// Attempts morsel-driven execution of `plan`'s topmost fused pipeline:
/// splits the plan at its first breaker, evaluates the source recursively,
/// compiles the row-local chain (and a fused scan rename) into one
/// batch-at-a-time closure, and drives it over the source's partitions on
/// the persistent worker pool. Returns `None` when there is nothing to fuse
/// (the plan is a breaker or a bare scan).
fn eval_pipelined_col(
    plan: &Plan,
    env: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<Option<ColCollection>> {
    let (chain, source) = fuse_chain(plan);
    let scan_alias = match source {
        Plan::Scan {
            alias: Some(alias), ..
        } => Some(alias.clone()),
        _ => None,
    };
    if chain.is_empty() && scan_alias.is_none() {
        return Ok(None);
    }
    let src = match source {
        Plan::Scan { name, .. } => env
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::Other(format!("unknown input relation `{name}`")))?,
        other => eval_plan_col(other, env, ctx, options)?,
    };
    let compiled = compile_chain_col(scan_alias, &chain, ctx, options)?;
    let steps = compiled.steps;
    let out = src.run_pipeline(
        &compiled.label,
        &compiled.ops,
        compiled.sequential,
        move |b, cx| {
            let mut cur = b.clone();
            for step in &steps {
                cur = step(&cur, cx)?;
            }
            Ok(cur)
        },
    )?;
    Ok(Some(out))
}

/// Evaluates one plan tree against an environment of columnar collections.
pub fn eval_plan_col(
    plan: &Plan,
    env: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<ColCollection> {
    if options.pipelined {
        if let Some(out) = eval_pipelined_col(plan, env, ctx, options)? {
            return Ok(out);
        }
    }
    match plan {
        Plan::Scan { name, alias } => {
            let coll = env
                .get(name)
                .ok_or_else(|| ExecError::Other(format!("unknown input relation `{name}`")))?;
            match alias {
                None => Ok(coll.clone()),
                Some(alias) => {
                    // `alias.field` renaming is a schema rewrite per batch —
                    // no per-row work at all.
                    let alias = alias.clone();
                    coll.map_batches("map", move |b| {
                        Ok(
                            b.rename_fields(
                                |f| format!("{alias}.{f}"),
                                &format!("{alias}.__value"),
                            ),
                        )
                    })
                }
            }
        }
        Plan::Unit => Ok(ColCollection::single(ctx, Batch::unit(1))),
        Plan::Empty => Ok(ColCollection::empty(ctx)),
        Plan::Select { input, predicate } => {
            let rows = eval_plan_col(input, env, ctx, options)?;
            if options.compiled_exprs {
                let t0 = Instant::now();
                let prog = compile_mask(predicate);
                ctx.stats().record_expr_compile(
                    "staged:select",
                    prog.instr_count() as u64,
                    t0.elapsed(),
                    &prog.render(),
                );
                rows.filter_mask(move |b| prog.mask(b))
            } else {
                let predicate = predicate.clone();
                rows.filter_mask(move |b| crate::vector::eval_mask(&predicate, b))
            }
        }
        Plan::Project { input, columns } => {
            let rows = eval_plan_col(input, env, ctx, options)?;
            if options.compiled_exprs {
                let prog = staged_kernel(
                    "staged:project",
                    &[KernelOp::Project(columns.clone())],
                    ctx,
                    options,
                );
                rows.map_batches("map", move |b| prog.run(b))
            } else {
                let columns = columns.clone();
                rows.map_batches("map", move |b| project_batch(b, &columns))
            }
        }
        Plan::Extend { input, columns } => {
            let rows = eval_plan_col(input, env, ctx, options)?;
            if options.compiled_exprs {
                let prog = staged_kernel(
                    "staged:extend",
                    &[KernelOp::Extend(columns.clone())],
                    ctx,
                    options,
                );
                rows.map_batches("map", move |b| prog.run(b))
            } else {
                let columns = columns.clone();
                rows.map_batches("map", move |b| extend_batch(b, &columns))
            }
        }
        Plan::AddIndex { input, id_attr } => {
            eval_plan_col(input, env, ctx, options)?.with_unique_id(id_attr)
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            strategy,
        } => {
            let l = eval_plan_col(left, env, ctx, options)?;
            let r = eval_plan_col(right, env, ctx, options)?;
            let lk: Vec<&str> = left_key.iter().map(String::as_str).collect();
            let rk: Vec<&str> = right_key.iter().map(String::as_str).collect();
            let spec = match kind {
                PlanJoinKind::Inner => JoinSpec::inner(&lk, &rk),
                PlanJoinKind::LeftOuter => JoinSpec::left_outer(&lk, &rk),
            };
            if options.skew_aware || *strategy == JoinStrategy::Skew {
                l.skew_join(&r, &spec)
            } else {
                let spec = match strategy {
                    // Same guard as the row route: force the broadcast only
                    // when the materialized side really fits (cluster-wide
                    // under a multi-process exchange).
                    JoinStrategy::Broadcast
                        if r.planning_bytes()? <= ctx.config().broadcast_limit =>
                    {
                        spec.with_hint(JoinHint::BroadcastRight)
                    }
                    JoinStrategy::Shuffle => spec.with_hint(JoinHint::Shuffle),
                    _ => spec,
                };
                l.join(&r, &spec)
            }
        }
        Plan::Unnest {
            input,
            bag_attr,
            alias,
            outer,
            id_attr,
        } => {
            let rows = eval_plan_col(input, env, ctx, options)?;
            let rows = match (outer, id_attr) {
                (true, Some(id)) => rows.with_unique_id(id)?,
                _ => rows,
            };
            rows.unnest(bag_attr, alias.as_deref(), *outer)
        }
        Plan::Nest {
            input,
            key,
            values,
            op,
        } => {
            let rows = eval_plan_col(input, env, ctx, options)?;
            match op {
                NestOp::Sum => {
                    if options.skew_aware {
                        rows.nest_sum_skew(key, values)
                    } else {
                        rows.nest_sum(key, values)
                    }
                }
                NestOp::Bag { group_attr } => rows.nest_bag(key, values, group_attr),
            }
        }
        Plan::Dedup { input } => eval_plan_col(input, env, ctx, options)?.distinct(),
        Plan::Union { left, right } => {
            let l = eval_plan_col(left, env, ctx, options)?;
            let r = eval_plan_col(right, env, ctx, options)?;
            l.union(&r)
        }
        Plan::BagToDict { input } => eval_plan_col(input, env, ctx, options),
        Plan::DictLookup { .. } => Err(ExecError::Other(
            "DictLookup is not produced by the lowering (shredded plans are flat); \
             reserved for hand-written plans"
                .into(),
        )),
    }
}
