//! The **legacy fused** distributed code generator / executor.
//!
//! This module is the original executor that fused the paper's *unnesting +
//! code generation* stages into one: it walks an NRC bag expression and
//! directly emits operations on the `trance-dist` engine. Since the plan
//! layer went live (`trance_algebra::lower` → `optimize` → the physical
//! executor in [`crate::physical`]), production strategies no longer run
//! through this module — it is kept behind
//! [`ExecOptions::legacy_fused`] as a differential-testing **oracle**: the
//! plan route must agree with it on every query and strategy (see
//! `tests/strategies_agree.rs`).
//!
//! It follows the same strategy the unnesting algorithm uses to build plans
//! (Figure 3):
//!
//! * iterating an input relation establishes a flattened *stream* of rows
//!   whose columns are named `var.field`;
//! * iterating a bag-valued attribute becomes an unnest (flat-map) carrying
//!   the enclosing columns — the flattening the standard route pays for;
//! * a `for` over another relation whose body is guarded by an equality with
//!   the stream becomes a distributed equi-join;
//! * constructing a tuple with a bag-valued attribute enters a new nesting
//!   level: the stream is given a unique parent id, the inner bag is computed
//!   as a flat child stream, grouped by the parent id (`Γ⊎`) and re-attached
//!   with a left-outer join, NULLs becoming empty bags;
//! * `sumBy` / `groupBy` become `Γ+` / `Γ⊎` keyed by the enclosing parent ids
//!   plus the user key.
//!
//! The same executor runs the flat assignments produced by the shredded
//! pipeline (where no unnest/regroup ever appears) and, with `skew: true`,
//! switches every join to the skew-aware implementation of Section 5.

use std::collections::{BTreeSet, HashMap};

use trance_dist::{DistCollection, DistContext, ExecError, JoinSpec, Result, SkewTriple};
use trance_nrc::{CmpOp, Expr, NrcError, PrimOp, Tuple, Value};

/// Compilation options for one query execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Run the plan optimizer (column pruning, selection pushdown, join
    /// strategy selection). Disabled for the SparkSQL-like baseline — the
    /// baseline is the same compilation route with the optimizer off, not a
    /// separate code path. On the legacy fused executor this toggles its
    /// ad-hoc required-field pruning, the closest equivalent.
    pub optimize: bool,
    /// Use skew-aware joins (Section 5).
    pub skew_aware: bool,
    /// Execute through the legacy fused NRC executor ([`execute`]) instead
    /// of the plan route — kept as a differential-testing oracle.
    pub legacy_fused: bool,
    /// Execute plans over the columnar representation (typed batches, the
    /// default): inputs convert to `trance_dist::Batch`es at scan ingest and
    /// back to rows only at the collect boundary. With this off the plan
    /// route interprets over row `DistCollection`s — kept selectable as the
    /// row-representation differential oracle. Ignored by the legacy fused
    /// executor, which is row-only.
    pub columnar: bool,
    /// Allow out-of-core execution: on clusters with the spill subsystem
    /// enabled (`ClusterConfig::with_spill`) and a worker memory cap set,
    /// memory pressure spills victim partitions to disk instead of failing
    /// with `MemoryExceeded`. **Default on when a memory cap is set** — a
    /// capped run only reproduces the paper's FAIL cells when this is turned
    /// off (or the cluster has no spill support, the legacy default).
    pub spill: bool,
    /// Execute maximal chains of row-local plan operators as **fused
    /// pipelines**, morsel-by-morsel on the context's persistent worker pool
    /// (the default). With this off, every plan operator materializes its
    /// output before the next one runs — the **staged** executor, kept
    /// selectable as the differential oracle the scheduler-stress suite
    /// compares against. Ignored by the legacy fused executor.
    pub pipelined: bool,
    /// Let the cluster's [`trance_dist::FaultInjector`] fire during this run
    /// (the default). Only bites on clusters configured with a
    /// [`trance_dist::FaultPlan`]; turning it off runs fault-free on the same
    /// cluster — the oracle side of the chaos differential suite.
    pub faults: bool,
    /// Compile scalar expressions to register-based vectorized kernel
    /// programs ([`crate::kernel`], the default): the expressions of each
    /// fused `select`/`extend`/`project` run are flattened — common
    /// subexpressions shared — into one SSA program per pipeline, compiled
    /// once at plan time and executed per morsel as type-specialized
    /// kernels over a selection vector. With this off the columnar route
    /// evaluates `ScalarExpr` trees per batch through
    /// [`crate::vector::eval_scalar_batch`] — kept selectable as the
    /// expression-level differential oracle (`TRANCE_EXPR=interp`). Ignored
    /// by the row and legacy fused executors, which are row-at-a-time.
    pub compiled_exprs: bool,
    /// A shared [`crate::KernelCache`] to reuse compiled kernel programs
    /// across runs (`None` by default: every run compiles its own). The
    /// serving layer threads the engine's cache through here so a warm
    /// query's fused pipelines replay the cold run's `Arc`'d programs — a
    /// hit skips both the SSA compiler and its compile-time accounting,
    /// which is how a warm query reports zero expression-compile time.
    /// Only consulted by the columnar route when `compiled_exprs` is on.
    pub kernel_cache: Option<std::sync::Arc<crate::kernel::KernelCache>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            optimize: true,
            skew_aware: false,
            legacy_fused: false,
            columnar: true,
            spill: true,
            pipelined: true,
            faults: true,
            compiled_exprs: compiled_exprs_default(),
            kernel_cache: None,
        }
    }
}

/// The process-wide default for [`ExecOptions::compiled_exprs`]: `true`
/// unless the `TRANCE_EXPR` environment variable selects the interpreter
/// oracle (`TRANCE_EXPR=interp`) — the same escape-hatch pattern as
/// `TRANCE_WORKERS`, with the same hardening: the value is trimmed and
/// matched case-insensitively, and an unrecognized value keeps the compiled
/// default with a warning (emitted once per process, not once per query),
/// so `TRANCE_EXPR=Interpreted` does not silently benchmark the wrong
/// route.
pub fn compiled_exprs_default() -> bool {
    match std::env::var("TRANCE_EXPR") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "interp" => false,
            "compiled" | "" => true,
            _ => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "TRANCE_EXPR={v} not recognized (expected `compiled` or `interp`); \
                         using compiled"
                    );
                });
                true
            }
        },
        Err(_) => true,
    }
}

/// Executes an NRC bag expression over distributed inputs, producing the
/// distributed collection of its elements.
pub fn execute(
    expr: &Expr,
    inputs: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<DistCollection> {
    let required = collect_required_fields(expr);
    let mut exec = Executor {
        ctx: ctx.clone(),
        inputs: inputs.clone(),
        options: options.clone(),
        required,
        id_counter: 0,
    };
    let out = exec.compile_bag(expr, None)?;
    exec.finalize(out)
}

/// Column name of `var.field` in the flattened stream.
fn col(var: &str, field: &str) -> String {
    format!("{var}.{field}")
}

/// The flattened stream threaded through compilation: a distributed
/// collection of rows whose columns are `var.field` pairs plus parent-id
/// columns, together with the variables currently bound.
#[derive(Clone)]
struct Stream {
    data: DistCollection,
    bound: Vec<String>,
    /// Parent-id columns present in the stream (innermost last).
    ids: Vec<String>,
}

/// The result of compiling a bag expression.
enum LevelOutput {
    /// The rows are already the final bag elements (used for whole-relation
    /// pass-through such as dictionary aliases).
    Passthrough(DistCollection),
    /// Flattened rows: stream columns plus plainly-named output attributes.
    Flattened {
        rows: DistCollection,
        attrs: Vec<String>,
        ids: Vec<String>,
    },
}

struct Executor {
    ctx: DistContext,
    inputs: HashMap<String, DistCollection>,
    options: ExecOptions,
    required: HashMap<String, Option<BTreeSet<String>>>,
    id_counter: usize,
}

impl Executor {
    fn finalize(&self, out: LevelOutput) -> Result<DistCollection> {
        match out {
            LevelOutput::Passthrough(d) => Ok(d),
            LevelOutput::Flattened { rows, attrs, .. } => rows.map(move |row| {
                let t = row.as_tuple()?;
                // Single pass over the row for all output attributes (the
                // per-attribute `Tuple::get` scan was the hottest line of the
                // standard route).
                let elem = Tuple::new(
                    attrs
                        .iter()
                        .zip(t.project_values(&attrs))
                        .map(|(a, v)| (a.clone(), v.cloned().unwrap_or(Value::Null))),
                );
                Ok(Value::Tuple(elem))
            }),
        }
    }

    fn fresh_id(&mut self) -> String {
        self.id_counter += 1;
        format!("__id{}", self.id_counter)
    }

    /// Loads an input relation as a stream source bound to `var`, renaming its
    /// columns to `var.field` and pruning unused fields.
    fn load_source(&self, name: &str, var: &str) -> Result<DistCollection> {
        let coll = self
            .inputs
            .get(name)
            .ok_or_else(|| ExecError::Other(format!("unknown input relation `{name}`")))?;
        let keep = if self.options.optimize {
            self.required.get(var).cloned().unwrap_or(None)
        } else {
            None
        };
        let var = var.to_string();
        coll.map(move |row| {
            let mut out = Tuple::empty();
            match row {
                Value::Tuple(t) => {
                    for (f, v) in t.iter() {
                        let wanted = match &keep {
                            Some(set) => set.contains(f),
                            None => true,
                        };
                        if wanted {
                            out.set(col(&var, f), v.clone());
                        }
                    }
                }
                other => out.set(col(&var, "__value"), other.clone()),
            }
            Ok(Value::Tuple(out))
        })
    }

    fn join_dist(
        &self,
        left: &DistCollection,
        right: &DistCollection,
        spec: &JoinSpec,
    ) -> Result<DistCollection> {
        if self.options.skew_aware {
            SkewTriple::unknown(left.clone())
                .join(right, spec)?
                .merged()
        } else {
            left.join(right, spec)
        }
    }

    fn compile_bag(&mut self, e: &Expr, stream: Option<Stream>) -> Result<LevelOutput> {
        match e {
            Expr::Var(name) => {
                if stream.is_none() {
                    let d = self
                        .inputs
                        .get(name)
                        .ok_or_else(|| ExecError::Other(format!("unknown input `{name}`")))?
                        .clone();
                    Ok(LevelOutput::Passthrough(d))
                } else {
                    Err(ExecError::Other(format!(
                        "bag variable `{name}` cannot be used directly inside a nested context; \
                         iterate it with `for`"
                    )))
                }
            }
            Expr::EmptyBag(_) => Ok(LevelOutput::Flattened {
                rows: self.ctx.empty(),
                attrs: Vec::new(),
                ids: stream.map(|s| s.ids).unwrap_or_default(),
            }),
            Expr::Let { var, value, body } => {
                let value_out = self.compile_bag(value, None)?;
                let materialized = self.finalize(value_out)?;
                self.inputs.insert(var.clone(), materialized);
                self.compile_bag(body, stream)
            }
            Expr::For { var, source, body } => self.compile_for(var, source, body, stream),
            Expr::If {
                cond,
                then_branch,
                else_branch: None,
            } => {
                let stream = stream.ok_or_else(|| {
                    ExecError::Other("conditional bag outside of an iteration context".into())
                })?;
                let filtered = self.filter_stream(&stream, cond)?;
                self.compile_bag(then_branch, Some(filtered))
            }
            Expr::If { .. } => Err(ExecError::Other(
                "if-then-else over bags is not supported by the distributed compiler; \
                 rewrite with union of guarded branches"
                    .into(),
            )),
            Expr::Singleton(inner) => self.compile_singleton(inner, stream),
            Expr::Union(a, b) => {
                let oa = self.compile_bag(a, stream.clone())?;
                let ob = self.compile_bag(b, stream)?;
                match (oa, ob) {
                    (LevelOutput::Passthrough(da), LevelOutput::Passthrough(db)) => {
                        Ok(LevelOutput::Passthrough(da.union(&db)?))
                    }
                    (
                        LevelOutput::Flattened {
                            rows: ra,
                            attrs: aa,
                            ids,
                        },
                        LevelOutput::Flattened {
                            rows: rb,
                            attrs: ab,
                            ..
                        },
                    ) => {
                        let mut attrs = aa;
                        for a in ab {
                            if !attrs.contains(&a) {
                                attrs.push(a);
                            }
                        }
                        Ok(LevelOutput::Flattened {
                            rows: ra.union(&rb)?,
                            attrs,
                            ids,
                        })
                    }
                    _ => Err(ExecError::Other("union of incompatible bag shapes".into())),
                }
            }
            Expr::SumBy { input, key, values } => {
                let inner = self.compile_bag(input, stream)?;
                let (rows, _attrs, ids) = self.expect_flattened(inner)?;
                let mut full_key: Vec<String> = ids.clone();
                full_key.extend(key.iter().cloned());
                let aggregated = if self.options.skew_aware {
                    SkewTriple::unknown(rows)
                        .nest_sum(&full_key, values)?
                        .merged()?
                } else {
                    rows.nest_sum(&full_key, values)?
                };
                let mut attrs = key.clone();
                attrs.extend(values.iter().cloned());
                Ok(LevelOutput::Flattened {
                    rows: aggregated,
                    attrs,
                    ids,
                })
            }
            Expr::GroupBy {
                input,
                key,
                group_attr,
            } => {
                let inner = self.compile_bag(input, stream)?;
                let (rows, attrs, ids) = self.expect_flattened(inner)?;
                let mut full_key: Vec<String> = ids.clone();
                full_key.extend(key.iter().cloned());
                let value_attrs: Vec<String> =
                    attrs.iter().filter(|a| !key.contains(a)).cloned().collect();
                let grouped = rows.nest_bag(&full_key, &value_attrs, group_attr)?;
                let mut out_attrs = key.clone();
                out_attrs.push(group_attr.clone());
                Ok(LevelOutput::Flattened {
                    rows: grouped,
                    attrs: out_attrs,
                    ids,
                })
            }
            Expr::Dedup(input) => {
                let inner = self.compile_bag(input, stream)?;
                let (rows, attrs, ids) = self.expect_flattened(inner)?;
                let keep: Vec<String> = ids.iter().chain(attrs.iter()).cloned().collect();
                let projected = rows.map(move |row| {
                    let t = row.as_tuple()?;
                    let out = Tuple::new(
                        keep.iter()
                            .zip(t.project_values(&keep))
                            .map(|(a, v)| (a.clone(), v.cloned().unwrap_or(Value::Null))),
                    );
                    Ok(Value::Tuple(out))
                })?;
                Ok(LevelOutput::Flattened {
                    rows: projected.distinct()?,
                    attrs,
                    ids,
                })
            }
            other => Err(ExecError::Other(format!(
                "the distributed compiler does not support this bag expression: {other:?}"
            ))),
        }
    }

    fn expect_flattened(
        &self,
        out: LevelOutput,
    ) -> Result<(DistCollection, Vec<String>, Vec<String>)> {
        match out {
            LevelOutput::Flattened { rows, attrs, ids } => Ok((rows, attrs, ids)),
            LevelOutput::Passthrough(d) => {
                // Discover attributes from the data (whole-relation
                // aggregate); the collection passes through as-is — the old
                // identity `map` re-cloned every row for nothing.
                let attrs = first_row_attrs(&d)?;
                Ok((d, attrs, Vec::new()))
            }
        }
    }

    fn compile_for(
        &mut self,
        var: &str,
        source: &Expr,
        body: &Expr,
        stream: Option<Stream>,
    ) -> Result<LevelOutput> {
        match source {
            // Iterate an input (or let-bound) relation.
            Expr::Var(name) if self.inputs.contains_key(name) => {
                match stream {
                    None => {
                        let data = self.load_source(name, var)?;
                        let s = Stream {
                            data,
                            bound: vec![var.to_string()],
                            ids: Vec::new(),
                        };
                        self.compile_bag(body, Some(s))
                    }
                    Some(s) => {
                        // A relation iterated inside an existing stream must be
                        // correlated by an equality in the body — this becomes a
                        // distributed join (or a constant-key join when truly
                        // uncorrelated).
                        let right = self.load_source(name, var)?;
                        let (cond, inner_body) = peel_condition(body);
                        let (left_keys, right_keys, residual) =
                            split_join_condition(&cond, &s, var);
                        let joined = if left_keys.is_empty() {
                            // Uncorrelated: cross product via a constant key.
                            let one = "__one".to_string();
                            let l = add_constant(&s.data, &one)?;
                            let r = add_constant(&right, &one)?;
                            self.join_dist(
                                &l,
                                &r,
                                &JoinSpec::inner(&[one.as_str()], &[one.as_str()]),
                            )?
                        } else {
                            let lk: Vec<&str> = left_keys.iter().map(|s| s.as_str()).collect();
                            let rk: Vec<&str> = right_keys.iter().map(|s| s.as_str()).collect();
                            self.join_dist(&s.data, &right, &JoinSpec::inner(&lk, &rk))?
                        };
                        let mut new_stream = Stream {
                            data: joined,
                            bound: {
                                let mut b = s.bound.clone();
                                b.push(var.to_string());
                                b
                            },
                            ids: s.ids.clone(),
                        };
                        if let Some(res) = residual {
                            new_stream = self.filter_stream(&new_stream, &res)?;
                        }
                        self.compile_bag(&inner_body, Some(new_stream))
                    }
                }
            }
            // Iterate a bag-valued attribute of an enclosing variable: unnest.
            Expr::Proj { tuple, field } => {
                let (outer_var, path) = projection_root(tuple, field)?;
                let stream = stream.ok_or_else(|| {
                    ExecError::Other(format!(
                        "navigation into {outer_var}.{path} outside of an iteration context"
                    ))
                })?;
                if !stream.bound.contains(&outer_var) {
                    return Err(ExecError::Other(format!(
                        "variable `{outer_var}` is not bound in the current stream"
                    )));
                }
                let bag_col = col(&outer_var, &path);
                let keep = if self.options.optimize {
                    self.required.get(var).cloned().unwrap_or(None)
                } else {
                    None
                };
                let var_name = var.to_string();
                let unnested = stream.data.flat_map(move |row| {
                    let t = row.as_tuple()?;
                    let bag = match t.get(&bag_col) {
                        Some(Value::Bag(b)) => b.clone(),
                        Some(Value::Null) | None => trance_nrc::Bag::empty(),
                        Some(other) => {
                            return Err(NrcError::TypeMismatch {
                                expected: "bag".into(),
                                found: other.kind().into(),
                                context: format!("unnest of {bag_col}"),
                            }
                            .into())
                        }
                    };
                    let mut out = Vec::with_capacity(bag.len());
                    for elem in bag.iter() {
                        let mut new_row = t.project_away(&[bag_col.as_str()]);
                        match elem {
                            Value::Tuple(et) => {
                                for (f, v) in et.iter() {
                                    let wanted = match &keep {
                                        Some(set) => set.contains(f),
                                        None => true,
                                    };
                                    if wanted {
                                        new_row.set(col(&var_name, f), v.clone());
                                    }
                                }
                            }
                            other => new_row.set(col(&var_name, "__value"), other.clone()),
                        }
                        out.push(Value::Tuple(new_row));
                    }
                    Ok(out)
                })?;
                let s = Stream {
                    data: unnested,
                    bound: {
                        let mut b = stream.bound.clone();
                        b.push(var.to_string());
                        b
                    },
                    ids: stream.ids.clone(),
                };
                self.compile_bag(body, Some(s))
            }
            // Iterate the result of another bag expression: materialize it
            // first, then iterate it as a relation.
            other => {
                let materialized = self.compile_bag(other, None)?;
                let materialized = self.finalize(materialized)?;
                let tmp = format!("__tmp_{}", self.id_counter);
                self.id_counter += 1;
                self.inputs.insert(tmp.clone(), materialized);
                self.compile_for(var, &Expr::Var(tmp), body, stream)
            }
        }
    }

    fn compile_singleton(&mut self, inner: &Expr, stream: Option<Stream>) -> Result<LevelOutput> {
        let mut stream = match stream {
            Some(s) => s,
            None => {
                // A constant singleton bag: one row, no stream.
                Stream {
                    data: self.ctx.parallelize(vec![Value::Tuple(Tuple::empty())]),
                    bound: Vec::new(),
                    ids: Vec::new(),
                }
            }
        };
        match inner {
            Expr::Tuple(fields) => {
                let mut attrs = Vec::with_capacity(fields.len());
                for (name, fe) in fields {
                    if self.is_bag_expr(fe) {
                        // Enter a new nesting level.
                        let id_attr = self.fresh_id();
                        let with_id = stream.data.with_unique_id(&id_attr)?;
                        let parent = Stream {
                            data: with_id.clone(),
                            bound: stream.bound.clone(),
                            ids: {
                                let mut ids = stream.ids.clone();
                                ids.push(id_attr.clone());
                                ids
                            },
                        };
                        let child = self.compile_bag(fe, Some(parent.clone()))?;
                        let (child_rows, child_attrs, _) = self.expect_flattened(child)?;
                        let nested = child_rows.nest_bag(
                            std::slice::from_ref(&id_attr),
                            &child_attrs,
                            name,
                        )?;
                        let spec = JoinSpec::left_outer(&[id_attr.as_str()], &[id_attr.as_str()])
                            .with_right_fields(&[name.as_str()]);
                        let joined = self.join_dist(&with_id, &nested, &spec)?;
                        // NULL (no child rows) becomes the empty bag.
                        let name_cl = name.clone();
                        stream.data = joined.map(move |row| {
                            let mut t = row.as_tuple()?.clone();
                            if matches!(t.get(&name_cl), Some(Value::Null) | None) {
                                t.set(name_cl.clone(), Value::empty_bag());
                            }
                            Ok(Value::Tuple(t))
                        })?;
                        attrs.push(name.clone());
                    } else {
                        let scalar = translate_scalar(fe, &stream.bound)?;
                        let name_cl = name.clone();
                        stream.data = stream.data.map(move |row| {
                            let t = row.as_tuple()?;
                            let v = scalar.eval_row(t)?;
                            let mut t = t.clone();
                            t.set(name_cl.clone(), v);
                            Ok(Value::Tuple(t))
                        })?;
                        attrs.push(name.clone());
                    }
                }
                Ok(LevelOutput::Flattened {
                    rows: stream.data,
                    attrs,
                    ids: stream.ids,
                })
            }
            other => {
                let scalar = translate_scalar(other, &stream.bound)?;
                let rows = stream.data.map(move |row| {
                    let t = row.as_tuple()?;
                    let v = scalar.eval_row(t)?;
                    let mut t = t.clone();
                    t.set("__value", v);
                    Ok(Value::Tuple(t))
                })?;
                Ok(LevelOutput::Flattened {
                    rows,
                    attrs: vec!["__value".to_string()],
                    ids: stream.ids,
                })
            }
        }
    }

    fn filter_stream(&self, stream: &Stream, cond: &Expr) -> Result<Stream> {
        let pred = translate_scalar(cond, &stream.bound)?;
        let data = stream
            .data
            .filter(move |row| Ok(pred.eval_row(row.as_tuple()?)?.as_bool()?))?;
        Ok(Stream {
            data,
            bound: stream.bound.clone(),
            ids: stream.ids.clone(),
        })
    }

    fn is_bag_expr(&self, e: &Expr) -> bool {
        matches!(
            e,
            Expr::For { .. }
                | Expr::Union(..)
                | Expr::EmptyBag(_)
                | Expr::Singleton(_)
                | Expr::SumBy { .. }
                | Expr::GroupBy { .. }
                | Expr::Dedup(_)
                | Expr::If {
                    else_branch: None,
                    ..
                }
                | Expr::Let { .. }
        ) || matches!(e, Expr::Var(v) if self.inputs.contains_key(v))
    }
}

// ---------------------------------------------------------------------------
// scalar translation: NRC scalar expressions -> row-level evaluators
// ---------------------------------------------------------------------------

/// A compiled scalar expression evaluated against flattened stream rows.
#[derive(Debug, Clone)]
enum RowExpr {
    Col(String),
    Const(Value),
    Prim(PrimOp, Box<RowExpr>, Box<RowExpr>),
    Cmp(CmpOp, Box<RowExpr>, Box<RowExpr>),
    And(Box<RowExpr>, Box<RowExpr>),
    Or(Box<RowExpr>, Box<RowExpr>),
    Not(Box<RowExpr>),
    NewLabel(u32, Vec<RowExpr>),
}

impl RowExpr {
    fn eval_row(&self, row: &Tuple) -> Result<Value> {
        Ok(match self {
            RowExpr::Col(c) => row.get(c).cloned().unwrap_or(Value::Null),
            RowExpr::Const(v) => v.clone(),
            RowExpr::Prim(op, l, r) => {
                let l = l.eval_row(row)?;
                let r = r.eval_row(row)?;
                if matches!(l, Value::Null) || matches!(r, Value::Null) {
                    Value::Null
                } else {
                    match op {
                        PrimOp::Add if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                            Value::Int(l.as_int()? + r.as_int()?)
                        }
                        PrimOp::Sub if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                            Value::Int(l.as_int()? - r.as_int()?)
                        }
                        PrimOp::Mul if matches!((&l, &r), (Value::Int(_), Value::Int(_))) => {
                            Value::Int(l.as_int()? * r.as_int()?)
                        }
                        PrimOp::Add => Value::Real(l.as_real()? + r.as_real()?),
                        PrimOp::Sub => Value::Real(l.as_real()? - r.as_real()?),
                        PrimOp::Mul => Value::Real(l.as_real()? * r.as_real()?),
                        PrimOp::Div => {
                            let d = r.as_real()?;
                            if d == 0.0 {
                                return Err(NrcError::DivisionByZero.into());
                            }
                            Value::Real(l.as_real()? / d)
                        }
                    }
                }
            }
            RowExpr::Cmp(op, l, r) => {
                let l = l.eval_row(row)?;
                let r = r.eval_row(row)?;
                if matches!(l, Value::Null) || matches!(r, Value::Null) {
                    Value::Bool(false)
                } else {
                    Value::Bool(op.eval(l.cmp(&r)))
                }
            }
            RowExpr::And(a, b) => {
                Value::Bool(a.eval_row(row)?.as_bool()? && b.eval_row(row)?.as_bool()?)
            }
            RowExpr::Or(a, b) => {
                Value::Bool(a.eval_row(row)?.as_bool()? || b.eval_row(row)?.as_bool()?)
            }
            RowExpr::Not(e) => Value::Bool(!e.eval_row(row)?.as_bool()?),
            RowExpr::NewLabel(site, caps) => {
                let mut vals = Vec::with_capacity(caps.len());
                for c in caps {
                    vals.push(c.eval_row(row)?);
                }
                Value::Label(trance_nrc::Label::new(*site, vals))
            }
        })
    }
}

/// Translates an NRC scalar expression into a [`RowExpr`] over the flattened
/// stream's `var.field` columns.
fn translate_scalar(e: &Expr, bound: &[String]) -> Result<RowExpr> {
    Ok(match e {
        Expr::Const(v) => RowExpr::Const(v.clone()),
        Expr::Proj { tuple, field } => {
            let (var, path) = projection_root(tuple, field)?;
            if !bound.contains(&var) {
                return Err(ExecError::Other(format!(
                    "variable `{var}` is not bound in the current iteration context"
                )));
            }
            RowExpr::Col(col(&var, &path))
        }
        Expr::Prim { op, left, right } => RowExpr::Prim(
            *op,
            Box::new(translate_scalar(left, bound)?),
            Box::new(translate_scalar(right, bound)?),
        ),
        Expr::Cmp { op, left, right } => RowExpr::Cmp(
            *op,
            Box::new(translate_scalar(left, bound)?),
            Box::new(translate_scalar(right, bound)?),
        ),
        Expr::And(a, b) => RowExpr::And(
            Box::new(translate_scalar(a, bound)?),
            Box::new(translate_scalar(b, bound)?),
        ),
        Expr::Or(a, b) => RowExpr::Or(
            Box::new(translate_scalar(a, bound)?),
            Box::new(translate_scalar(b, bound)?),
        ),
        Expr::Not(x) => RowExpr::Not(Box::new(translate_scalar(x, bound)?)),
        Expr::NewLabel { site, captures } => RowExpr::NewLabel(
            *site,
            captures
                .iter()
                .map(|(_, c)| translate_scalar(c, bound))
                .collect::<Result<Vec<_>>>()?,
        ),
        other => {
            return Err(ExecError::Other(format!(
                "unsupported scalar expression in distributed execution: {other:?}"
            )))
        }
    })
}

/// Resolves a (possibly chained) projection to its root variable and the
/// dotted field path (e.g. `x.a` → (`x`, `a`)).
fn projection_root(tuple: &Expr, field: &str) -> Result<(String, String)> {
    match tuple {
        Expr::Var(v) => Ok((v.clone(), field.to_string())),
        Expr::Proj {
            tuple: inner,
            field: f2,
        } => {
            let (v, p) = projection_root(inner, f2)?;
            Ok((v, format!("{p}.{field}")))
        }
        other => Err(ExecError::Other(format!(
            "unsupported projection base: {other:?}"
        ))),
    }
}

/// Peels a leading `if` off a `for` body, returning the condition (Bool(true)
/// when absent) and the remaining body.
fn peel_condition(body: &Expr) -> (Expr, Expr) {
    match body {
        Expr::If {
            cond,
            then_branch,
            else_branch: None,
        } => (cond.as_ref().clone(), then_branch.as_ref().clone()),
        other => (Expr::Const(Value::Bool(true)), other.clone()),
    }
}

/// Splits a condition into equi-join keys between the stream (columns of
/// previously bound variables) and the newly introduced variable, plus a
/// residual predicate.
fn split_join_condition(
    cond: &Expr,
    stream: &Stream,
    new_var: &str,
) -> (Vec<String>, Vec<String>, Option<Expr>) {
    fn conjuncts(e: &Expr) -> Vec<Expr> {
        match e {
            Expr::And(a, b) => {
                let mut out = conjuncts(a);
                out.extend(conjuncts(b));
                out
            }
            other => vec![other.clone()],
        }
    }
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts(cond) {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = &c
        {
            let classify = |e: &Expr| -> Option<(String, String)> {
                if let Expr::Proj { tuple, field } = e {
                    if let Ok((v, p)) = projection_root(tuple, field) {
                        return Some((v, p));
                    }
                }
                None
            };
            if let (Some((lv, lp)), Some((rv, rp))) = (classify(left), classify(right)) {
                if lv == new_var && stream.bound.contains(&rv) {
                    left_keys.push(col(&rv, &rp));
                    right_keys.push(col(&lv, &lp));
                    continue;
                }
                if rv == new_var && stream.bound.contains(&lv) {
                    left_keys.push(col(&lv, &lp));
                    right_keys.push(col(&rv, &rp));
                    continue;
                }
            }
        }
        if matches!(c, Expr::Const(Value::Bool(true))) {
            continue;
        }
        residual.push(c);
    }
    let residual = residual
        .into_iter()
        .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)));
    (left_keys, right_keys, residual)
}

/// Attribute names of the first row of a collection (used for whole-relation
/// pass-through aggregates; early exit — at most one spilled partition is
/// read back).
fn first_row_attrs(d: &DistCollection) -> Result<Vec<String>> {
    d.first_fields()
}

/// Adds a constant column (used to express uncorrelated cross products as
/// constant-key joins).
fn add_constant(d: &DistCollection, name: &str) -> Result<DistCollection> {
    let name = name.to_string();
    d.map(move |row| {
        let mut t = row.as_tuple()?.clone();
        t.set(name.clone(), Value::Int(1));
        Ok(Value::Tuple(t))
    })
}

/// Computes, for every `for`/`let`-bound variable and every input relation
/// variable, the set of fields the query projects from it. `None` means the
/// whole row is needed.
fn collect_required_fields(e: &Expr) -> HashMap<String, Option<BTreeSet<String>>> {
    let mut out: HashMap<String, Option<BTreeSet<String>>> = HashMap::new();
    fn add(out: &mut HashMap<String, Option<BTreeSet<String>>>, var: &str, field: Option<&str>) {
        match field {
            Some(f) => {
                let entry = out
                    .entry(var.to_string())
                    .or_insert_with(|| Some(BTreeSet::new()));
                if let Some(set) = entry {
                    // Only the first segment of a dotted path matters for
                    // pruning top-level attributes.
                    set.insert(f.split('.').next().unwrap_or(f).to_string());
                }
            }
            None => {
                out.insert(var.to_string(), None);
            }
        }
    }
    fn walk(e: &Expr, out: &mut HashMap<String, Option<BTreeSet<String>>>) {
        match e {
            Expr::Proj { tuple, field } => {
                if let Ok((v, p)) = projection_root(tuple, field) {
                    add(out, &v, Some(p.as_str()));
                } else {
                    walk(tuple, out);
                }
            }
            Expr::Var(v) => add(out, v, None),
            _ => {
                // Recurse structurally over children without re-visiting the
                // same node.
                match e {
                    Expr::Tuple(fields) => fields.iter().for_each(|(_, x)| walk(x, out)),
                    Expr::Singleton(x)
                    | Expr::Get(x)
                    | Expr::Not(x)
                    | Expr::Dedup(x)
                    | Expr::BagToDict(x) => walk(x, out),
                    Expr::For { source, body, .. }
                    | Expr::Let {
                        value: source,
                        body,
                        ..
                    } => {
                        walk(source, out);
                        walk(body, out);
                    }
                    Expr::Union(a, b)
                    | Expr::And(a, b)
                    | Expr::Or(a, b)
                    | Expr::DictTreeUnion(a, b) => {
                        walk(a, out);
                        walk(b, out);
                    }
                    Expr::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        walk(cond, out);
                        walk(then_branch, out);
                        if let Some(x) = else_branch {
                            walk(x, out);
                        }
                    }
                    Expr::Prim { left, right, .. } | Expr::Cmp { left, right, .. } => {
                        walk(left, out);
                        walk(right, out);
                    }
                    Expr::GroupBy { input, key, .. } => {
                        walk(input, out);
                        let _ = key;
                    }
                    Expr::SumBy { input, .. } => walk(input, out),
                    Expr::NewLabel { captures, .. } => {
                        captures.iter().for_each(|(_, x)| walk(x, out))
                    }
                    Expr::MatchLabel { label, body, .. } => {
                        walk(label, out);
                        walk(body, out);
                    }
                    Expr::Lambda { body, .. } => walk(body, out),
                    Expr::Lookup { dict, label } | Expr::MatLookup { dict, label } => {
                        walk(dict, out);
                        walk(label, out);
                    }
                    Expr::Const(_) | Expr::EmptyBag(_) => {}
                    Expr::Proj { .. } | Expr::Var(_) => unreachable!("handled above"),
                }
            }
        }
    }
    walk(e, &mut out);
    out
}
