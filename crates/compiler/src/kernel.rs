//! Register-based vectorized **expression kernel programs**.
//!
//! [`compile_ops`] flattens the scalar expressions of a run of row-local
//! `select`/`extend`/`project` plan operators — sharing common
//! subexpressions — into one SSA [`KernelProgram`]: a `Vec<Instr>` over
//! numbered column registers, compiled **once per pipeline** at plan time
//! and executed per morsel by type-specialized vectorized kernels. The tree
//! interpreter ([`crate::vector::eval_scalar_batch`]) stays selectable as
//! the differential oracle (`ExecOptions::compiled_exprs = false`,
//! `TRANCE_EXPR=interp`), and every kernel mirrors the interpreter's column
//! construction exactly, so the two routes produce **byte-identical**
//! batches — the expr_agree suite asserts identical logical *and* physical
//! shuffle volumes.
//!
//! The executor's cost model:
//!
//! * `Lit` constants and absent-column loads are **lazy** registers
//!   ([`RegVal::Const`]) — O(1) per batch instead of `vec![v.clone(); n]`;
//! * arithmetic and comparisons run over dense `i64`/`f64`/`bool` buffers
//!   (constants splatted at read, never materialized);
//! * string predicates against a constant are **dictionary-aware**: one
//!   truth-table entry per distinct string, then a u32 code scan — no
//!   per-row byte comparison;
//! * `Filter` instructions narrow a **selection vector** of surviving row
//!   indices, so downstream instructions evaluate only over surviving rows
//!   and each input column is gathered at most once per morsel;
//! * short-circuit semantics (`And`/`Or`/`Coalesce`) compile to **guard
//!   registers**: the right operand's instructions evaluate under a lane
//!   mask, and raise errors only on guarded lanes — exactly the rows the
//!   interpreter's gathered sub-batch evaluation would touch.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use trance_algebra::ScalarExpr;
use trance_dist::{Batch, Bitmap, Column, Result};
use trance_nrc::{CmpOp, Label, NrcError, PrimOp, Value};

/// A register: the index of the instruction that defines it.
pub type Reg = usize;

/// One SSA instruction of a [`KernelProgram`].
///
/// Instructions that can raise runtime errors (`Prim` division / numeric
/// coercion, `IsTrue` / `Not` boolean coercion, `LabelCapture`) carry an
/// optional **guard** register: errors are raised only on lanes where the
/// guard is true, reproducing the interpreter's short-circuit contract that
/// a guarded operand's errors never surface. Error-free instructions carry
/// no guard and may compute every lane (unguarded lanes are never read).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Load an input column by name (a missing column is a lazy NULL
    /// constant, the outer-join convention).
    Load {
        /// The column name.
        name: String,
    },
    /// A literal constant — a lazy O(1) register.
    Lit {
        /// The constant value.
        value: Value,
    },
    /// Binary arithmetic with `ScalarExpr::eval` semantics (NULL propagates,
    /// Int stays Int except division, division by zero errors).
    Prim {
        /// The operator.
        op: PrimOp,
        /// Left operand register.
        left: Reg,
        /// Right operand register.
        right: Reg,
        /// Error guard (see [`Instr`]).
        guard: Option<Reg>,
    },
    /// Comparison via the total `Value::cmp` order; NULL on either side
    /// compares false. Never errors, so no guard.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand register.
        left: Reg,
        /// Right operand register.
        right: Reg,
    },
    /// Strict truth of `cond` under `guard` with `as_bool` error semantics
    /// (NULL is false, a non-bool guarded lane errors) — forms the guard
    /// for `And`/`Or` right branches.
    IsTrue {
        /// The condition register.
        cond: Reg,
        /// Error guard (see [`Instr`]).
        guard: Option<Reg>,
    },
    /// `guard && !cond` over boolean registers (the `Or` right-branch
    /// guard). Never errors.
    NotMask {
        /// A boolean register (an [`Instr::IsTrue`] output).
        cond: Reg,
        /// The enclosing guard.
        guard: Option<Reg>,
    },
    /// `guard && cond-is-NULL` (the `Coalesce` right-branch guard). Never
    /// errors.
    NullMask {
        /// The register whose NULL lanes select the fallback.
        cond: Reg,
        /// The enclosing guard.
        guard: Option<Reg>,
    },
    /// `And` merge: lanes where `taken` coerce `b` to bool (errors
    /// surface there only); all other lanes are false.
    AndMerge {
        /// The left-operand-true mask (an [`Instr::IsTrue`] output).
        taken: Reg,
        /// The right operand register.
        b: Reg,
    },
    /// `Or` merge: lanes where `a_true` are true; lanes where `taken`
    /// coerce `b` to bool; all other lanes are false.
    OrMerge {
        /// The left-operand-true mask.
        a_true: Reg,
        /// The right-branch guard ([`Instr::NotMask`] output).
        taken: Reg,
        /// The right operand register.
        b: Reg,
    },
    /// `Coalesce` merge: lanes where `taken` read `b`, the rest read `a`.
    /// When no lane takes the fallback the register is `a` itself — the
    /// interpreter's pass-through. Never errors.
    CoalesceMerge {
        /// The first operand register.
        a: Reg,
        /// The fallback mask ([`Instr::NullMask`] output).
        taken: Reg,
        /// The fallback operand register.
        b: Reg,
    },
    /// Boolean negation with `as_bool` error semantics on guarded lanes.
    Not {
        /// The operand register.
        input: Reg,
        /// Error guard (see [`Instr`]).
        guard: Option<Reg>,
    },
    /// NULL test (absence counts as NULL). Never errors.
    IsNull {
        /// The operand register.
        input: Reg,
    },
    /// Construct a label capturing the operand registers (shredded plans).
    NewLabel {
        /// Label construction site.
        site: u32,
        /// Captured value registers.
        captures: Vec<Reg>,
    },
    /// Extract the `index`-th capture of a label-valued operand; a
    /// non-label guarded lane errors.
    LabelCapture {
        /// The label-valued operand register.
        label: Reg,
        /// Position of the capture.
        index: usize,
        /// Error guard (see [`Instr`]).
        guard: Option<Reg>,
    },
    /// Narrow the selection vector to the lanes where `pred` is true
    /// (`as_bool` errors surface, as in `eval_mask`), then compact the
    /// still-live registers: `live_sets` are output columns (materialized
    /// and gathered as columns, preserving the interpreter's
    /// build-then-filter bytes), `live` are scratch registers (compacted
    /// positionally).
    Filter {
        /// The predicate register.
        pred: Reg,
        /// Live scratch registers to compact positionally.
        live: Vec<Reg>,
        /// Live output-set registers to compact as columns.
        live_sets: Vec<Reg>,
    },
}

/// One row-local plan operator handed to [`compile_ops`] — the expression
/// payload of a `Select`/`Project`/`Extend` plan node.
#[derive(Debug, Clone)]
pub enum KernelOp {
    /// Keep the rows satisfying the predicate.
    Select(ScalarExpr),
    /// Replace the row with the evaluated columns (all expressions see the
    /// *input* of the project, as in `project_batch`).
    Project(Vec<(String, ScalarExpr)>),
    /// Set columns in order, each seeing the columns set before it (the
    /// `extend_batch` / `Tuple::set` contract).
    Extend(Vec<(String, ScalarExpr)>),
}

/// A compiled expression kernel program: SSA instructions plus the output
/// script that rebuilds the batch (`with_column` replay over either the
/// filtered input or a fresh unit batch).
#[derive(Debug, Clone)]
pub struct KernelProgram {
    instrs: Vec<Instr>,
    /// True when the output starts from the (filtered) input batch with its
    /// columns Arc-shared; false when a project discarded the input.
    from_input: bool,
    /// Ordered `with_column` sets applied to the base.
    sets: Vec<(String, Reg)>,
    /// For predicate-only programs: the register to read as the selection
    /// mask.
    mask_reg: Option<Reg>,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Compiler {
    instrs: Vec<Instr>,
    /// Column name → register set by an extend/project so far.
    bindings: HashMap<String, Reg>,
    /// Whether unresolved names still fall through to the input batch
    /// (false after a project drops the input columns).
    input_visible: bool,
    from_input: bool,
    sets: Vec<(String, Reg)>,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            instrs: Vec::new(),
            bindings: HashMap::new(),
            input_visible: true,
            from_input: true,
            sets: Vec::new(),
        }
    }

    /// Emits an instruction, interning structurally equal pure instructions
    /// (common subexpression elimination). `Filter` is never interned — it
    /// has the side effect of narrowing the selection vector.
    fn emit(&mut self, instr: Instr) -> Reg {
        if !matches!(instr, Instr::Filter { .. }) {
            if let Some(r) = self.instrs.iter().position(|x| *x == instr) {
                return r;
            }
        }
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    fn resolve(&mut self, name: &str) -> Reg {
        if let Some(r) = self.bindings.get(name) {
            return *r;
        }
        if self.input_visible {
            self.emit(Instr::Load {
                name: name.to_string(),
            })
        } else {
            // The column was dropped by a project: a statically-known NULL.
            self.emit(Instr::Lit { value: Value::Null })
        }
    }

    fn compile_expr(&mut self, e: &ScalarExpr, guard: Option<Reg>) -> Reg {
        match e {
            ScalarExpr::Col(name) => self.resolve(name),
            ScalarExpr::Const(v) => self.emit(Instr::Lit { value: v.clone() }),
            ScalarExpr::Prim { op, left, right } => {
                let l = self.compile_expr(left, guard);
                let r = self.compile_expr(right, guard);
                self.emit(Instr::Prim {
                    op: *op,
                    left: l,
                    right: r,
                    guard,
                })
            }
            ScalarExpr::Cmp { op, left, right } => {
                let l = self.compile_expr(left, guard);
                let r = self.compile_expr(right, guard);
                self.emit(Instr::Cmp {
                    op: *op,
                    left: l,
                    right: r,
                })
            }
            ScalarExpr::And(a, b) => {
                let ra = self.compile_expr(a, guard);
                let taken = self.emit(Instr::IsTrue { cond: ra, guard });
                let rb = self.compile_expr(b, Some(taken));
                self.emit(Instr::AndMerge { taken, b: rb })
            }
            ScalarExpr::Or(a, b) => {
                let ra = self.compile_expr(a, guard);
                let a_true = self.emit(Instr::IsTrue { cond: ra, guard });
                let taken = self.emit(Instr::NotMask {
                    cond: a_true,
                    guard,
                });
                let rb = self.compile_expr(b, Some(taken));
                self.emit(Instr::OrMerge {
                    a_true,
                    taken,
                    b: rb,
                })
            }
            ScalarExpr::Not(x) => {
                let r = self.compile_expr(x, guard);
                self.emit(Instr::Not { input: r, guard })
            }
            ScalarExpr::IsNull(x) => {
                let r = self.compile_expr(x, guard);
                self.emit(Instr::IsNull { input: r })
            }
            ScalarExpr::Coalesce(a, b) => {
                let ra = self.compile_expr(a, guard);
                let taken = self.emit(Instr::NullMask { cond: ra, guard });
                let rb = self.compile_expr(b, Some(taken));
                self.emit(Instr::CoalesceMerge {
                    a: ra,
                    taken,
                    b: rb,
                })
            }
            ScalarExpr::NewLabel { site, captures } => {
                let regs: Vec<Reg> = captures
                    .iter()
                    .map(|(_, e)| self.compile_expr(e, guard))
                    .collect();
                self.emit(Instr::NewLabel {
                    site: *site,
                    captures: regs,
                })
            }
            ScalarExpr::LabelCapture { label, index } => {
                let r = self.compile_expr(label, guard);
                self.emit(Instr::LabelCapture {
                    label: r,
                    index: *index,
                    guard,
                })
            }
        }
    }

    fn set(&mut self, name: &str, r: Reg) {
        self.bindings.insert(name.to_string(), r);
        self.sets.push((name.to_string(), r));
    }

    fn compile_op(&mut self, op: &KernelOp) {
        match op {
            KernelOp::Select(pred) => {
                let r = self.compile_expr(pred, None);
                self.instrs.push(Instr::Filter {
                    pred: r,
                    live: Vec::new(),
                    live_sets: Vec::new(),
                });
            }
            KernelOp::Extend(cols) => {
                for (name, e) in cols {
                    let r = self.compile_expr(e, None);
                    self.set(name, r);
                }
            }
            KernelOp::Project(cols) => {
                // Every project expression sees the *input* of the project;
                // only then does the output narrow to the projected columns.
                let regs: Vec<(String, Reg)> = cols
                    .iter()
                    .map(|(n, e)| (n.clone(), self.compile_expr(e, None)))
                    .collect();
                self.bindings.clear();
                self.sets.clear();
                self.input_visible = false;
                self.from_input = false;
                for (n, r) in regs {
                    self.set(&n, r);
                }
            }
        }
    }

    /// Fills every `Filter`'s liveness lists: a register is live at a filter
    /// when a later instruction or the output script reads it. Output-set
    /// registers compact as columns, scratch registers positionally.
    fn finish(mut self, mask_reg: Option<Reg>) -> KernelProgram {
        let set_regs: BTreeSet<Reg> = self.sets.iter().map(|(_, r)| *r).collect();
        let mut read_later: BTreeSet<Reg> = set_regs.clone();
        if let Some(r) = mask_reg {
            read_later.insert(r);
        }
        for p in (0..self.instrs.len()).rev() {
            if matches!(self.instrs[p], Instr::Filter { .. }) {
                let live: Vec<Reg> = read_later
                    .iter()
                    .copied()
                    .filter(|r| *r < p && !set_regs.contains(r))
                    .collect();
                let ls: Vec<Reg> = read_later
                    .iter()
                    .copied()
                    .filter(|r| *r < p && set_regs.contains(r))
                    .collect();
                if let Instr::Filter {
                    live: l, live_sets, ..
                } = &mut self.instrs[p]
                {
                    *l = live;
                    *live_sets = ls;
                }
            }
            for r in instr_reads(&self.instrs[p]) {
                read_later.insert(r);
            }
        }
        KernelProgram {
            instrs: self.instrs,
            from_input: self.from_input,
            sets: self.sets,
            mask_reg,
        }
    }
}

/// The registers an instruction reads.
fn instr_reads(i: &Instr) -> Vec<Reg> {
    match i {
        Instr::Load { .. } | Instr::Lit { .. } => vec![],
        Instr::Prim {
            left, right, guard, ..
        } => with_guard(vec![*left, *right], guard),
        Instr::Cmp { left, right, .. } => vec![*left, *right],
        Instr::IsTrue { cond, guard } => with_guard(vec![*cond], guard),
        Instr::NotMask { cond, guard } => with_guard(vec![*cond], guard),
        Instr::NullMask { cond, guard } => with_guard(vec![*cond], guard),
        Instr::AndMerge { taken, b } => vec![*taken, *b],
        Instr::OrMerge { a_true, taken, b } => vec![*a_true, *taken, *b],
        Instr::CoalesceMerge { a, taken, b } => vec![*a, *taken, *b],
        Instr::Not { input, guard } => with_guard(vec![*input], guard),
        Instr::IsNull { input } => vec![*input],
        Instr::NewLabel { captures, .. } => captures.clone(),
        Instr::LabelCapture { label, guard, .. } => with_guard(vec![*label], guard),
        Instr::Filter { pred, .. } => vec![*pred],
    }
}

fn with_guard(mut v: Vec<Reg>, guard: &Option<Reg>) -> Vec<Reg> {
    if let Some(g) = guard {
        v.push(*g);
    }
    v
}

/// Compiles a run of row-local operators into one kernel program, sharing
/// common subexpressions across all their expressions.
pub fn compile_ops(ops: &[KernelOp]) -> KernelProgram {
    let mut c = Compiler::new();
    for op in ops {
        c.compile_op(op);
    }
    c.finish(None)
}

/// Compiles a bare predicate into a mask program for the staged `Select`
/// operator ([`KernelProgram::mask`]).
pub fn compile_mask(pred: &ScalarExpr) -> KernelProgram {
    let mut c = Compiler::new();
    let r = c.compile_expr(pred, None);
    c.finish(Some(r))
}

/// A shared cache of compiled kernel programs, keyed by the structural
/// fingerprint of the [`KernelOp`] run that produced them.
///
/// The serving layer threads one of these through
/// `ExecOptions::kernel_cache` so a warm query replays its fused pipelines
/// with the `Arc`'d programs compiled on the cold run: a hit skips the SSA
/// compiler *and* the `record_expr_compile` accounting, which is what makes
/// a warm query report zero expression-compile time. Misses compile under
/// the lock (kernel compilation is microseconds; duplicate compilation
/// under contention would cost more than it saves) and record the elapsed
/// compile time for the caller to book against its stats.
pub struct KernelCache {
    programs: std::sync::Mutex<HashMap<u64, Arc<KernelProgram>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> KernelCache {
        KernelCache {
            programs: std::sync::Mutex::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Returns the program compiled from `ops`, compiling and inserting it
    /// on first sight. The second component is `None` on a hit and the
    /// measured compile time on a miss, so callers only book compile stats
    /// for work that actually happened.
    pub fn get_or_compile(&self, ops: &[KernelOp]) -> (Arc<KernelProgram>, Option<Duration>) {
        use std::sync::atomic::Ordering;
        let key = trance_algebra::fingerprint(ops);
        let mut map = self.programs.lock().unwrap();
        if let Some(prog) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (prog.clone(), None);
        }
        let t0 = Instant::now();
        let prog = Arc::new(compile_ops(ops));
        let dt = t0.elapsed();
        map.insert(key, prog.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        (prog, Some(dt))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Cache misses (= programs compiled) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct programs held.
    pub fn len(&self) -> usize {
        self.programs.lock().unwrap().len()
    }

    /// True when no program has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached program and resets the hit/miss counters — the
    /// serving layer's cold-start switch for cold-vs-warm A/B measurement.
    pub fn clear(&self) {
        use std::sync::atomic::Ordering;
        self.programs.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        KernelCache::new()
    }
}

impl std::fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("programs", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A register's runtime value — lazy where possible.
#[derive(Debug, Clone)]
enum RegVal {
    /// An input column, Arc-shared (possibly gathered by a filter).
    Col(Arc<Column>),
    /// A lazy constant (every lane holds this value) — O(1) per batch.
    Const(Value),
    /// Computed dense integers.
    Ints(Vec<i64>),
    /// Computed dense reals.
    Reals(Vec<f64>),
    /// Computed dense booleans.
    Bools(Vec<bool>),
    /// Row-wise values (NULL on unguarded lanes).
    Values(Vec<Value>),
}

impl RegVal {
    fn value_at(&self, i: usize) -> Value {
        match self {
            RegVal::Col(c) => c.value_at(i).unwrap_or(Value::Null),
            RegVal::Const(v) => v.clone(),
            RegVal::Ints(x) => Value::Int(x[i]),
            RegVal::Reals(x) => Value::Real(x[i]),
            RegVal::Bools(x) => Value::Bool(x[i]),
            RegVal::Values(x) => x[i].clone(),
        }
    }

    fn dense_bools(&self) -> Option<&[bool]> {
        match self {
            RegVal::Bools(x) => Some(x),
            RegVal::Col(c) => c.dense_bools(),
            _ => None,
        }
    }

    /// NULL test without cloning values (bag lanes stay untouched).
    fn is_null_at(&self, i: usize) -> bool {
        match self {
            RegVal::Col(c) => col_is_null_at(c, i),
            RegVal::Const(v) => matches!(v, Value::Null),
            RegVal::Ints(_) | RegVal::Reals(_) | RegVal::Bools(_) => false,
            RegVal::Values(x) => matches!(x[i], Value::Null),
        }
    }
}

/// NULL-or-absent test reading the column's bitmaps directly — no value
/// cloning, unlike `value_at` (a bag lane would clone the whole bag).
fn col_is_null_at(c: &Column, i: usize) -> bool {
    match c {
        Column::Int { nulls, absent, .. }
        | Column::Real { nulls, absent, .. }
        | Column::Bool { nulls, absent, .. }
        | Column::Date { nulls, absent, .. }
        | Column::Str { nulls, absent, .. }
        | Column::Bag { nulls, absent, .. } => nulls.get(i) || absent.get(i),
        Column::Other { values, absent } => absent.get(i) || matches!(values[i], Value::Null),
    }
}

/// Dense integer operand view: a buffer or a splatted constant.
enum IntView<'a> {
    Slice(&'a [i64]),
    Splat(i64),
}

impl IntView<'_> {
    fn get(&self, i: usize) -> i64 {
        match self {
            IntView::Slice(x) => x[i],
            IntView::Splat(x) => *x,
        }
    }
}

fn int_view(rv: &RegVal) -> Option<IntView<'_>> {
    match rv {
        RegVal::Ints(x) => Some(IntView::Slice(x)),
        RegVal::Col(c) => c.dense_ints().map(IntView::Slice),
        RegVal::Const(Value::Int(x)) => Some(IntView::Splat(*x)),
        _ => None,
    }
}

/// Dense numeric operand view, widening integers at the read.
enum NumView<'a> {
    I(&'a [i64]),
    R(&'a [f64]),
    Splat(f64),
}

impl NumView<'_> {
    fn get(&self, i: usize) -> f64 {
        match self {
            NumView::I(x) => x[i] as f64,
            NumView::R(x) => x[i],
            NumView::Splat(x) => *x,
        }
    }
}

fn num_view(rv: &RegVal) -> Option<NumView<'_>> {
    match rv {
        RegVal::Ints(x) => Some(NumView::I(x)),
        RegVal::Reals(x) => Some(NumView::R(x)),
        RegVal::Col(c) => c
            .dense_reals()
            .map(NumView::R)
            .or_else(|| c.dense_ints().map(NumView::I)),
        RegVal::Const(Value::Int(x)) => Some(NumView::Splat(*x as f64)),
        RegVal::Const(Value::Real(x)) => Some(NumView::Splat(*x)),
        _ => None,
    }
}

fn guard_true(g: Option<&[bool]>, i: usize) -> bool {
    g.is_none_or(|g| g[i])
}

/// Per-morsel execution state.
struct State<'a> {
    batch: &'a Batch,
    regs: Vec<Option<RegVal>>,
    /// Surviving original-row indices after the filters executed so far
    /// (`None` = every row).
    sel: Option<Vec<u32>>,
    /// Current lane count (`sel` length, or the batch's row count).
    len: usize,
}

impl<'a> State<'a> {
    fn reg(&self, r: Reg) -> &RegVal {
        self.regs[r].as_ref().expect("register defined before use")
    }

    fn guard(&self, g: Option<Reg>) -> Option<&[bool]> {
        g.map(|r| {
            self.reg(r)
                .dense_bools()
                .expect("guard registers are dense boolean")
        })
    }

    fn step(&mut self, idx: usize, instr: &Instr) -> Result<()> {
        let val = match instr {
            Instr::Load { name } => Some(match self.batch.column_arc(name) {
                None => RegVal::Const(Value::Null),
                Some(col) => match &self.sel {
                    None => RegVal::Col(col),
                    Some(s) => {
                        let idx: Vec<Option<usize>> = s.iter().map(|&i| Some(i as usize)).collect();
                        RegVal::Col(Arc::new(col.gather(&idx, true)))
                    }
                },
            }),
            Instr::Lit { value } => Some(RegVal::Const(value.clone())),
            Instr::Prim {
                op,
                left,
                right,
                guard,
            } => {
                let g = self.guard(*guard);
                Some(exec_prim(
                    *op,
                    self.reg(*left),
                    self.reg(*right),
                    g,
                    self.len,
                )?)
            }
            Instr::Cmp { op, left, right } => {
                Some(exec_cmp(*op, self.reg(*left), self.reg(*right), self.len))
            }
            Instr::IsTrue { cond, guard } => {
                let g = self.guard(*guard);
                Some(RegVal::Bools(exec_is_true(self.reg(*cond), g, self.len)?))
            }
            Instr::NotMask { cond, guard } => {
                let g = self.guard(*guard);
                let c = self.reg(*cond);
                Some(RegVal::Bools(match c.dense_bools() {
                    Some(b) => (0..self.len).map(|i| guard_true(g, i) && !b[i]).collect(),
                    None => (0..self.len)
                        .map(|i| guard_true(g, i) && !matches!(c.value_at(i), Value::Bool(true)))
                        .collect(),
                }))
            }
            Instr::NullMask { cond, guard } => {
                let g = self.guard(*guard);
                let c = self.reg(*cond);
                Some(RegVal::Bools(
                    (0..self.len)
                        .map(|i| guard_true(g, i) && c.is_null_at(i))
                        .collect(),
                ))
            }
            Instr::AndMerge { taken, b } => {
                let t = self
                    .reg(*taken)
                    .dense_bools()
                    .expect("masks are dense boolean");
                let bv = self.reg(*b);
                let mut out = Vec::with_capacity(self.len);
                if let Some(d) = bv.dense_bools() {
                    for (i, taken) in t.iter().enumerate().take(self.len) {
                        out.push(*taken && d[i]);
                    }
                } else {
                    for (i, taken) in t.iter().enumerate().take(self.len) {
                        out.push(if *taken {
                            bv.value_at(i).as_bool()?
                        } else {
                            false
                        });
                    }
                }
                Some(RegVal::Bools(out))
            }
            Instr::OrMerge { a_true, taken, b } => {
                let at = self
                    .reg(*a_true)
                    .dense_bools()
                    .expect("masks are dense boolean");
                let t = self
                    .reg(*taken)
                    .dense_bools()
                    .expect("masks are dense boolean");
                let bv = self.reg(*b);
                let mut out = Vec::with_capacity(self.len);
                if let Some(d) = bv.dense_bools() {
                    for i in 0..self.len {
                        out.push(at[i] || (t[i] && d[i]));
                    }
                } else {
                    for i in 0..self.len {
                        out.push(at[i] || (t[i] && bv.value_at(i).as_bool()?));
                    }
                }
                Some(RegVal::Bools(out))
            }
            Instr::CoalesceMerge { a, taken, b } => {
                let t = self
                    .reg(*taken)
                    .dense_bools()
                    .expect("masks are dense boolean");
                if !t.iter().any(|&x| x) {
                    // No lane needed the fallback: the interpreter returns
                    // the first operand unchanged.
                    Some(self.reg(*a).clone())
                } else {
                    let (av, bv) = (self.reg(*a), self.reg(*b));
                    Some(RegVal::Values(
                        (0..self.len)
                            .map(|i| if t[i] { bv.value_at(i) } else { av.value_at(i) })
                            .collect(),
                    ))
                }
            }
            Instr::Not { input, guard } => {
                let g = self.guard(*guard);
                let c = self.reg(*input);
                let mut out = Vec::with_capacity(self.len);
                if let Some(b) = c.dense_bools() {
                    for (i, v) in b.iter().enumerate().take(self.len) {
                        out.push(guard_true(g, i) && !*v);
                    }
                } else {
                    for i in 0..self.len {
                        out.push(if guard_true(g, i) {
                            !c.value_at(i).as_bool()?
                        } else {
                            false
                        });
                    }
                }
                Some(RegVal::Bools(out))
            }
            Instr::IsNull { input } => {
                let c = self.reg(*input);
                Some(RegVal::Bools(
                    (0..self.len).map(|i| c.is_null_at(i)).collect(),
                ))
            }
            Instr::NewLabel { site, captures } => {
                let cols: Vec<&RegVal> = captures.iter().map(|r| self.reg(*r)).collect();
                Some(RegVal::Values(
                    (0..self.len)
                        .map(|i| {
                            Value::Label(Label::new(
                                *site,
                                cols.iter().map(|c| c.value_at(i)).collect(),
                            ))
                        })
                        .collect(),
                ))
            }
            Instr::LabelCapture {
                label,
                index,
                guard,
            } => {
                let g = self.guard(*guard);
                let c = self.reg(*label);
                let mut out = Vec::with_capacity(self.len);
                for i in 0..self.len {
                    out.push(if guard_true(g, i) {
                        match c.value_at(i) {
                            Value::Null => Value::Null,
                            Value::Label(l) => l.values.get(*index).cloned().unwrap_or(Value::Null),
                            other => {
                                return Err(NrcError::TypeMismatch {
                                    expected: "label".into(),
                                    found: other.kind().into(),
                                    context: "LabelCapture".into(),
                                }
                                .into())
                            }
                        }
                    } else {
                        Value::Null
                    });
                }
                Some(RegVal::Values(out))
            }
            Instr::Filter {
                pred,
                live,
                live_sets,
            } => {
                self.exec_filter(*pred, live, live_sets)?;
                None
            }
        };
        self.regs[idx] = val;
        Ok(())
    }

    /// Narrows the selection vector to the predicate's true lanes and
    /// compacts the live registers.
    fn exec_filter(&mut self, pred: Reg, live: &[Reg], live_sets: &[Reg]) -> Result<()> {
        let mask: Vec<bool> = {
            let p = self.reg(pred);
            match p.dense_bools() {
                Some(b) => b.to_vec(),
                None => {
                    let mut m = Vec::with_capacity(self.len);
                    for i in 0..self.len {
                        m.push(p.value_at(i).as_bool()?);
                    }
                    m
                }
            }
        };
        let keep: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| t.then_some(i))
            .collect();
        self.sel = Some(match &self.sel {
            None => keep.iter().map(|&i| i as u32).collect(),
            Some(s) => keep.iter().map(|&i| s[i]).collect(),
        });
        self.len = keep.len();
        for &r in live {
            let compacted = compact_positional(self.regs[r].take().expect("live register"), &keep);
            self.regs[r] = Some(compacted);
        }
        for &r in live_sets {
            let compacted = compact_as_column(
                self.regs[r].take().expect("live register"),
                &keep,
                mask.len(),
            );
            self.regs[r] = Some(compacted);
        }
        Ok(())
    }
}

/// Positional compaction of a scratch register (values only ever read
/// lane-wise afterwards).
fn compact_positional(rv: RegVal, keep: &[usize]) -> RegVal {
    match rv {
        RegVal::Const(v) => RegVal::Const(v),
        RegVal::Col(c) => {
            let idx: Vec<Option<usize>> = keep.iter().map(|&i| Some(i)).collect();
            RegVal::Col(Arc::new(c.gather(&idx, true)))
        }
        RegVal::Ints(x) => RegVal::Ints(keep.iter().map(|&i| x[i]).collect()),
        RegVal::Reals(x) => RegVal::Reals(keep.iter().map(|&i| x[i]).collect()),
        RegVal::Bools(x) => RegVal::Bools(keep.iter().map(|&i| x[i]).collect()),
        RegVal::Values(x) => {
            let mut x = x;
            let mut out = Vec::with_capacity(keep.len());
            for &i in keep {
                out.push(std::mem::replace(&mut x[i], Value::Null));
            }
            RegVal::Values(out)
        }
    }
}

/// Compaction of an output-set register. `Values` registers are built into
/// a column **before** gathering — exactly what the interpreter route does
/// (the extend materializes, a later select filters) — because
/// `Column::from_values` infers the column kind from *all* values: building
/// from the surviving subset could infer a different (narrower) kind and
/// break physical byte parity with the oracle.
fn compact_as_column(rv: RegVal, keep: &[usize], _pre_len: usize) -> RegVal {
    match rv {
        RegVal::Values(x) => {
            let col = Column::from_values(x);
            let idx: Vec<Option<usize>> = keep.iter().map(|&i| Some(i)).collect();
            RegVal::Col(Arc::new(col.gather(&idx, true)))
        }
        other => compact_positional(other, keep),
    }
}

fn exec_prim(
    op: PrimOp,
    l: &RegVal,
    r: &RegVal,
    guard: Option<&[bool]>,
    n: usize,
) -> Result<RegVal> {
    // Dense integer kernel (Div always widens to real, like the
    // interpreter). Add/Sub/Mul cannot error, so the guard is irrelevant:
    // unguarded lanes compute a harmless value no one reads.
    if op != PrimOp::Div {
        if let (Some(a), Some(b)) = (int_view(l), int_view(r)) {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let (x, y) = (a.get(i), b.get(i));
                out.push(match op {
                    PrimOp::Add => x + y,
                    PrimOp::Sub => x - y,
                    PrimOp::Mul => x * y,
                    PrimOp::Div => unreachable!(),
                });
            }
            return Ok(RegVal::Ints(out));
        }
    }
    // Dense real kernel; division by zero errors only on guarded lanes.
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (a.get(i), b.get(i));
            out.push(match op {
                PrimOp::Add => x + y,
                PrimOp::Sub => x - y,
                PrimOp::Mul => x * y,
                PrimOp::Div => {
                    if y == 0.0 {
                        if guard_true(guard, i) {
                            return Err(NrcError::DivisionByZero.into());
                        }
                        0.0
                    } else {
                        x / y
                    }
                }
            });
        }
        return Ok(RegVal::Reals(out));
    }
    // Row-wise fallback: exact `ScalarExpr::eval` semantics; errors only on
    // guarded lanes, NULL elsewhere.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if !guard_true(guard, i) {
            out.push(Value::Null);
            continue;
        }
        let lv = l.value_at(i);
        let rv = r.value_at(i);
        out.push(if matches!(lv, Value::Null) || matches!(rv, Value::Null) {
            Value::Null
        } else {
            match op {
                PrimOp::Add if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? + rv.as_int()?)
                }
                PrimOp::Sub if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? - rv.as_int()?)
                }
                PrimOp::Mul if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? * rv.as_int()?)
                }
                PrimOp::Add => Value::Real(lv.as_real()? + rv.as_real()?),
                PrimOp::Sub => Value::Real(lv.as_real()? - rv.as_real()?),
                PrimOp::Mul => Value::Real(lv.as_real()? * rv.as_real()?),
                PrimOp::Div => {
                    let d = rv.as_real()?;
                    if d == 0.0 {
                        return Err(NrcError::DivisionByZero.into());
                    }
                    Value::Real(lv.as_real()? / d)
                }
            }
        });
    }
    Ok(RegVal::Values(out))
}

fn exec_cmp(op: CmpOp, l: &RegVal, r: &RegVal, n: usize) -> RegVal {
    // Dense integer comparison (constants splatted).
    if let (Some(a), Some(b)) = (int_view(l), int_view(r)) {
        return RegVal::Bools((0..n).map(|i| op.eval(a.get(i).cmp(&b.get(i)))).collect());
    }
    // Dictionary-aware string predicate: one `Value::cmp` per *distinct*
    // string, then a u32 code scan — NULL/absent lanes compare false, as in
    // the row engine.
    let dict_path = |c: &Column, v: &Value, const_left: bool| -> Option<RegVal> {
        if matches!(v, Value::Null) {
            return None;
        }
        if let Column::Str {
            dict,
            codes,
            nulls,
            absent,
        } = c
        {
            let table: Vec<bool> = (0..dict.len())
                .map(|ci| {
                    let entry = Value::str(dict.get(ci));
                    if const_left {
                        op.eval(v.cmp(&entry))
                    } else {
                        op.eval(entry.cmp(v))
                    }
                })
                .collect();
            return Some(RegVal::Bools(
                (0..n)
                    .map(|i| {
                        if nulls.get(i) || absent.get(i) {
                            false
                        } else {
                            table[codes[i] as usize]
                        }
                    })
                    .collect(),
            ));
        }
        None
    };
    if let (RegVal::Col(c), RegVal::Const(v)) = (l, r) {
        if let Some(out) = dict_path(c, v, false) {
            return out;
        }
    }
    if let (RegVal::Const(v), RegVal::Col(c)) = (l, r) {
        if let Some(out) = dict_path(c, v, true) {
            return out;
        }
    }
    // Row-wise comparison through the total `Value::cmp`; NULL on either
    // side compares false.
    RegVal::Bools(
        (0..n)
            .map(|i| {
                let lv = l.value_at(i);
                let rv = r.value_at(i);
                if matches!(lv, Value::Null) || matches!(rv, Value::Null) {
                    false
                } else {
                    op.eval(lv.cmp(&rv))
                }
            })
            .collect(),
    )
}

fn exec_is_true(cond: &RegVal, guard: Option<&[bool]>, n: usize) -> Result<Vec<bool>> {
    if let Some(b) = cond.dense_bools() {
        return Ok((0..n).map(|i| guard_true(guard, i) && b[i]).collect());
    }
    if let RegVal::Const(v) = cond {
        return match v.as_bool() {
            Ok(x) => Ok((0..n).map(|i| guard_true(guard, i) && x).collect()),
            Err(e) => {
                // A non-bool constant errors — but only if a guarded lane
                // exists (the interpreter never evaluates an empty gather).
                if (0..n).any(|i| guard_true(guard, i)) {
                    Err(e.into())
                } else {
                    Ok(vec![false; n])
                }
            }
        };
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(if guard_true(guard, i) {
            cond.value_at(i).as_bool()?
        } else {
            false
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Program API
// ---------------------------------------------------------------------------

impl KernelProgram {
    /// Number of SSA instructions.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Executes the program over one batch, producing the output batch —
    /// byte-identical to running the compiled operators one at a time
    /// through the interpreter.
    pub fn run(&self, batch: &Batch) -> Result<Batch> {
        let mut st = State {
            batch,
            regs: vec![None; self.instrs.len()],
            sel: None,
            len: batch.rows(),
        };
        for (idx, instr) in self.instrs.iter().enumerate() {
            st.step(idx, instr)?;
        }
        let mut out = if self.from_input {
            match &st.sel {
                None => batch.clone(),
                Some(s) => {
                    let idx: Vec<usize> = s.iter().map(|&i| i as usize).collect();
                    batch.take(&idx)
                }
            }
        } else {
            Batch::unit(st.len)
        };
        // Replay the `with_column` sets in operator order (replace-in-place
        // or append), memoizing per register so a register set under two
        // names shares one column — as the interpreter's Arc sharing does.
        let mut cache: HashMap<Reg, Arc<Column>> = HashMap::new();
        for (name, r) in &self.sets {
            let col = match cache.get(r) {
                Some(c) => c.clone(),
                None => {
                    let c = materialize(st.regs[*r].take().expect("set register"), st.len);
                    cache.insert(*r, c.clone());
                    c
                }
            };
            out = out.with_column(name, col);
        }
        Ok(out)
    }

    /// Evaluates a predicate-only program into a selection mask (the staged
    /// `Select` path) — same semantics as `eval_mask`.
    pub fn mask(&self, batch: &Batch) -> Result<Vec<bool>> {
        let reg = self.mask_reg.expect("mask() requires a predicate program");
        let mut st = State {
            batch,
            regs: vec![None; self.instrs.len()],
            sel: None,
            len: batch.rows(),
        };
        for (idx, instr) in self.instrs.iter().enumerate() {
            st.step(idx, instr)?;
        }
        let p = st.reg(reg);
        if let Some(b) = p.dense_bools() {
            return Ok(b.to_vec());
        }
        let mut out = Vec::with_capacity(st.len);
        for i in 0..st.len {
            out.push(p.value_at(i).as_bool()?);
        }
        Ok(out)
    }

    /// Renders the instruction listing (shown by `--explain` and recorded in
    /// the engine stats).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let g = |guard: &Option<Reg>| match guard {
            Some(r) => format!(" ?r{r}"),
            None => String::new(),
        };
        for (i, instr) in self.instrs.iter().enumerate() {
            let line = match instr {
                Instr::Load { name } => format!("r{i} = load {name}"),
                Instr::Lit { value } => format!("r{i} = lit {value}"),
                Instr::Prim {
                    op,
                    left,
                    right,
                    guard,
                } => format!("r{i} = {op:?} r{left} r{right}{}", g(guard)),
                Instr::Cmp { op, left, right } => format!("r{i} = {op:?} r{left} r{right}"),
                Instr::IsTrue { cond, guard } => format!("r{i} = is_true r{cond}{}", g(guard)),
                Instr::NotMask { cond, guard } => format!("r{i} = not_mask r{cond}{}", g(guard)),
                Instr::NullMask { cond, guard } => {
                    format!("r{i} = null_mask r{cond}{}", g(guard))
                }
                Instr::AndMerge { taken, b } => format!("r{i} = and_merge r{taken} r{b}"),
                Instr::OrMerge { a_true, taken, b } => {
                    format!("r{i} = or_merge r{a_true} r{taken} r{b}")
                }
                Instr::CoalesceMerge { a, taken, b } => {
                    format!("r{i} = coalesce r{a} r{taken} r{b}")
                }
                Instr::Not { input, guard } => format!("r{i} = not r{input}{}", g(guard)),
                Instr::IsNull { input } => format!("r{i} = is_null r{input}"),
                Instr::NewLabel { site, captures } => format!(
                    "r{i} = new_label #{site} [{}]",
                    captures
                        .iter()
                        .map(|r| format!("r{r}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
                Instr::LabelCapture {
                    label,
                    index,
                    guard,
                } => format!("r{i} = label_capture r{label}.{index}{}", g(guard)),
                Instr::Filter {
                    pred,
                    live,
                    live_sets,
                } => {
                    let all: Vec<String> = live
                        .iter()
                        .chain(live_sets.iter())
                        .map(|r| format!("r{r}"))
                        .collect();
                    format!("filter r{pred} compact=[{}]", all.join(" "))
                }
            };
            let _ = writeln!(out, "{line}");
        }
        if let Some(r) = self.mask_reg {
            let _ = writeln!(out, "mask: r{r}");
        } else {
            let base = if self.from_input { "input" } else { "unit" };
            let sets: Vec<String> = self
                .sets
                .iter()
                .map(|(n, r)| format!("{n}:=r{r}"))
                .collect();
            let _ = writeln!(out, "out: {base} [{}]", sets.join(", "));
        }
        out
    }
}

/// Materializes a register as an output column, with the same column
/// construction — and the same absent-to-NULL collapse — as the
/// interpreter's `set_column`.
fn materialize(rv: RegVal, len: usize) -> Arc<Column> {
    match rv {
        RegVal::Col(c) => {
            if c.has_absent() {
                Arc::new(c.absent_as_null())
            } else {
                c
            }
        }
        RegVal::Const(v) => Arc::new(Column::from_const(&v, len)),
        RegVal::Ints(data) => {
            let n = data.len();
            Arc::new(Column::Int {
                data,
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            })
        }
        RegVal::Reals(data) => {
            let n = data.len();
            Arc::new(Column::Real {
                data,
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            })
        }
        RegVal::Bools(data) => Arc::new(Column::from_bools(data)),
        RegVal::Values(values) => Arc::new(Column::from_values(values)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trance_algebra::ScalarExpr as E;

    fn prim(op: PrimOp, l: E, r: E) -> E {
        E::Prim {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn cmp(op: CmpOp, l: E, r: E) -> E {
        E::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// A batch exercising every evaluation corner: dense ints, nulls,
    /// absent attributes, mixed numeric kinds, dictionary strings, labels.
    fn mixed_batch() -> Batch {
        Batch::from_rows(&[
            Value::tuple([
                ("a", Value::Int(3)),
                ("b", Value::Int(10)),
                ("r", Value::Real(1.5)),
                ("s", Value::str("red")),
                ("lb", Value::Label(Label::new(7, vec![Value::Int(1)]))),
            ]),
            Value::tuple([
                ("a", Value::Int(-2)),
                ("b", Value::Null),
                ("r", Value::Real(0.0)),
                ("s", Value::str("blue")),
                ("lb", Value::Label(Label::new(7, vec![Value::Int(2)]))),
            ]),
            // `b`, `s` and `lb` absent; `r` holds an int (mixed-kind column).
            Value::tuple([("a", Value::Int(5)), ("r", Value::Int(4))]),
            Value::tuple([
                ("a", Value::Null),
                ("b", Value::Int(0)),
                ("r", Value::Real(-2.5)),
                ("s", Value::str("red")),
                ("lb", Value::Null),
            ]),
        ])
    }

    /// The interpreter's extend of one column: `set_column` semantics.
    fn oracle_extend(b: &Batch, name: &str, e: &E) -> Batch {
        let col = crate::vector::eval_scalar_batch(e, b).expect("oracle eval");
        let col = if col.has_absent() {
            Arc::new(col.absent_as_null())
        } else {
            col
        };
        b.with_column(name, col)
    }

    fn assert_batches_eq(got: &Batch, want: &Batch, context: &str) {
        assert_eq!(
            format!("{got:?}"),
            format!("{want:?}"),
            "batch mismatch: {context}"
        );
    }

    fn expr_corpus() -> Vec<E> {
        vec![
            E::col("a"),
            E::col("missing"),
            E::constant(Value::Int(42)),
            prim(PrimOp::Add, E::col("a"), E::col("b")),
            prim(PrimOp::Mul, E::col("a"), E::constant(Value::Int(3))),
            prim(PrimOp::Sub, E::col("r"), E::constant(Value::Real(0.5))),
            prim(PrimOp::Add, E::col("a"), E::col("r")),
            cmp(CmpOp::Lt, E::col("a"), E::col("b")),
            cmp(CmpOp::Ge, E::col("a"), E::constant(Value::Int(0))),
            cmp(CmpOp::Eq, E::col("s"), E::constant(Value::str("red"))),
            cmp(CmpOp::Ne, E::constant(Value::str("blue")), E::col("s")),
            E::And(
                Box::new(cmp(CmpOp::Gt, E::col("a"), E::constant(Value::Int(0)))),
                Box::new(cmp(CmpOp::Lt, E::col("b"), E::constant(Value::Int(20)))),
            ),
            E::Or(
                Box::new(cmp(CmpOp::Lt, E::col("a"), E::constant(Value::Int(0)))),
                Box::new(cmp(CmpOp::Eq, E::col("s"), E::constant(Value::str("red")))),
            ),
            E::Not(Box::new(cmp(
                CmpOp::Eq,
                E::col("a"),
                E::constant(Value::Int(5)),
            ))),
            E::IsNull(Box::new(E::col("b"))),
            E::IsNull(Box::new(E::col("missing"))),
            E::Coalesce(Box::new(E::col("b")), Box::new(E::col("a"))),
            E::Coalesce(
                Box::new(E::col("missing")),
                Box::new(E::constant(Value::Int(-1))),
            ),
            E::NewLabel {
                site: 9,
                captures: vec![
                    ("x".into(), E::col("a")),
                    ("y".into(), prim(PrimOp::Add, E::col("a"), E::col("b"))),
                ],
            },
            E::LabelCapture {
                label: Box::new(E::col("lb")),
                index: 0,
            },
            // Guarded division: the zero `r` lane is short-circuited away.
            E::And(
                Box::new(cmp(CmpOp::Gt, E::col("r"), E::constant(Value::Real(0.5)))),
                Box::new(cmp(
                    CmpOp::Gt,
                    prim(PrimOp::Div, E::col("b"), E::col("r")),
                    E::constant(Value::Real(1.0)),
                )),
            ),
        ]
    }

    #[test]
    fn extend_agrees_with_interpreter_per_expression() {
        let b = mixed_batch();
        for (i, e) in expr_corpus().into_iter().enumerate() {
            let prog = compile_ops(&[KernelOp::Extend(vec![("out".into(), e.clone())])]);
            let got = prog
                .run(&b)
                .unwrap_or_else(|err| panic!("expr #{i} {e:?} failed under kernels: {err}"));
            let want = oracle_extend(&b, "out", &e);
            assert_batches_eq(&got, &want, &format!("expr #{i} {e:?}"));
        }
    }

    #[test]
    fn project_agrees_with_interpreter() {
        let b = mixed_batch();
        let cols = vec![
            ("x".into(), prim(PrimOp::Add, E::col("a"), E::col("b"))),
            ("y".into(), E::col("s")),
            ("z".into(), E::constant(Value::str("k"))),
        ];
        let prog = compile_ops(&[KernelOp::Project(cols.clone())]);
        let got = prog.run(&b).expect("kernel project");
        // The interpreter's project: fresh unit batch, every expression
        // evaluated against the input.
        let mut want = Batch::unit(b.rows());
        for (name, e) in &cols {
            let col = crate::vector::eval_scalar_batch(e, &b).expect("oracle");
            let col = if col.has_absent() {
                Arc::new(col.absent_as_null())
            } else {
                col
            };
            want = want.with_column(name, col);
        }
        assert_batches_eq(&got, &want, "project");
    }

    #[test]
    fn fused_select_extend_select_agrees_with_sequential_interpretation() {
        let b = mixed_batch();
        let pred1 = cmp(CmpOp::Ge, E::col("a"), E::constant(Value::Int(0)));
        let ext = vec![
            ("sum".into(), prim(PrimOp::Add, E::col("a"), E::col("b"))),
            (
                "isred".into(),
                cmp(CmpOp::Eq, E::col("s"), E::constant(Value::str("red"))),
            ),
        ];
        let pred2 = E::Or(
            Box::new(E::col("isred")),
            Box::new(cmp(CmpOp::Gt, E::col("sum"), E::constant(Value::Int(5)))),
        );
        let prog = compile_ops(&[
            KernelOp::Select(pred1.clone()),
            KernelOp::Extend(ext.clone()),
            KernelOp::Select(pred2.clone()),
        ]);
        let got = prog.run(&b).expect("fused kernel");
        // Oracle: one operator at a time through the interpreter.
        let mask1 = crate::vector::eval_mask(&pred1, &b).expect("mask1");
        let mut want = b.filter(&mask1);
        for (name, e) in &ext {
            want = oracle_extend(&want, name, e);
        }
        let mask2 = crate::vector::eval_mask(&pred2, &want).expect("mask2");
        let want = want.filter(&mask2);
        assert_batches_eq(&got, &want, "select+extend+select");
    }

    #[test]
    fn filter_after_project_compacts_output_registers() {
        let b = mixed_batch();
        let proj = vec![
            ("x".into(), E::col("a")),
            (
                "m".into(),
                prim(PrimOp::Mul, E::col("a"), E::constant(Value::Int(2))),
            ),
        ];
        let pred = cmp(CmpOp::Gt, E::col("x"), E::constant(Value::Int(0)));
        let prog = compile_ops(&[
            KernelOp::Project(proj.clone()),
            KernelOp::Select(pred.clone()),
        ]);
        let got = prog.run(&b).expect("kernel");
        let mut want = Batch::unit(b.rows());
        for (name, e) in &proj {
            let col = crate::vector::eval_scalar_batch(e, &b).expect("oracle");
            let col = if col.has_absent() {
                Arc::new(col.absent_as_null())
            } else {
                col
            };
            want = want.with_column(name, col);
        }
        let mask = crate::vector::eval_mask(&pred, &want).expect("mask");
        let want = want.filter(&mask);
        assert_batches_eq(&got, &want, "project+select");
    }

    #[test]
    fn mask_agrees_with_eval_mask() {
        let b = mixed_batch();
        for (i, e) in expr_corpus().into_iter().enumerate() {
            let prog = compile_mask(&e);
            let got = prog.mask(&b);
            let want = crate::vector::eval_mask(&e, &b);
            match (got, want) {
                (Ok(g), Ok(w)) => assert_eq!(g, w, "mask mismatch on expr #{i} {e:?}"),
                (Err(_), Err(_)) => {}
                (g, w) => panic!("mask outcome mismatch on expr #{i} {e:?}: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn common_subexpressions_are_interned() {
        let shared = prim(PrimOp::Add, E::col("a"), E::col("b"));
        let prog = compile_ops(&[KernelOp::Extend(vec![
            ("x".into(), shared.clone()),
            (
                "y".into(),
                prim(PrimOp::Mul, shared.clone(), E::constant(Value::Int(2))),
            ),
            ("z".into(), shared.clone()),
        ])]);
        // load a, load b, add, lit 2, mul — the shared sum compiles once and
        // `z` introduces no instruction at all.
        assert_eq!(prog.instr_count(), 5, "{}", prog.render());
    }

    #[test]
    fn short_circuit_guards_division_errors() {
        let b = Batch::from_rows(&[
            Value::tuple([("d", Value::Int(0)), ("n", Value::Int(1))]),
            Value::tuple([("d", Value::Int(2)), ("n", Value::Int(8))]),
        ]);
        let div = prim(PrimOp::Div, E::col("n"), E::col("d"));
        // Top level: the zero divisor on row 0 must error...
        let top = compile_ops(&[KernelOp::Extend(vec![("q".into(), div.clone())])]);
        assert!(
            top.run(&b).is_err(),
            "unguarded division by zero must error"
        );
        // ...but guarded behind `d != 0` it is short-circuited away.
        let guarded = E::And(
            Box::new(cmp(CmpOp::Ne, E::col("d"), E::constant(Value::Int(0)))),
            Box::new(cmp(CmpOp::Gt, div, E::constant(Value::Real(1.0)))),
        );
        let prog = compile_ops(&[KernelOp::Select(guarded.clone())]);
        let got = prog.run(&b).expect("guarded division must not error");
        let mask = crate::vector::eval_mask(&guarded, &b).expect("oracle mask");
        assert_batches_eq(&got, &b.filter(&mask), "guarded division filter");
    }

    #[test]
    fn dictionary_predicate_matches_row_comparison() {
        let rows: Vec<Value> = (0..64)
            .map(|i| {
                if i % 7 == 0 {
                    Value::tuple([("k", Value::Int(i))])
                } else {
                    Value::tuple([
                        ("s", Value::str(["red", "green", "blue"][i as usize % 3])),
                        ("k", Value::Int(i)),
                    ])
                }
            })
            .collect();
        let b = Batch::from_rows(&rows);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let e = cmp(op, E::col("s"), E::constant(Value::str("green")));
            let prog = compile_mask(&e);
            assert_eq!(
                prog.mask(&b).expect("kernel mask"),
                crate::vector::eval_mask(&e, &b).expect("oracle mask"),
                "dict predicate {op:?}"
            );
            let flipped = cmp(op, E::constant(Value::str("green")), E::col("s"));
            let prog = compile_mask(&flipped);
            assert_eq!(
                prog.mask(&b).expect("kernel mask"),
                crate::vector::eval_mask(&flipped, &b).expect("oracle mask"),
                "flipped dict predicate {op:?}"
            );
        }
    }

    #[test]
    fn lazy_registers_stay_constant_sized() {
        // A constant column over a big batch must not materialize per lane
        // until output time; the run still produces the splatted column.
        let rows: Vec<Value> = (0..1000)
            .map(|i| Value::tuple([("a", Value::Int(i))]))
            .collect();
        let b = Batch::from_rows(&rows);
        let e = E::constant(Value::str("tag"));
        let prog = compile_ops(&[KernelOp::Extend(vec![("t".into(), e.clone())])]);
        let got = prog.run(&b).expect("kernel");
        let want = oracle_extend(&b, "t", &e);
        assert_batches_eq(&got, &want, "lazy const");
    }

    #[test]
    fn render_lists_every_instruction() {
        let prog = compile_ops(&[
            KernelOp::Select(cmp(CmpOp::Gt, E::col("a"), E::constant(Value::Int(0)))),
            KernelOp::Extend(vec![(
                "x".into(),
                prim(PrimOp::Add, E::col("a"), E::col("b")),
            )]),
        ]);
        let text = prog.render();
        assert!(text.contains("load a"), "{text}");
        assert!(text.contains("filter"), "{text}");
        assert!(text.lines().count() >= prog.instr_count(), "{text}");
    }
}
