//! # trance-compiler
//!
//! The compilation framework of **trance-rs** (Section 3 of the paper): it
//! turns NRC programs into distributed executions on the `trance-dist`
//! engine through the live plan pipeline
//! **NRC → Plan → optimize → execute**:
//!
//! * the unnesting algorithm (`trance_algebra::lower`, Figure 3) reifies the
//!   query as a `PlanProgram`;
//! * `trance_algebra::optimize` applies column pruning, selection/aggregation
//!   pushdown and broadcast-vs-shuffle-vs-skew join strategy selection — the
//!   SparkSQL-like baseline is this same route with the optimizer off;
//! * the physical executor ([`physical`]) interprets the optimized plans on
//!   `DistCollection`s, materializing assignment intermediates so later plans
//!   optimize against their inferred schemas and sizes.
//!
//! The **shredded route** ([`pipeline`]) first applies query shredding
//! (`trance-shred`), then lowers and executes each resulting flat assignment
//! — one per output dictionary — through the same plan layer, optionally
//! unshredding the output with distributed label joins.
//!
//! The original fused executor ([`exec`]) is retained behind
//! [`ExecOptions::legacy_fused`] purely as a differential-testing oracle.
//!
//! The strategies compared in the paper's experiments are exposed as
//! [`pipeline::Strategy`] and driven by [`pipeline::run_query`];
//! [`pipeline::explain_query`] renders the optimized plans a strategy
//! actually executes.

#![warn(missing_docs)]

pub mod columnar;
pub mod exec;
pub mod kernel;
pub mod physical;
pub mod pipeline;
pub mod prepared;
pub mod vector;

pub use columnar::{
    eval_plan_col, exact_schema_col, execute_program_col, execute_via_plans_col, infer_catalog_col,
    ingest_env,
};
pub use exec::{compiled_exprs_default, execute, ExecOptions};
pub use kernel::{compile_mask, compile_ops, Instr, KernelCache, KernelOp, KernelProgram};
pub use physical::{
    eval_plan, exact_schema, execute_program, execute_via_plans, infer_catalog, infer_schema,
    CapturedPlans,
};
pub use pipeline::{
    collect_unshredded, explain_query, run_query, run_query_bounded, run_query_configured,
    run_query_explained, run_query_expr, run_query_legacy, run_query_repr, run_query_spill,
    run_shredded, strategy_options, unshred_distributed, unshred_distributed_col, InputSet,
    QuerySpec, RunOutcome, RunResult, ShreddedOutput, Strategy,
};
pub use prepared::{plan_cache_key, prepare_and_run, run_prepared, PreparedQuery};
pub use vector::{eval_mask, eval_scalar_batch};
