//! # trance-compiler
//!
//! The compilation framework of **trance-rs** (Section 3 of the paper): it
//! turns NRC programs into distributed executions on the `trance-dist`
//! engine, via two routes.
//!
//! * The **standard route** ([`exec`]) mirrors the unnesting algorithm: nested
//!   inputs are flattened with (outer) unnests, correlated iterations become
//!   distributed joins, aggregations become `Γ+`/`Γ⊎`, and nested outputs are
//!   regrouped level by level.
//! * The **shredded route** ([`pipeline`]) first applies query shredding
//!   (`trance-shred`), executes the resulting flat assignments — one per
//!   output dictionary — and optionally unshreds the output with distributed
//!   label joins.
//!
//! Both routes can generate **skew-aware** executions that use the operators
//! of Section 5 for every join.
//!
//! The strategies compared in the paper's experiments are exposed as
//! [`pipeline::Strategy`] and driven by [`pipeline::run_query`].

#![warn(missing_docs)]

pub mod exec;
pub mod pipeline;

pub use exec::{execute, ExecOptions};
pub use pipeline::{
    collect_unshredded, run_query, run_shredded, unshred_distributed, InputSet, QuerySpec,
    RunOutcome, RunResult, ShreddedOutput, Strategy,
};
