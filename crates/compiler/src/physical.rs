//! The physical executor: interprets optimized [`Plan`] trees on
//! [`DistCollection`]s.
//!
//! This is the last stage of the live compilation pipeline
//! **NRC → Plan → optimize → execute**:
//!
//! 1. [`infer_catalog`] samples the distributed inputs to build the
//!    attribute-level [`Catalog`] (schemas plus materialized sizes) that
//!    drives lowering and optimization;
//! 2. `trance_algebra::lower` produces a [`PlanProgram`];
//! 3. each assignment and the root are run through
//!    `trance_algebra::optimize` **immediately before execution**, so plans
//!    over intermediates benefit from the schemas and sizes of the
//!    materializations that precede them;
//! 4. [`eval_plan`] maps every plan operator onto the engine: scans with
//!    `var.field` renaming, selections/projections/extensions as
//!    partition-parallel maps, joins as distributed hash joins honouring the
//!    optimizer's strategy annotation (broadcast / shuffle / skew-aware),
//!    unnests as flat-maps, `Γ⊎`/`Γ+` as the engine's grouping operators.
//!
//! With optimization disabled the same interpreter reproduces the
//! SparkSQL-like baseline: wide rows travel through every shuffle.
//!
//! Scalar expressions on this row-oriented route are always evaluated by
//! the tree-walking interpreter ([`crate::vector`]): register-based kernel
//! compilation ([`crate::kernel`]) is a columnar-route concern — its
//! vectorized instructions operate on typed column buffers, which row
//! batches do not have — so [`crate::exec::ExecOptions::compiled_exprs`]
//! has no effect here.

use std::collections::HashMap;

use trance_algebra::{
    fuse_chain, lower, needs_sequential, optimize, pipeline_label, pipeline_op_name, AttrSchema,
    Catalog, JoinStrategy, NestOp, OptimizerConfig, Plan, PlanJoinKind, PlanProgram,
};
use trance_dist::{
    DistCollection, DistContext, ExecError, JoinHint, JoinSpec, MorselCtx, Result, SkewTriple,
};
use trance_nrc::{Expr, NrcError, Tuple, Value};

use crate::exec::ExecOptions;

/// Optimized plans captured during one execution, in execution order. The
/// last entry is the root plan (named by the caller); earlier entries are the
/// program's materialized assignments.
pub type CapturedPlans = Vec<(String, Plan)>;

/// Lowers an NRC bag expression to a plan program and executes it over the
/// distributed inputs — the plan-route counterpart of [`crate::execute`].
///
/// When `capture` is provided, every optimized plan is recorded (for EXPLAIN
/// output) with the root plan stored under `root_label`.
pub fn execute_via_plans(
    expr: &Expr,
    inputs: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    capture: Option<&mut CapturedPlans>,
) -> Result<DistCollection> {
    let catalog = infer_catalog(inputs)?;
    let program = lower(expr, &catalog).map_err(|e| ExecError::Other(e.to_string()))?;
    execute_program_impl(&program, inputs, catalog, ctx, options, root_label, capture)
}

/// Executes a lowered [`PlanProgram`]: materializes each assignment in order
/// (optimizing it against the catalog known so far, then registering its
/// inferred schema and size), then evaluates the root plan.
pub fn execute_program(
    program: &PlanProgram,
    inputs: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    capture: Option<&mut CapturedPlans>,
) -> Result<DistCollection> {
    let catalog = infer_catalog(inputs)?;
    execute_program_impl(program, inputs, catalog, ctx, options, root_label, capture)
}

/// [`execute_program`] with the input catalog already computed (the lowering
/// entry point reuses the catalog it lowered against).
#[allow(clippy::too_many_arguments)]
fn execute_program_impl(
    program: &PlanProgram,
    inputs: &HashMap<String, DistCollection>,
    mut catalog: Catalog,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    mut capture: Option<&mut CapturedPlans>,
) -> Result<DistCollection> {
    let mut env = inputs.clone();
    let opt_config = optimizer_config(options, ctx);
    for assignment in &program.assignments {
        let plan = match &opt_config {
            Some(cfg) => optimize(&assignment.plan, &catalog, cfg),
            None => assignment.plan.clone(),
        };
        if let Some(capture) = capture.as_deref_mut() {
            capture.push((assignment.name.clone(), plan.clone()));
        }
        let out = eval_plan(&plan, &env, ctx, options)?;
        // Intermediates are registered with their *exact* top-level
        // attribute set: their scans carry no alias, so the pruning pass has
        // no prefix fallback and a sampled schema could silently drop an
        // attribute present only in unsampled rows.
        catalog.register(assignment.name.clone(), exact_schema(&out)?);
        catalog.set_size(assignment.name.clone(), out.total_bytes());
        env.insert(assignment.name.clone(), out);
    }
    let root = match &opt_config {
        Some(cfg) => optimize(&program.root, &catalog, cfg),
        None => program.root.clone(),
    };
    if let Some(capture) = capture {
        capture.push((root_label.to_string(), root.clone()));
    }
    eval_plan(&root, &env, ctx, options)
}

/// The optimizer configuration for one run; `None` when optimization is off
/// (the SparkSQL-like baseline executes lowered plans verbatim). Shared by
/// the row and columnar interpreters.
pub(crate) fn optimizer_config(
    options: &ExecOptions,
    ctx: &DistContext,
) -> Option<OptimizerConfig> {
    if !options.optimize {
        return None;
    }
    Some(OptimizerConfig {
        skew_joins: options.skew_aware,
        broadcast_limit: Some(ctx.config().broadcast_limit),
        ..OptimizerConfig::default()
    })
}

// ---------------------------------------------------------------------------
// catalog inference
// ---------------------------------------------------------------------------

/// Builds a [`Catalog`] from distributed inputs by sampling rows for the
/// attribute schemas (recursively into bag-valued attributes) and recording
/// materialized sizes for join strategy selection.
pub fn infer_catalog(inputs: &HashMap<String, DistCollection>) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    for (name, coll) in inputs {
        catalog.register(name.clone(), infer_schema(coll)?);
        catalog.set_size(name.clone(), coll.total_bytes());
    }
    Ok(catalog)
}

/// Infers the attribute schema of a collection from a small row sample.
/// Empty collections (or non-tuple rows) yield the empty schema, which the
/// optimizer treats as "unknown — don't touch". Partitions stream one at a
/// time, so spilled collections are never re-materialized wholesale.
pub fn infer_schema(coll: &DistCollection) -> Result<AttrSchema> {
    if let Some(ex) = coll.context().exchange() {
        return infer_schema_global(coll, ex.as_ref());
    }
    let mut sample: Vec<Value> = Vec::new();
    coll.for_each_partition(|rows| {
        for row in rows.iter().take(8) {
            if sample.len() < 64 {
                sample.push(row.clone());
            }
        }
        Ok(())
    })?;
    let refs: Vec<&Value> = sample.iter().collect();
    Ok(schema_of_rows(&refs))
}

/// [`infer_schema`] under a cluster exchange: reconstructs the exact sample
/// the single-process engine draws. Each rank gathers the first ≤8 rows of
/// every partition slot (non-owned slots are empty), the per-partition
/// samples are merged element-wise across ranks (only the owner contributes
/// to a slot), and the partition-ordered row sequence is truncated at the
/// same 64-row budget — so every rank derives the identical schema, and it
/// is the schema the in-process oracle infers.
fn infer_schema_global(
    coll: &DistCollection,
    ex: &dyn trance_dist::Exchange,
) -> Result<AttrSchema> {
    let mut per_part: Vec<Vec<Value>> = Vec::new();
    coll.for_each_partition(|rows| {
        per_part.push(rows.iter().take(8).cloned().collect());
        Ok(())
    })?;
    let mut w = trance_store::ByteWriter::new();
    w.len_u32(per_part.len(), "sampled partitions")?;
    for rows in &per_part {
        w.len_u32(rows.len(), "sampled rows")?;
        for row in rows {
            trance_store::encode_value(row, &mut w)?;
        }
    }
    let gathered = ex.allgather(w.into_bytes())?;
    let mut merged: Vec<Vec<Value>> = vec![Vec::new(); per_part.len()];
    for bytes in &gathered {
        let mut r = trance_store::ByteReader::new(bytes);
        let nparts = r.u32()? as usize;
        if nparts != merged.len() {
            return Err(ExecError::Other(format!(
                "schema sample partition count mismatch across ranks ({nparts} vs {})",
                merged.len()
            )));
        }
        for slot in merged.iter_mut() {
            let nrows = r.u32()? as usize;
            for _ in 0..nrows {
                slot.push(trance_store::decode_value(&mut r)?);
            }
        }
    }
    let mut sample: Vec<Value> = Vec::new();
    for slot in merged {
        for row in slot {
            if sample.len() < 64 {
                sample.push(row);
            }
        }
    }
    let refs: Vec<&Value> = sample.iter().collect();
    Ok(schema_of_rows(&refs))
}

/// The exact top-level attribute union across **all** rows of a collection
/// (one pass, like the size metering). Nested bag schemas stay sampled:
/// pruning below an aliased unnest keeps every required `alias.`-prefixed
/// attribute regardless of what the sample saw. Partitions stream one at a
/// time, like [`infer_schema`].
pub fn exact_schema(coll: &DistCollection) -> Result<AttrSchema> {
    let mut out = AttrSchema::default();
    coll.for_each_partition(|rows| {
        for row in rows {
            if let Value::Tuple(t) = row {
                for (name, value) in t.iter() {
                    if !out.contains(name) {
                        out.attrs.push(name.to_string());
                    }
                    if let Value::Bag(bag) = value {
                        let inner_rows: Vec<&Value> = bag.iter().take(8).collect();
                        let inner = schema_of_rows(&inner_rows);
                        let entry = out.nested.entry(name.to_string()).or_default();
                        *entry = entry.merge(&inner);
                    }
                }
            }
        }
        Ok(())
    })?;
    Ok(out)
}

fn schema_of_rows(rows: &[&Value]) -> AttrSchema {
    let mut out = AttrSchema::default();
    for row in rows {
        if let Value::Tuple(t) = row {
            for (name, value) in t.iter() {
                if !out.contains(name) {
                    out.attrs.push(name.to_string());
                }
                if let Value::Bag(bag) = value {
                    let inner_rows: Vec<&Value> = bag.iter().take(8).collect();
                    let inner = schema_of_rows(&inner_rows);
                    let entry = out.nested.entry(name.to_string()).or_default();
                    *entry = entry.merge(&inner);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// the interpreter
// ---------------------------------------------------------------------------

/// Evaluates one plan tree against the environment of named collections.
pub fn eval_plan(
    plan: &Plan,
    env: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<DistCollection> {
    if options.pipelined {
        if let Some(out) = eval_pipelined_row(plan, env, ctx, options)? {
            return Ok(out);
        }
    }
    match plan {
        Plan::Scan { name, alias } => {
            let coll = env
                .get(name)
                .ok_or_else(|| ExecError::Other(format!("unknown input relation `{name}`")))?;
            match alias {
                None => Ok(coll.clone()),
                Some(alias) => {
                    let alias = alias.clone();
                    coll.map(move |row| Ok(Value::Tuple(rename_row(row, &alias))))
                }
            }
        }
        Plan::Unit => Ok(ctx.parallelize(vec![Value::Tuple(Tuple::empty())])),
        Plan::Empty => Ok(ctx.empty()),
        Plan::Select { input, predicate } => {
            let rows = eval_plan(input, env, ctx, options)?;
            let predicate = predicate.clone();
            rows.filter(move |row| Ok(predicate.eval(row.as_tuple()?)?.as_bool()?))
        }
        Plan::Project { input, columns } => {
            let rows = eval_plan(input, env, ctx, options)?;
            let columns = columns.clone();
            rows.map(move |row| Ok(Value::Tuple(project_row(row.as_tuple()?, &columns)?)))
        }
        Plan::Extend { input, columns } => {
            let rows = eval_plan(input, env, ctx, options)?;
            let columns = columns.clone();
            rows.map(move |row| Ok(Value::Tuple(extend_row(row.as_tuple()?, &columns)?)))
        }
        Plan::AddIndex { input, id_attr } => {
            let rows = eval_plan(input, env, ctx, options)?;
            rows.with_unique_id(id_attr)
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            strategy,
        } => {
            let l = eval_plan(left, env, ctx, options)?;
            let r = eval_plan(right, env, ctx, options)?;
            let lk: Vec<&str> = left_key.iter().map(String::as_str).collect();
            let rk: Vec<&str> = right_key.iter().map(String::as_str).collect();
            let spec = match kind {
                PlanJoinKind::Inner => JoinSpec::inner(&lk, &rk),
                PlanJoinKind::LeftOuter => JoinSpec::left_outer(&lk, &rk),
            };
            if options.skew_aware || *strategy == JoinStrategy::Skew {
                SkewTriple::unknown(l).join(&r, &spec)?.merged()
            } else {
                let spec = match strategy {
                    // The planner's size bound predates the `var.field`
                    // renaming, which inflates per-row bytes; force the
                    // broadcast only when the materialized side really fits,
                    // otherwise fall back to the runtime decision.
                    JoinStrategy::Broadcast if r.total_bytes() <= ctx.config().broadcast_limit => {
                        spec.with_hint(JoinHint::BroadcastRight)
                    }
                    JoinStrategy::Shuffle => spec.with_hint(JoinHint::Shuffle),
                    _ => spec,
                };
                l.join(&r, &spec)
            }
        }
        Plan::Unnest {
            input,
            bag_attr,
            alias,
            outer,
            id_attr,
        } => {
            let rows = eval_plan(input, env, ctx, options)?;
            let rows = match (outer, id_attr) {
                (true, Some(id)) => rows.with_unique_id(id)?,
                _ => rows,
            };
            let bag_attr = bag_attr.clone();
            let alias = alias.clone();
            let outer = *outer;
            rows.flat_map(move |row| {
                unnest_row(row.as_tuple()?, &bag_attr, alias.as_deref(), outer)
            })
        }
        Plan::Nest {
            input,
            key,
            values,
            op,
        } => {
            let rows = eval_plan(input, env, ctx, options)?;
            match op {
                NestOp::Sum => {
                    if options.skew_aware {
                        SkewTriple::unknown(rows).nest_sum(key, values)?.merged()
                    } else {
                        rows.nest_sum(key, values)
                    }
                }
                NestOp::Bag { group_attr } => rows.nest_bag(key, values, group_attr),
            }
        }
        Plan::Dedup { input } => eval_plan(input, env, ctx, options)?.distinct(),
        Plan::Union { left, right } => {
            let l = eval_plan(left, env, ctx, options)?;
            let r = eval_plan(right, env, ctx, options)?;
            l.union(&r)
        }
        Plan::BagToDict { input } => {
            // The partitioning guarantee is implicit in the engine; the cast
            // is a no-op at execution time.
            eval_plan(input, env, ctx, options)
        }
        Plan::DictLookup { .. } => Err(ExecError::Other(
            "DictLookup is not produced by the lowering (shredded plans are flat); \
             reserved for hand-written plans"
                .into(),
        )),
    }
}

/// Flattens one row's bag-valued attribute — the row engine's unnest kernel,
/// shared by the staged operator and fused pipeline steps. With `outer`, a
/// row whose bag is empty or NULL keeps its parent tuple (inner attributes
/// stay absent).
fn unnest_row(t: &Tuple, bag_attr: &str, alias: Option<&str>, outer: bool) -> Result<Vec<Value>> {
    let bag = match t.get(bag_attr) {
        Some(Value::Bag(b)) => b.clone(),
        Some(Value::Null) | None => trance_nrc::Bag::empty(),
        Some(other) => {
            return Err(NrcError::TypeMismatch {
                expected: "bag".into(),
                found: other.kind().into(),
                context: format!("unnest of {bag_attr}"),
            }
            .into())
        }
    };
    let parent = t.project_away(&[bag_attr]);
    if bag.is_empty() {
        return Ok(if outer {
            vec![Value::Tuple(parent)]
        } else {
            Vec::new()
        });
    }
    let mut out = Vec::with_capacity(bag.len());
    for elem in bag.iter() {
        let mut new_row = parent.clone();
        merge_element(&mut new_row, elem, alias);
        out.push(Value::Tuple(new_row));
    }
    Ok(out)
}

/// Projection kernel (`π`) over one row — shared by the staged operator arm
/// and the fused pipeline step, so the two executors cannot drift.
fn project_row(t: &Tuple, columns: &[(String, trance_algebra::ScalarExpr)]) -> Result<Tuple> {
    let mut out = Tuple::empty();
    for (name, expr) in columns {
        out.set(name.clone(), expr.eval(t)?);
    }
    Ok(out)
}

/// Extension kernel over one row: each extension sees the attributes set
/// before it. Shared by the staged arm and the fused step.
fn extend_row(t: &Tuple, columns: &[(String, trance_algebra::ScalarExpr)]) -> Result<Tuple> {
    let mut t = t.clone();
    for (name, expr) in columns {
        let v = expr.eval(&t)?;
        t.set(name.clone(), v);
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// fused pipelines (row representation)
// ---------------------------------------------------------------------------

/// One fused step of a row pipeline: borrowed rows in, fresh rows out (every
/// row-local operator builds new rows, so borrowing the input avoids a deep
/// clone per morsel), with the morsel cursor supplying per-partition id
/// state for sequential chains.
type RowStep = Box<dyn Fn(&[Value], &mut MorselCtx) -> Result<Vec<Value>> + Send + Sync>;

/// The row-representation twin of the columnar chain compiler: a maximal
/// chain of row-local operators (plus an optional fused scan rename)
/// compiled into rows-at-a-time steps.
struct CompiledRowChain {
    steps: Vec<RowStep>,
    ops: Vec<String>,
    label: String,
    sequential: bool,
}

fn compile_chain_row(scan_alias: Option<String>, chain: &[&Plan]) -> Result<CompiledRowChain> {
    let mut steps: Vec<RowStep> = Vec::new();
    let mut ops: Vec<String> = Vec::new();
    let mut id_slots = 0usize;
    let mut sequential = false;
    if let Some(alias) = scan_alias {
        ops.push("scan".to_string());
        steps.push(Box::new(move |rows, _| {
            Ok(rows
                .iter()
                .map(|row| Value::Tuple(rename_row(row, &alias)))
                .collect())
        }));
    }
    for node in chain {
        ops.push(pipeline_op_name(node).to_string());
        if needs_sequential(node) {
            sequential = true;
        }
        match node {
            Plan::Select { predicate, .. } => {
                let predicate = predicate.clone();
                steps.push(Box::new(move |rows, _| {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        if predicate.eval(row.as_tuple()?)?.as_bool()? {
                            out.push(row.clone());
                        }
                    }
                    Ok(out)
                }));
            }
            Plan::Project { columns, .. } => {
                let columns = columns.clone();
                steps.push(Box::new(move |rows, _| {
                    rows.iter()
                        .map(|row| Ok(Value::Tuple(project_row(row.as_tuple()?, &columns)?)))
                        .collect()
                }));
            }
            Plan::Extend { columns, .. } => {
                let columns = columns.clone();
                steps.push(Box::new(move |rows, _| {
                    rows.iter()
                        .map(|row| Ok(Value::Tuple(extend_row(row.as_tuple()?, &columns)?)))
                        .collect()
                }));
            }
            Plan::AddIndex { id_attr, .. } => {
                let attr = id_attr.clone();
                let slot = id_slots;
                id_slots += 1;
                steps.push(Box::new(move |rows, cx| {
                    let start = cx.reserve(slot, rows.len());
                    rows.iter()
                        .enumerate()
                        .map(|(i, row)| {
                            let mut t = row.as_tuple()?.clone();
                            t.set(
                                attr.clone(),
                                Value::Int(cx.partition as i64 + (start + i as i64) * cx.stride),
                            );
                            Ok(Value::Tuple(t))
                        })
                        .collect()
                }));
            }
            Plan::Unnest {
                bag_attr,
                alias,
                outer,
                id_attr,
                ..
            } => {
                let bag_attr = bag_attr.clone();
                let alias = alias.clone();
                let outer = *outer;
                let id = match (outer, id_attr) {
                    (true, Some(id)) => {
                        id_slots += 1;
                        Some((id.clone(), id_slots - 1))
                    }
                    _ => None,
                };
                steps.push(Box::new(move |rows, cx| {
                    let start = match &id {
                        Some((_, slot)) => cx.reserve(*slot, rows.len()),
                        None => 0,
                    };
                    let mut out = Vec::with_capacity(rows.len());
                    for (i, row) in rows.iter().enumerate() {
                        let t = row.as_tuple()?;
                        let flattened = match &id {
                            Some((attr, _)) => {
                                let mut t = t.clone();
                                t.set(
                                    attr.clone(),
                                    Value::Int(
                                        cx.partition as i64 + (start + i as i64) * cx.stride,
                                    ),
                                );
                                unnest_row(&t, &bag_attr, alias.as_deref(), outer)?
                            }
                            None => unnest_row(t, &bag_attr, alias.as_deref(), outer)?,
                        };
                        out.extend(flattened);
                    }
                    Ok(out)
                }));
            }
            other => {
                return Err(ExecError::Other(format!(
                    "operator {} is not row-local and cannot join a fused pipeline",
                    pipeline_op_name(other)
                )))
            }
        }
    }
    let label = pipeline_label(&ops);
    Ok(CompiledRowChain {
        steps,
        ops,
        label,
        sequential,
    })
}

/// Attempts morsel-driven execution of `plan`'s topmost fused pipeline over
/// row collections — the row twin of the columnar fast path. Returns `None`
/// when there is nothing to fuse.
fn eval_pipelined_row(
    plan: &Plan,
    env: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> Result<Option<DistCollection>> {
    let (chain, source) = fuse_chain(plan);
    let scan_alias = match source {
        Plan::Scan {
            alias: Some(alias), ..
        } => Some(alias.clone()),
        _ => None,
    };
    if chain.is_empty() && scan_alias.is_none() {
        return Ok(None);
    }
    let src = match source {
        Plan::Scan { name, .. } => env
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::Other(format!("unknown input relation `{name}`")))?,
        other => eval_plan(other, env, ctx, options)?,
    };
    let compiled = compile_chain_row(scan_alias, &chain)?;
    let steps = compiled.steps;
    let out = src.run_pipeline(
        &compiled.label,
        &compiled.ops,
        compiled.sequential,
        move |morsel, cx| {
            let (first, rest) = steps.split_first().expect("non-empty chain");
            let mut rows = first(morsel, cx)?;
            for step in rest {
                rows = step(&rows, cx)?;
            }
            Ok(rows)
        },
    )?;
    Ok(Some(out))
}

/// Renames the fields of a scanned row to `alias.field` (non-tuple rows
/// become a single `alias.__value` attribute).
fn rename_row(row: &Value, alias: &str) -> Tuple {
    let mut out = Tuple::empty();
    match row {
        Value::Tuple(t) => {
            for (f, v) in t.iter() {
                out.set(format!("{alias}.{f}"), v.clone());
            }
        }
        other => out.set(format!("{alias}.__value"), other.clone()),
    }
    out
}

/// Merges one flattened bag element into a stream row, renaming its fields to
/// `alias.field` when an alias is present.
fn merge_element(row: &mut Tuple, elem: &Value, alias: Option<&str>) {
    match (elem, alias) {
        (Value::Tuple(et), Some(alias)) => {
            for (f, v) in et.iter() {
                row.set(format!("{alias}.{f}"), v.clone());
            }
        }
        (Value::Tuple(et), None) => {
            for (f, v) in et.iter() {
                row.set(f.to_string(), v.clone());
            }
        }
        (other, Some(alias)) => row.set(format!("{alias}.__value"), other.clone()),
        (other, None) => row.set("__value".to_string(), other.clone()),
    }
}
