//! End-to-end compilation pipelines (Figure 2) and the evaluation strategies
//! compared in Section 6.
//!
//! Every strategy compiles through the plan layer — NRC is lowered to a
//! `trance_algebra::PlanProgram`, optimized, and interpreted by the physical
//! executor ([`crate::physical`]); the shredded strategies lower each flat
//! assignment of the shredded program the same way:
//!
//! * **Standard** — the standard compilation route: flattening execution over
//!   nested rows with the optimizer on (column pruning, pushdown, join
//!   strategy selection).
//! * **Baseline** — the SparkSQL-like competitor: the same route with the
//!   optimizer **off** (wide rows travel through every shuffle), not a
//!   separate code path.
//! * **Shred** — the shredded compilation route, leaving the output in
//!   shredded (dictionary) form for downstream consumers.
//! * **ShredUnshred** — shredded route plus distributed unshredding of the
//!   final nested output.
//! * `*Skew` variants run every join with the skew-aware operators of
//!   Section 5 (the optimizer annotates every `Plan::Join` with `Skew`).
//!
//! The legacy fused executor survives behind
//! [`ExecOptions::legacy_fused`] / [`run_query_legacy`] as a differential-
//! testing oracle, and [`explain_query`] renders the optimized plans a
//! strategy actually executes.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use trance_dist::{DistCollection, DistContext, ExecError, JoinSpec, StatsSnapshot};
use trance_nrc::{Bag, Expr, Tuple, Value};
use trance_shred::{
    flat_input_name, input_dict_name, output_dict_name, shred_query, shred_value, NestingStructure,
    ShreddedInputDecl, ShreddedQuery, TOP_BAG,
};

use std::sync::Arc;

use trance_dist::{ColCollection, Column};

use crate::columnar::{execute_via_plans_col, ingest_env};
use crate::exec::{execute, ExecOptions};
use crate::physical::{execute_via_plans, CapturedPlans};

/// The evaluation strategies of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Standard compilation route (flattening, with optimizations).
    Standard,
    /// SparkSQL-like flattening baseline (no column pruning).
    Baseline,
    /// Shredded compilation, output left in shredded form.
    Shred,
    /// Shredded compilation plus unshredding of the nested output.
    ShredUnshred,
    /// Standard route with skew-aware joins.
    StandardSkew,
    /// Shredded route with skew-aware joins.
    ShredSkew,
    /// Shredded route with skew-aware joins plus unshredding.
    ShredUnshredSkew,
}

impl Strategy {
    /// All strategies, in the order the paper's figures list them.
    pub fn all() -> [Strategy; 7] {
        [
            Strategy::Standard,
            Strategy::Baseline,
            Strategy::Shred,
            Strategy::ShredUnshred,
            Strategy::StandardSkew,
            Strategy::ShredSkew,
            Strategy::ShredUnshredSkew,
        ]
    }

    /// Short label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Standard => "STANDARD",
            Strategy::Baseline => "SPARKSQL-LIKE",
            Strategy::Shred => "SHRED",
            Strategy::ShredUnshred => "SHRED+UNSHRED",
            Strategy::StandardSkew => "STANDARD-SKEW",
            Strategy::ShredSkew => "SHRED-SKEW",
            Strategy::ShredUnshredSkew => "SHRED+UNSHRED-SKEW",
        }
    }

    /// Parses a [`Strategy::label`] back to its strategy — the wire form the
    /// multi-node protocol ships strategies in.
    pub fn from_label(label: &str) -> Option<Strategy> {
        Strategy::all().into_iter().find(|s| s.label() == label)
    }

    /// True for the strategies that run on the shredded representation.
    pub fn is_shredded(&self) -> bool {
        matches!(
            self,
            Strategy::Shred
                | Strategy::ShredUnshred
                | Strategy::ShredSkew
                | Strategy::ShredUnshredSkew
        )
    }

    /// True for the strategies that run every join skew-aware (Section 5).
    pub fn skew_aware(&self) -> bool {
        matches!(
            self,
            Strategy::StandardSkew | Strategy::ShredSkew | Strategy::ShredUnshredSkew
        )
    }

    /// True for the shredded strategies that unshred the final output back
    /// to nested form.
    pub fn unshreds(&self) -> bool {
        matches!(self, Strategy::ShredUnshred | Strategy::ShredUnshredSkew)
    }
}

/// A query together with the declaration of which of its inputs are nested.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Human-readable query name (used in benchmark reports).
    pub name: String,
    /// The NRC query.
    pub query: Expr,
    /// Nested inputs and their structures (flat inputs need no declaration).
    pub nested_inputs: Vec<ShreddedInputDecl>,
}

impl QuerySpec {
    /// Creates a query spec.
    pub fn new(
        name: impl Into<String>,
        query: Expr,
        nested_inputs: Vec<ShreddedInputDecl>,
    ) -> Self {
        QuerySpec {
            name: name.into(),
            query,
            nested_inputs,
        }
    }
}

/// Pre-loaded inputs: every relation in both its nested form (for the
/// flattening strategies) and its shredded form (for the shredded
/// strategies). Building this corresponds to the input caching the paper
/// excludes from reported runtimes.
#[derive(Debug, Clone)]
pub struct InputSet {
    ctx: DistContext,
    nested: HashMap<String, DistCollection>,
    shredded: HashMap<String, DistCollection>,
}

impl InputSet {
    /// Creates an empty input set bound to a cluster context.
    pub fn new(ctx: DistContext) -> Self {
        InputSet {
            ctx,
            nested: HashMap::new(),
            shredded: HashMap::new(),
        }
    }

    /// The cluster context.
    pub fn context(&self) -> &DistContext {
        &self.ctx
    }

    /// Registers a flat input relation.
    pub fn add_flat(&mut self, name: &str, rows: Bag) -> trance_dist::Result<()> {
        let coll = self.ctx.parallelize(rows.into_items());
        self.nested.insert(name.to_string(), coll.clone());
        self.shredded.insert(name.to_string(), coll);
        Ok(())
    }

    /// Registers a nested input relation, loading both its nested form and its
    /// shredded form (flat top bag plus one collection per dictionary path).
    pub fn add_nested(&mut self, name: &str, rows: Bag) -> trance_dist::Result<()> {
        let shredded = shred_value(&rows)?;
        self.nested
            .insert(name.to_string(), self.ctx.parallelize(rows.into_items()));
        self.shredded.insert(
            flat_input_name(name),
            self.ctx.parallelize(shredded.top.into_items()),
        );
        for (path, bag) in shredded.dicts {
            self.shredded.insert(
                input_dict_name(name, &path),
                self.ctx.parallelize(bag.into_items()),
            );
        }
        Ok(())
    }

    /// Registers a flat input from explicitly partitioned rows — the
    /// multi-node loading entry point: a worker process passes only the
    /// partition slots its rank owns and empty vectors elsewhere, so every
    /// rank sees the same full-length partition vector the coordinator
    /// round-robin split.
    pub fn add_flat_partitioned(&mut self, name: &str, parts: Vec<Vec<Value>>) {
        let coll = DistCollection::from_partitioned_rows(self.ctx.clone(), parts);
        self.nested.insert(name.to_string(), coll.clone());
        self.shredded.insert(name.to_string(), coll);
    }

    /// Registers the **nested form** of a nested input from explicitly
    /// partitioned rows (multi-node loading; the shredded forms arrive
    /// separately through [`InputSet::add_shredded_partitioned`] under their
    /// `flat_input_name` / `input_dict_name` names).
    pub fn add_nested_partitioned(&mut self, name: &str, parts: Vec<Vec<Value>>) {
        self.nested.insert(
            name.to_string(),
            DistCollection::from_partitioned_rows(self.ctx.clone(), parts),
        );
    }

    /// Registers one shredded collection (a flat top bag or a dictionary)
    /// from explicitly partitioned rows under its exact shredded name
    /// (multi-node loading counterpart of [`InputSet::add_shredded`]).
    pub fn add_shredded_partitioned(&mut self, name: &str, parts: Vec<Vec<Value>>) {
        self.shredded.insert(
            name.to_string(),
            DistCollection::from_partitioned_rows(self.ctx.clone(), parts),
        );
    }

    /// Registers an already-shredded input under its shredded names. Useful
    /// when a shredded query output feeds the next query of a pipeline.
    pub fn add_shredded(&mut self, name: &str, output: &ShreddedOutput) {
        self.shredded
            .insert(flat_input_name(name), output.top.clone());
        for (path, coll) in &output.dicts {
            self.shredded
                .insert(input_dict_name(name, path), coll.clone());
        }
    }

    /// Registers an already-distributed nested collection (e.g. the output of
    /// a previous standard-route query).
    pub fn add_nested_collection(&mut self, name: &str, coll: DistCollection) {
        self.nested.insert(name.to_string(), coll);
    }

    /// The nested (standard-route) collections.
    pub fn nested_inputs(&self) -> &HashMap<String, DistCollection> {
        &self.nested
    }

    /// The shredded collections.
    pub fn shredded_inputs(&self) -> &HashMap<String, DistCollection> {
        &self.shredded
    }
}

/// The shredded output of a query: the flat top bag plus one collection per
/// output dictionary path.
#[derive(Debug, Clone)]
pub struct ShreddedOutput {
    /// The flat top-level bag.
    pub top: DistCollection,
    /// Dictionaries keyed by path.
    pub dicts: BTreeMap<String, DistCollection>,
    /// The output's nesting structure.
    pub structure: NestingStructure,
}

/// What a strategy produced.
#[derive(Debug, Clone)]
pub enum RunResult {
    /// Nested output rows (Standard, Baseline, ShredUnshred).
    Nested(DistCollection),
    /// Shredded output (Shred, ShredSkew).
    Shredded(ShreddedOutput),
    /// The run failed — in particular [`ExecError::MemoryExceeded`] reproduces
    /// the paper's FAIL entries.
    Failed(ExecError),
}

impl RunResult {
    /// True when the run failed.
    pub fn is_failure(&self) -> bool {
        matches!(self, RunResult::Failed(_))
    }

    /// Collects the nested output rows when available.
    pub fn nested_bag(&self) -> Option<Bag> {
        match self {
            RunResult::Nested(d) => Some(d.collect_bag()),
            _ => None,
        }
    }
}

/// The outcome of running one strategy on one query.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Wall-clock duration of the run (excluding input loading).
    pub elapsed: Duration,
    /// Engine metrics accumulated during the run.
    pub stats: StatsSnapshot,
    /// The produced result or failure.
    pub result: RunResult,
}

impl RunOutcome {
    /// Seconds elapsed (convenience for reports).
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// The options a strategy runs under (plan route over columnar batches,
/// morsel-driven fused pipelines by default; set `legacy_fused` to execute
/// through the legacy oracle instead).
pub fn strategy_options(strategy: Strategy, legacy_fused: bool) -> ExecOptions {
    ExecOptions {
        optimize: strategy != Strategy::Baseline,
        skew_aware: strategy.skew_aware(),
        legacy_fused,
        columnar: true,
        spill: true,
        pipelined: true,
        faults: true,
        compiled_exprs: crate::exec::compiled_exprs_default(),
        kernel_cache: None,
    }
}

/// Runs `spec` under `strategy` over the given inputs — through the plan
/// route (NRC → Plan → optimize → columnar physical execution).
pub fn run_query(spec: &QuerySpec, inputs: &InputSet, strategy: Strategy) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, true, true, true, true, true, None, None,
    )
}

/// Runs `spec` under `strategy` with an explicit **fault-tolerance
/// envelope**: `faults = false` suppresses the cluster's fault injector for
/// this run (the fault-free oracle side of the chaos differential suite),
/// and `deadline` arms the context's [`trance_dist::CancelToken`] so the run
/// is cooperatively cancelled — returning
/// [`trance_dist::ExecError::Cancelled`] — once the wall-clock budget
/// expires, even mid-spill. Both knobs are no-ops on clusters without a
/// [`trance_dist::FaultPlan`] / with no deadline set.
pub fn run_query_bounded(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    faults: bool,
    deadline: Option<Duration>,
) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, true, true, true, faults, true, deadline, None,
    )
}

/// Runs `spec` under `strategy` with an explicit spill switch: `spill =
/// false` reproduces the paper's FAIL behaviour on a spill-capable capped
/// cluster, `spill = true` (the [`run_query`] default) lets memory pressure
/// go out-of-core instead. The switch only matters on clusters built with
/// `ClusterConfig::with_spill` and a worker memory cap.
pub fn run_query_spill(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    spill: bool,
) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, true, spill, true, true, true, None, None,
    )
}

/// Runs `spec` under `strategy` through the **legacy fused** executor — the
/// differential-testing oracle the plan route must agree with.
pub fn run_query_legacy(spec: &QuerySpec, inputs: &InputSet, strategy: Strategy) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, true, true, true, true, true, true, None, None,
    )
}

/// Runs `spec` under `strategy` through the plan route in an explicit
/// physical representation: `columnar = true` executes over typed batches
/// (the default), `columnar = false` over row collections — the
/// row-vs-columnar differential pair the byte-accounting benchmarks compare.
pub fn run_query_repr(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    columnar: bool,
) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, columnar, true, true, true, true, None, None,
    )
}

/// Runs `spec` under `strategy` with the physical representation **and** the
/// executor mode spelled out: `pipelined = true` (the default elsewhere)
/// fuses row-local operator chains into morsel-driven pipelines on the
/// persistent worker pool, `pipelined = false` is the **staged** executor
/// (one materialization per plan operator) — the oracle the
/// scheduler-stress suite differentials against.
pub fn run_query_configured(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    columnar: bool,
    pipelined: bool,
) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, columnar, true, pipelined, true, true, None, None,
    )
}

/// Runs `spec` under `strategy` with the **expression engine** spelled out:
/// `compiled = true` evaluates row-local operator chains through compiled
/// register kernels ([`crate::kernel`]), `compiled = false` forces the tree
/// interpreter ([`crate::vector::eval_scalar_batch`]) — the differential
/// oracle the expr_agree suite compares against. Both sides run the same
/// plans on the same shuffles, so their logical *and* physical byte
/// accounting must agree exactly.
pub fn run_query_expr(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    columnar: bool,
    compiled: bool,
) -> RunOutcome {
    run_query_impl(
        spec, inputs, strategy, false, columnar, true, true, true, compiled, None, None,
    )
}

/// Runs `spec` under `strategy` while capturing the optimized plans it
/// executes, returning the outcome together with the rendered EXPLAIN text.
/// Runs that went out-of-core report their spill volume and I/O time after
/// the plans.
pub fn run_query_explained(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
) -> (RunOutcome, String) {
    let mut capture: CapturedPlans = Vec::new();
    let outcome = run_query_impl(
        spec,
        inputs,
        strategy,
        false,
        true,
        true,
        true,
        true,
        true,
        None,
        Some(&mut capture),
    );
    let mut out = String::new();
    let _ = writeln!(out, "== {} · {} ==", spec.name, strategy.label());
    for (name, plan) in &capture {
        let _ = writeln!(out, "-- {name} --");
        // Each operator is annotated with the fused pipeline it executes in
        // (`·p0`, `·p1`, …); breakers carry no marker.
        out.push_str(&trance_algebra::pretty_plan_pipelines(plan));
    }
    if !outcome.stats.pipeline_timings.is_empty() {
        let _ = writeln!(
            out,
            "-- pipelines: {} morsels, {} steals, {:.1} ms total --",
            outcome.stats.total_morsels(),
            outcome.stats.steal_count,
            outcome.stats.pipeline_ms(),
        );
        for (label, t) in &outcome.stats.pipeline_timings {
            let _ = writeln!(
                out,
                "   {label}: {} runs, {} morsels, {:.1} ms [{}]",
                t.calls,
                t.morsels,
                t.micros as f64 / 1000.0,
                t.ops.join(" → "),
            );
        }
    }
    if !outcome.stats.expr_programs.is_empty() {
        let _ = writeln!(
            out,
            "-- expr kernels: {} instrs over {} compiles, {:.2} ms compile --",
            outcome.stats.expr_kernel_instrs,
            outcome.stats.expr_compiles(),
            outcome.stats.expr_compile_ms(),
        );
        for (label, p) in &outcome.stats.expr_programs {
            let _ = writeln!(
                out,
                "   {label}: {} compiles, {} instrs, {} µs",
                p.compiles, p.instrs, p.micros
            );
            for line in p.text.lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    if outcome.stats.spilled_bytes > 0 {
        let _ = writeln!(
            out,
            "-- spill: {} bytes in {} files, {:.1} ms I/O --",
            outcome.stats.spilled_bytes,
            outcome.stats.spill_files,
            outcome.stats.spill_ms(),
        );
    }
    if outcome.stats.faults_injected > 0 {
        let _ = writeln!(
            out,
            "-- faults: {} injected, {} retries, {} partitions recovered --",
            outcome.stats.faults_injected,
            outcome.stats.retries,
            outcome.stats.recovered_partitions,
        );
    }
    if outcome.stats.cancelled > 0 {
        let _ = writeln!(out, "-- cancelled --");
    }
    if let RunResult::Failed(e) = &outcome.result {
        let _ = writeln!(out, "-- run failed: {e} --");
    }
    (outcome, out)
}

/// Renders the optimized plans `strategy` actually executes for `spec` (the
/// query runs so intermediate schemas and sizes inform optimization, exactly
/// as in a measured run).
pub fn explain_query(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
) -> trance_dist::Result<String> {
    let (outcome, text) = run_query_explained(spec, inputs, strategy);
    if let RunResult::Failed(e) = &outcome.result {
        return Err(e.clone());
    }
    Ok(text)
}

#[allow(clippy::too_many_arguments)]
fn run_query_impl(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    legacy_fused: bool,
    columnar: bool,
    spill: bool,
    pipelined: bool,
    faults: bool,
    compiled_exprs: bool,
    deadline: Option<Duration>,
    capture: Option<&mut CapturedPlans>,
) -> RunOutcome {
    let ctx = inputs.context();
    ctx.stats().reset();
    // Every run starts with a fresh cancellation scope: a stale flag or
    // deadline from an earlier run on the same context must not leak in.
    let cancel = ctx.cancel_token();
    cancel.reset();
    cancel.set_timeout(deadline);
    let start = Instant::now();
    let result = match dispatch(
        spec,
        inputs,
        strategy,
        legacy_fused,
        columnar,
        spill,
        pipelined,
        faults,
        compiled_exprs,
        capture,
    ) {
        Ok(r) => r,
        Err(e) => RunResult::Failed(e),
    };
    if let RunResult::Failed(e) = &result {
        if e.is_cancelled() {
            ctx.stats().record_cancelled();
        }
    }
    // Disarm the deadline so it cannot fire into a later run.
    cancel.set_timeout(None);
    RunOutcome {
        strategy,
        elapsed: start.elapsed(),
        stats: ctx.stats().snapshot(),
        result,
    }
}

/// Runs one NRC bag expression through the configured route.
fn execute_query(
    expr: &Expr,
    env: &HashMap<String, DistCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
    root_label: &str,
    capture: Option<&mut CapturedPlans>,
) -> trance_dist::Result<DistCollection> {
    if options.legacy_fused {
        execute(expr, env, ctx, options)
    } else {
        execute_via_plans(expr, env, ctx, options, root_label, capture)
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    legacy_fused: bool,
    columnar: bool,
    spill: bool,
    pipelined: bool,
    faults: bool,
    compiled_exprs: bool,
    capture: Option<&mut CapturedPlans>,
) -> trance_dist::Result<RunResult> {
    let ctx = inputs.context();
    let mut options = strategy_options(strategy, legacy_fused);
    options.columnar = columnar;
    options.spill = spill;
    options.pipelined = pipelined;
    options.faults = faults;
    // The caller's switch composes with the session default: an explicit
    // `TRANCE_EXPR=interp` escape hatch wins over a `true` here.
    options.compiled_exprs = compiled_exprs && options.compiled_exprs;
    // `ExecOptions::spill` only bites on clusters built with
    // `ClusterConfig::with_spill` and a memory cap; everywhere else the
    // session toggle is a no-op and capped runs FAIL as in the paper.
    ctx.set_spill_session(options.spill);
    // Likewise `ExecOptions::faults` only bites on clusters configured with
    // a `FaultPlan`: turning it off runs the same query fault-free on the
    // same cluster (the chaos suite's oracle side).
    ctx.set_fault_session(options.faults);
    match strategy {
        Strategy::Standard | Strategy::StandardSkew | Strategy::Baseline => {
            let out = if options.columnar && !options.legacy_fused {
                // Columnar route: rows cross into batches once at scan
                // ingest, back out once at the collect boundary.
                let env = ingest_env(inputs.nested_inputs())?;
                execute_via_plans_col(&spec.query, &env, ctx, &options, "result", capture)?
                    .to_rows()?
            } else {
                execute_query(
                    &spec.query,
                    inputs.nested_inputs(),
                    ctx,
                    &options,
                    "result",
                    capture,
                )?
            };
            Ok(RunResult::Nested(out))
        }
        Strategy::Shred
        | Strategy::ShredUnshred
        | Strategy::ShredSkew
        | Strategy::ShredUnshredSkew => {
            let shredded =
                shred_query(&spec.query, &spec.nested_inputs).map_err(ExecError::from)?;
            if options.columnar && !options.legacy_fused {
                // Columnar route end to end: the flat assignments stay in
                // batches, and unshredding runs over columnar operators too,
                // so its shuffles meter exact physical buffer bytes instead
                // of falling back to the row engine's logical estimate.
                let (top, dicts) = run_shredded_col(&shredded, inputs, &options, capture)?;
                if strategy.unshreds() {
                    let nested =
                        unshred_distributed_col(&top, &dicts, &shredded.structure, &options)?;
                    return Ok(RunResult::Nested(nested.to_rows()?));
                }
                let mut row_dicts = BTreeMap::new();
                for (path, d) in dicts {
                    row_dicts.insert(path, d.to_rows()?);
                }
                return Ok(RunResult::Shredded(ShreddedOutput {
                    top: top.to_rows()?,
                    dicts: row_dicts,
                    structure: shredded.structure.clone(),
                }));
            }
            let output = run_shredded_impl(&shredded, inputs, &options, capture)?;
            if strategy.unshreds() {
                let nested = unshred_distributed(&output, ctx, &options)?;
                Ok(RunResult::Nested(nested))
            } else {
                Ok(RunResult::Shredded(output))
            }
        }
    }
}

/// Executes the flat assignments of a shredded program in order, returning the
/// shredded output. Each assignment goes through the plan layer (lowered,
/// optimized and interpreted) unless `options.legacy_fused` is set.
pub fn run_shredded(
    shredded: &ShreddedQuery,
    inputs: &InputSet,
    options: &ExecOptions,
) -> trance_dist::Result<ShreddedOutput> {
    run_shredded_impl(shredded, inputs, options, None)
}

fn run_shredded_impl(
    shredded: &ShreddedQuery,
    inputs: &InputSet,
    options: &ExecOptions,
    mut capture: Option<&mut CapturedPlans>,
) -> trance_dist::Result<ShreddedOutput> {
    let ctx = inputs.context();
    if options.columnar && !options.legacy_fused {
        let (top, dicts) = run_shredded_col(shredded, inputs, options, capture)?;
        let mut row_dicts = BTreeMap::new();
        for (path, d) in dicts {
            row_dicts.insert(path, d.to_rows()?);
        }
        return Ok(ShreddedOutput {
            top: top.to_rows()?,
            dicts: row_dicts,
            structure: shredded.structure.clone(),
        });
    }
    let mut env = inputs.shredded_inputs().clone();
    for assignment in &shredded.program.assignments {
        let out = execute_query(
            &assignment.expr,
            &env,
            ctx,
            options,
            &assignment.name,
            capture.as_deref_mut(),
        )?;
        env.insert(assignment.name.clone(), out);
    }
    assemble_shredded_output(shredded, |name| env.get(name).cloned())
}

/// Columnar execution of a shredded program: the environment of materialized
/// flat assignments stays in batches across the whole program; the result is
/// the columnar top bag plus one columnar collection per dictionary path
/// (ready for columnar unshredding — nothing crosses back to rows here).
fn run_shredded_col(
    shredded: &ShreddedQuery,
    inputs: &InputSet,
    options: &ExecOptions,
    mut capture: Option<&mut CapturedPlans>,
) -> trance_dist::Result<(ColCollection, BTreeMap<String, ColCollection>)> {
    let ctx = inputs.context();
    let mut env = ingest_env(inputs.shredded_inputs())?;
    for assignment in &shredded.program.assignments {
        let out = execute_via_plans_col(
            &assignment.expr,
            &env,
            ctx,
            options,
            &assignment.name,
            capture.as_deref_mut(),
        )?;
        env.insert(assignment.name.clone(), out);
    }
    let top = env
        .get(TOP_BAG)
        .cloned()
        .ok_or_else(|| ExecError::Other("shredded program produced no TopBag".into()))?;
    let mut dicts = BTreeMap::new();
    for path in shredded.structure.paths() {
        let name = shredded
            .dict_names
            .get(&path)
            .cloned()
            .unwrap_or_else(|| output_dict_name(&path));
        if let Some(d) = env.get(&name) {
            dicts.insert(path, d.clone());
        }
    }
    Ok((top, dicts))
}

/// Collects a shredded program's outputs (the top bag plus one collection
/// per dictionary path) out of an executed environment — shared by both
/// physical representations so dictionary naming and error handling cannot
/// diverge between them.
fn assemble_shredded_output(
    shredded: &ShreddedQuery,
    lookup: impl Fn(&str) -> Option<DistCollection>,
) -> trance_dist::Result<ShreddedOutput> {
    let top = lookup(TOP_BAG)
        .ok_or_else(|| ExecError::Other("shredded program produced no TopBag".into()))?;
    let mut dicts = BTreeMap::new();
    for path in shredded.structure.paths() {
        let name = shredded
            .dict_names
            .get(&path)
            .cloned()
            .unwrap_or_else(|| output_dict_name(&path));
        if let Some(d) = lookup(&name) {
            dicts.insert(path, d);
        }
    }
    Ok(ShreddedOutput {
        top,
        dicts,
        structure: shredded.structure.clone(),
    })
}

/// Distributed unshredding: reassembles the nested output by grouping each
/// dictionary by label (`Γ⊎`) and joining it back into its parent, deepest
/// level first.
pub fn unshred_distributed(
    output: &ShreddedOutput,
    _ctx: &DistContext,
    options: &ExecOptions,
) -> trance_dist::Result<DistCollection> {
    // Work on a mutable copy of the dictionaries; children are folded into
    // their parents bottom-up.
    let mut dicts: BTreeMap<String, DistCollection> = output.dicts.clone();
    let mut paths: Vec<String> = output.structure.paths();
    paths.sort_by_key(|p| std::cmp::Reverse(p.matches('_').count()));

    let mut top = output.top.clone();
    for path in paths {
        let child = match dicts.get(&path) {
            Some(c) => c.clone(),
            None => continue,
        };
        let attr = path.rsplit('_').next().unwrap_or(&path).to_string();
        let parent_path: Option<String> = path
            .rfind('_')
            .map(|i| path[..i].to_string())
            .filter(|p| dicts.contains_key(p));

        // Group the child dictionary rows by label into a single bag column.
        let value_attrs: Vec<String> = first_attrs(&child)?
            .into_iter()
            .filter(|a| a != "label")
            .collect();
        let grouped = child.nest_bag(&["label".to_string()], &value_attrs, "__grp")?;
        let grouped = grouped.map(|row| {
            let t = row.as_tuple()?;
            let mut out = Tuple::empty();
            out.set("__jk", t.get("label").cloned().unwrap_or(Value::Null));
            out.set(
                "__grp",
                t.get("__grp").cloned().unwrap_or(Value::empty_bag()),
            );
            Ok(Value::Tuple(out))
        })?;

        let attach = |parent: &DistCollection| -> trance_dist::Result<DistCollection> {
            let spec =
                JoinSpec::left_outer(&[attr.as_str()], &["__jk"]).with_right_fields(&["__grp"]);
            let joined = if options.skew_aware {
                trance_dist::SkewTriple::unknown(parent.clone())
                    .join(&grouped, &spec)?
                    .merged()?
            } else {
                parent.join(&grouped, &spec)?
            };
            let attr = attr.clone();
            joined.map(move |row| {
                let mut t = row.as_tuple()?.clone();
                let grp = match t.remove("__grp") {
                    Some(Value::Bag(b)) => Value::Bag(b),
                    _ => Value::empty_bag(),
                };
                t.remove("__jk");
                t.set(attr.clone(), grp);
                Ok(Value::Tuple(t))
            })
        };

        match parent_path {
            Some(pp) => {
                let parent = dicts
                    .get(&pp)
                    .cloned()
                    .ok_or_else(|| ExecError::Other(format!("missing parent dictionary `{pp}`")))?;
                dicts.insert(pp, attach(&parent)?);
            }
            None => {
                top = attach(&top)?;
            }
        }
    }
    Ok(top)
}

/// Distributed unshredding over the **columnar** representation: the same
/// label-grouping and label-join cascade as [`unshred_distributed`], executed
/// on [`ColCollection`]s — so the unshred phase's shuffles ship batches and
/// meter exact physical buffer bytes instead of falling back to the row
/// engine's logical estimate.
pub fn unshred_distributed_col(
    top: &ColCollection,
    dicts: &BTreeMap<String, ColCollection>,
    structure: &NestingStructure,
    options: &ExecOptions,
) -> trance_dist::Result<ColCollection> {
    let mut dicts: BTreeMap<String, ColCollection> = dicts.clone();
    let mut paths: Vec<String> = structure.paths();
    paths.sort_by_key(|p| std::cmp::Reverse(p.matches('_').count()));

    let mut top = top.clone();
    for path in paths {
        let child = match dicts.get(&path) {
            Some(c) => c.clone(),
            None => continue,
        };
        let attr = path.rsplit('_').next().unwrap_or(&path).to_string();
        let parent_path: Option<String> = path
            .rfind('_')
            .map(|i| path[..i].to_string())
            .filter(|p| dicts.contains_key(p));

        // Group the child dictionary rows by label into a single bag column,
        // then keep only the join key (renamed label) and the group — a
        // schema-only rewrite on batches.
        let value_attrs: Vec<String> = child
            .first_fields()?
            .into_iter()
            .filter(|a| a != "label")
            .collect();
        let grouped = child.nest_bag(&["label".to_string()], &value_attrs, "__grp")?;
        let keep = vec!["label".to_string(), "__grp".to_string()];
        let grouped = grouped.map_batches("map", move |b| {
            Ok(b.project_fields(&keep).rename_fields(
                |f| {
                    if f == "label" {
                        "__jk".to_string()
                    } else {
                        f.to_string()
                    }
                },
                "__value",
            ))
        })?;

        let attach = |parent: &ColCollection| -> trance_dist::Result<ColCollection> {
            let spec =
                JoinSpec::left_outer(&[attr.as_str()], &["__jk"]).with_right_fields(&["__grp"]);
            let joined = if options.skew_aware {
                parent.skew_join(&grouped, &spec)?
            } else {
                parent.join(&grouped, &spec)?
            };
            let attr = attr.clone();
            joined.map_batches("map", move |b| {
                // NULL-extended rows (labels with no child entries) become
                // empty bags, exactly like the row route's final map; the
                // group replaces the label at the attribute's position.
                let grp: Vec<Value> = (0..b.rows())
                    .map(|i| match b.value_at(i, "__grp") {
                        Some(Value::Bag(bag)) => Value::Bag(bag),
                        _ => Value::empty_bag(),
                    })
                    .collect();
                let out = b.with_column(&attr, Arc::new(Column::from_values(grp)));
                Ok(out.without_column("__jk").without_column("__grp"))
            })
        };

        match parent_path {
            Some(pp) => {
                let parent = dicts
                    .get(&pp)
                    .cloned()
                    .ok_or_else(|| ExecError::Other(format!("missing parent dictionary `{pp}`")))?;
                dicts.insert(pp, attach(&parent)?);
            }
            None => {
                top = attach(&top)?;
            }
        }
    }
    Ok(top)
}

/// Attribute names of the first available row (early exit: at most one
/// spilled partition is read back).
fn first_attrs(d: &DistCollection) -> trance_dist::Result<Vec<String>> {
    d.first_fields()
}

/// Collects a shredded output and reassembles the nested value locally (used
/// by tests and small examples).
pub fn collect_unshredded(output: &ShreddedOutput) -> trance_nrc::Result<Bag> {
    let mut dict_bags = BTreeMap::new();
    for (path, d) in &output.dicts {
        dict_bags.insert(path.clone(), d.collect_bag());
    }
    trance_shred::unshred_pieces(output.top.collect_bag(), dict_bags, &output.structure)
}
