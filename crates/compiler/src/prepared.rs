//! **Prepared queries** — the compiled-plan payload of the serving layer's
//! plan cache.
//!
//! Compiling a query is front-loaded work that repeats identically on every
//! submission: lowering (the unnesting algorithm), per-assignment
//! `trance_algebra::optimize` against the catalog known so far,
//! pipeline-breaker analysis, and kernel-program compilation. A
//! [`PreparedQuery`] captures what that work produced — the **optimized**
//! plans of every assignment (for the shredded strategies: of every flat
//! assignment of the shredded program, each with its own call-local
//! intermediates) — so a warm submission replays them **verbatim** through
//! [`eval_plan_col`]: no lowering, no catalog inference over the inputs'
//! bytes, no optimizer pass. Kernel programs are reused through the shared
//! [`crate::KernelCache`] threaded through `ExecOptions::kernel_cache`,
//! which is what makes a warm run report *zero* expression-compile time.
//!
//! Replaying a plan optimized against yesterday's statistics is safe:
//! optimizer choices only affect *how* a plan runs, and the one
//! data-dependent hazard — a broadcast join whose build side has since
//! grown — is re-checked at runtime by the columnar executor's broadcast
//! guard, which falls back to a shuffle join when the side no longer fits
//! under `broadcast_limit`. Staleness is bounded by the serving layer's
//! cache key, which includes the table catalog's epoch: any re-registration
//! invalidates the entry and the next submission re-prepares.

use std::collections::{BTreeMap, HashMap};

use trance_dist::{ColCollection, DistContext, ExecError};
use trance_shred::{output_dict_name, shred_query, NestingStructure, TOP_BAG};

use crate::columnar::{eval_plan_col, execute_via_plans_col};
use crate::exec::ExecOptions;
use crate::physical::CapturedPlans;
use crate::pipeline::{unshred_distributed_col, QuerySpec, RunResult, ShreddedOutput, Strategy};

/// A query compiled down to its optimized plans, ready for verbatim replay.
///
/// Produced by [`prepare_and_run`] on a cache miss (the cold run executes
/// *and* captures), consumed by [`run_prepared`] on every hit.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    strategy: Strategy,
    kind: PreparedKind,
}

#[derive(Debug, Clone)]
enum PreparedKind {
    /// Standard-family: one captured program (assignment plans in order,
    /// root plan last under the `"result"` label).
    Standard { plans: CapturedPlans },
    /// Shredded-family: one captured program per flat assignment of the
    /// shredded query, executed in order over an accumulating environment.
    Shredded {
        /// `(assignment name, its captured plans)` in execution order. Each
        /// unit's intermediate plans are call-local; its root plan's output
        /// enters the shared environment under the assignment name.
        units: Vec<(String, CapturedPlans)>,
        /// The output's nesting structure (for dictionaries / unshredding).
        structure: NestingStructure,
        /// `(dictionary path, environment name)` resolved at prepare time.
        dict_sources: Vec<(String, String)>,
        /// Whether the strategy unshreds the final output to nested form.
        unshred: bool,
    },
}

impl PreparedQuery {
    /// The strategy this query was prepared under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Total number of captured (optimized) plans across all units.
    pub fn plan_count(&self) -> usize {
        match &self.kind {
            PreparedKind::Standard { plans } => plans.len(),
            PreparedKind::Shredded { units, .. } => units.iter().map(|(_, p)| p.len()).sum(),
        }
    }
}

/// Cold path: runs `spec` under `strategy` over columnar inputs through the
/// full compile pipeline, capturing the optimized plans of everything it
/// executes. Returns the result together with the [`PreparedQuery`] to
/// cache. `env` holds the nested-form inputs (standard strategies), and
/// `shredded_env` the shredded-form inputs (shredded strategies) — both
/// already ingested to batches, as the serving layer keeps them resident.
pub fn prepare_and_run(
    spec: &QuerySpec,
    env: &HashMap<String, ColCollection>,
    shredded_env: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    strategy: Strategy,
    options: &ExecOptions,
) -> trance_dist::Result<(RunResult, PreparedQuery)> {
    ctx.set_spill_session(options.spill);
    ctx.set_fault_session(options.faults);
    if !strategy.is_shredded() {
        let mut plans: CapturedPlans = Vec::new();
        let out =
            execute_via_plans_col(&spec.query, env, ctx, options, "result", Some(&mut plans))?;
        let prepared = PreparedQuery {
            strategy,
            kind: PreparedKind::Standard { plans },
        };
        return Ok((RunResult::Nested(out.to_rows()?), prepared));
    }
    let shredded = shred_query(&spec.query, &spec.nested_inputs).map_err(ExecError::from)?;
    let mut acc = shredded_env.clone();
    let mut units: Vec<(String, CapturedPlans)> = Vec::new();
    for assignment in &shredded.program.assignments {
        let mut plans: CapturedPlans = Vec::new();
        let out = execute_via_plans_col(
            &assignment.expr,
            &acc,
            ctx,
            options,
            &assignment.name,
            Some(&mut plans),
        )?;
        acc.insert(assignment.name.clone(), out);
        units.push((assignment.name.clone(), plans));
    }
    let dict_sources: Vec<(String, String)> = shredded
        .structure
        .paths()
        .into_iter()
        .map(|path| {
            let name = shredded
                .dict_names
                .get(&path)
                .cloned()
                .unwrap_or_else(|| output_dict_name(&path));
            (path, name)
        })
        .collect();
    let unshred = strategy.unshreds();
    let result = assemble_from_env(&acc, &dict_sources, &shredded.structure, unshred, options)?;
    let prepared = PreparedQuery {
        strategy,
        kind: PreparedKind::Shredded {
            units,
            structure: shredded.structure.clone(),
            dict_sources,
            unshred,
        },
    };
    Ok((result, prepared))
}

/// Warm path: replays a [`PreparedQuery`]'s captured plans **verbatim** —
/// no lowering, no catalog work, no optimizer pass — over the current
/// inputs. With the shared kernel cache threaded through
/// `options.kernel_cache`, the fused pipelines reuse their compiled
/// programs too, so the run books zero plan- and expression-compile time.
pub fn run_prepared(
    prepared: &PreparedQuery,
    env: &HashMap<String, ColCollection>,
    shredded_env: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> trance_dist::Result<RunResult> {
    ctx.set_spill_session(options.spill);
    ctx.set_fault_session(options.faults);
    match &prepared.kind {
        PreparedKind::Standard { plans } => {
            let out = replay_plans(plans, env, ctx, options)?;
            Ok(RunResult::Nested(out.to_rows()?))
        }
        PreparedKind::Shredded {
            units,
            structure,
            dict_sources,
            unshred,
        } => {
            let mut acc = shredded_env.clone();
            for (name, plans) in units {
                let out = replay_plans(plans, &acc, ctx, options)?;
                acc.insert(name.clone(), out);
            }
            assemble_from_env(&acc, dict_sources, structure, *unshred, options)
        }
    }
}

/// Replays one captured program: every plan but the last materializes an
/// intermediate into a call-local environment under its captured name; the
/// last plan (the program root) produces the output.
fn replay_plans(
    plans: &CapturedPlans,
    inputs: &HashMap<String, ColCollection>,
    ctx: &DistContext,
    options: &ExecOptions,
) -> trance_dist::Result<ColCollection> {
    let (root, intermediates) = plans
        .split_last()
        .ok_or_else(|| ExecError::Other("prepared query holds no plans".into()))?;
    let mut env = inputs.clone();
    for (name, plan) in intermediates {
        let out = eval_plan_col(plan, &env, ctx, options)?;
        env.insert(name.clone(), out);
    }
    eval_plan_col(&root.1, &env, ctx, options)
}

/// Extracts the shredded outputs (top bag + dictionaries) out of an executed
/// environment and finishes them the way the strategy asks: unshred to
/// nested rows, or cross the shredded collections back to rows.
fn assemble_from_env(
    env: &HashMap<String, ColCollection>,
    dict_sources: &[(String, String)],
    structure: &NestingStructure,
    unshred: bool,
    options: &ExecOptions,
) -> trance_dist::Result<RunResult> {
    let top = env
        .get(TOP_BAG)
        .cloned()
        .ok_or_else(|| ExecError::Other("shredded program produced no TopBag".into()))?;
    let mut dicts = BTreeMap::new();
    for (path, name) in dict_sources {
        if let Some(d) = env.get(name) {
            dicts.insert(path.clone(), d.clone());
        }
    }
    if unshred {
        let nested = unshred_distributed_col(&top, &dicts, structure, options)?;
        return Ok(RunResult::Nested(nested.to_rows()?));
    }
    let mut row_dicts = BTreeMap::new();
    for (path, d) in dicts {
        row_dicts.insert(path, d.to_rows()?);
    }
    Ok(RunResult::Shredded(ShreddedOutput {
        top: top.to_rows()?,
        dicts: row_dicts,
        structure: structure.clone(),
    }))
}

/// The serving layer's plan-cache key for `spec` under `strategy` at a
/// given catalog `epoch`: structural fingerprints of the NRC program and
/// the nested-input declarations, combined with the strategy and the epoch.
/// Any catalog mutation bumps the epoch, so every cached plan compiled
/// against the old tables misses and re-prepares.
pub fn plan_cache_key(spec: &QuerySpec, strategy: Strategy, epoch: u64) -> u64 {
    trance_algebra::combine_fingerprints(&[
        trance_algebra::fingerprint(&spec.query),
        trance_algebra::fingerprint(&spec.nested_inputs),
        trance_algebra::fingerprint(&strategy),
        epoch,
    ])
}
