//! Vectorized evaluation of plan scalar expressions over columnar batches.
//!
//! [`eval_scalar_batch`] turns a `trance_algebra::ScalarExpr` into one output
//! [`Column`] per batch: arithmetic and comparisons run column-at-a-time over
//! dense `i64`/`f64`/`bool` buffers when the operands allow it, and fall back
//! to row-at-a-time value semantics (identical to `ScalarExpr::eval` over
//! tuples) whenever nulls, absent attributes or mixed kinds are involved —
//! so the columnar route can never disagree with the row route on a single
//! expression.

use std::sync::Arc;

use trance_algebra::ScalarExpr;
use trance_dist::{Batch, Bitmap, Column, Result};
use trance_nrc::{CmpOp, Label, NrcError, PrimOp, Value};

/// Evaluates `expr` against every row of `batch`, producing a column of
/// `batch.rows()` values (`Arc`-shared, so a plain column reference is a
/// pointer copy). A column absent from the batch evaluates to NULL — the
/// same outer-join convention as the row evaluator.
pub fn eval_scalar_batch(expr: &ScalarExpr, batch: &Batch) -> Result<Arc<Column>> {
    let n = batch.rows();
    Ok(match expr {
        ScalarExpr::Col(name) => match batch.column_arc(name) {
            Some(col) => col,
            None => Arc::new(Column::null_column(n)),
        },
        ScalarExpr::Const(v) => Arc::new(Column::from_const(v, n)),
        ScalarExpr::Prim { op, left, right } => {
            let l = eval_scalar_batch(left, batch)?;
            let r = eval_scalar_batch(right, batch)?;
            Arc::new(eval_prim(*op, &l, &r, n)?)
        }
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval_scalar_batch(left, batch)?;
            let r = eval_scalar_batch(right, batch)?;
            Arc::new(eval_cmp(*op, &l, &r, n))
        }
        // And/Or/Coalesce preserve the row evaluator's short-circuit: the
        // right operand is evaluated only over the rows that need it (as a
        // gathered sub-batch, so it stays vectorized). Evaluating it over
        // every row would surface errors — a guarded division, a
        // type-guarded operand — that the row route never hits.
        ScalarExpr::And(a, b) => {
            let a = eval_scalar_batch(a, batch)?;
            let mut out = if let Some(x) = a.dense_bools() {
                x.to_vec()
            } else {
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(bool_at_arc(&a, i)?);
                }
                v
            };
            let need: Vec<usize> = out
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.then_some(i))
                .collect();
            scatter_bools(b, batch, &need, &mut out)?;
            Arc::new(Column::from_bools(out))
        }
        ScalarExpr::Or(a, b) => {
            let a = eval_scalar_batch(a, batch)?;
            let mut out = if let Some(x) = a.dense_bools() {
                x.to_vec()
            } else {
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(bool_at_arc(&a, i)?);
                }
                v
            };
            let need: Vec<usize> = out
                .iter()
                .enumerate()
                .filter_map(|(i, t)| (!t).then_some(i))
                .collect();
            scatter_bools(b, batch, &need, &mut out)?;
            Arc::new(Column::from_bools(out))
        }
        ScalarExpr::Not(e) => {
            let c = eval_scalar_batch(e, batch)?;
            if let Some(x) = c.dense_bools() {
                Arc::new(Column::from_bools(x.iter().map(|b| !b).collect()))
            } else {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(!bool_at_arc(&c, i)?);
                }
                Arc::new(Column::from_bools(out))
            }
        }
        ScalarExpr::IsNull(e) => {
            let c = eval_scalar_batch(e, batch)?;
            Arc::new(Column::from_bools(
                (0..n)
                    .map(|i| matches!(value_at_arc(&c, i), Value::Null))
                    .collect(),
            ))
        }
        ScalarExpr::Coalesce(a, b) => {
            let a = eval_scalar_batch(a, batch)?;
            let need: Vec<usize> = (0..n)
                .filter(|i| matches!(value_at_arc(&a, *i), Value::Null))
                .collect();
            if need.is_empty() {
                a
            } else {
                let sub = eval_scalar_batch(b, &gather_for(b, batch, &need))?;
                let mut values: Vec<Value> = (0..n).map(|i| value_at_arc(&a, i)).collect();
                for (k, i) in need.iter().enumerate() {
                    values[*i] = value_at_arc(&sub, k);
                }
                Arc::new(Column::from_values(values))
            }
        }
        ScalarExpr::NewLabel { site, captures } => {
            let cols = captures
                .iter()
                .map(|(_, e)| eval_scalar_batch(e, batch))
                .collect::<Result<Vec<Arc<Column>>>>()?;
            let values: Vec<Value> = (0..n)
                .map(|i| {
                    Value::Label(Label::new(
                        *site,
                        cols.iter().map(|c| value_at_arc(c, i)).collect(),
                    ))
                })
                .collect();
            Arc::new(Column::from_values(values))
        }
        ScalarExpr::LabelCapture { label, index } => {
            let c = eval_scalar_batch(label, batch)?;
            let mut values = Vec::with_capacity(n);
            for i in 0..n {
                values.push(match value_at_arc(&c, i) {
                    Value::Null => Value::Null,
                    Value::Label(l) => l.values.get(*index).cloned().unwrap_or(Value::Null),
                    other => {
                        return Err(NrcError::TypeMismatch {
                            expected: "label".into(),
                            found: other.kind().into(),
                            context: "LabelCapture".into(),
                        }
                        .into())
                    }
                });
            }
            Arc::new(Column::from_values(values))
        }
    })
}

/// Evaluates a predicate expression into a per-row selection mask (NULL never
/// satisfies a predicate; a non-bool result is a type error, as in the row
/// engine).
pub fn eval_mask(expr: &ScalarExpr, batch: &Batch) -> Result<Vec<bool>> {
    let col = eval_scalar_batch(expr, batch)?;
    if let Some(b) = col.dense_bools() {
        return Ok(b.to_vec());
    }
    (0..batch.rows()).map(|i| bool_at_arc(&col, i)).collect()
}

/// The value of row `i` with absence collapsed to NULL (expression
/// semantics).
fn value_at(col: &Column, i: usize) -> Value {
    col.value_at(i).unwrap_or(Value::Null)
}

fn bool_at(col: &Column, i: usize) -> Result<bool> {
    Ok(value_at(col, i).as_bool()?)
}

/// Row-value access through the shared handle.
fn value_at_arc(col: &Arc<Column>, i: usize) -> Value {
    value_at(col.as_ref(), i)
}

fn bool_at_arc(col: &Arc<Column>, i: usize) -> Result<bool> {
    bool_at(col.as_ref(), i)
}

/// Short-circuit helper: evaluates `expr` over only the `need` rows of
/// `batch` (as a gathered sub-batch) and scatters the boolean results into
/// `out`.
fn scatter_bools(expr: &ScalarExpr, batch: &Batch, need: &[usize], out: &mut [bool]) -> Result<()> {
    if need.is_empty() {
        return Ok(());
    }
    let sub = eval_scalar_batch(expr, &gather_for(expr, batch, need))?;
    for (k, i) in need.iter().enumerate() {
        out[*i] = bool_at_arc(&sub, k)?;
    }
    Ok(())
}

/// Gathers only the columns `expr` references (a missing referenced column
/// evaluates to NULL either way), so short-circuit sub-evaluation never pays
/// for the batch's unrelated columns.
fn gather_for(expr: &ScalarExpr, batch: &Batch, need: &[usize]) -> Batch {
    let cols: Vec<String> = expr.referenced_columns().into_iter().collect();
    batch.project_fields(&cols).take(need)
}

/// A dense (no-null, no-absent) integer column.
fn dense_int_col(data: Vec<i64>) -> Column {
    let n = data.len();
    Column::Int {
        data,
        nulls: Bitmap::zeros(n),
        absent: Bitmap::zeros(n),
    }
}

/// A dense real column.
fn dense_real_col(data: Vec<f64>) -> Column {
    let n = data.len();
    Column::Real {
        data,
        nulls: Bitmap::zeros(n),
        absent: Bitmap::zeros(n),
    }
}

fn eval_prim(op: PrimOp, l: &Column, r: &Column, n: usize) -> Result<Column> {
    // Dense integer fast path, writing the typed buffer directly — no boxing
    // through `Value` (Div always widens to real, like the row path).
    if let (Some(a), Some(b)) = (l.dense_ints(), r.dense_ints()) {
        match op {
            PrimOp::Add => return Ok(dense_int_col(a.iter().zip(b).map(|(x, y)| x + y).collect())),
            PrimOp::Sub => return Ok(dense_int_col(a.iter().zip(b).map(|(x, y)| x - y).collect())),
            PrimOp::Mul => return Ok(dense_int_col(a.iter().zip(b).map(|(x, y)| x * y).collect())),
            PrimOp::Div => {}
        }
    }
    // Dense real fast path (either side may be a dense int, widened at the
    // read — the operand buffers are borrowed, never copied).
    enum NumView<'a> {
        I(&'a [i64]),
        R(&'a [f64]),
    }
    impl NumView<'_> {
        fn get(&self, i: usize) -> f64 {
            match self {
                NumView::I(x) => x[i] as f64,
                NumView::R(x) => x[i],
            }
        }
    }
    fn view(c: &Column) -> Option<NumView<'_>> {
        c.dense_reals()
            .map(NumView::R)
            .or_else(|| c.dense_ints().map(NumView::I))
    }
    if let (Some(a), Some(b)) = (view(l), view(r)) {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (a.get(i), b.get(i));
            out.push(match op {
                PrimOp::Add => x + y,
                PrimOp::Sub => x - y,
                PrimOp::Mul => x * y,
                PrimOp::Div => {
                    if y == 0.0 {
                        return Err(NrcError::DivisionByZero.into());
                    }
                    x / y
                }
            });
        }
        return Ok(dense_real_col(out));
    }
    // Row-wise fallback: exact `ScalarExpr::eval` semantics.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lv = value_at(l, i);
        let rv = value_at(r, i);
        out.push(if matches!(lv, Value::Null) || matches!(rv, Value::Null) {
            Value::Null
        } else {
            match op {
                PrimOp::Add if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? + rv.as_int()?)
                }
                PrimOp::Sub if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? - rv.as_int()?)
                }
                PrimOp::Mul if matches!((&lv, &rv), (Value::Int(_), Value::Int(_))) => {
                    Value::Int(lv.as_int()? * rv.as_int()?)
                }
                PrimOp::Add => Value::Real(lv.as_real()? + rv.as_real()?),
                PrimOp::Sub => Value::Real(lv.as_real()? - rv.as_real()?),
                PrimOp::Mul => Value::Real(lv.as_real()? * rv.as_real()?),
                PrimOp::Div => {
                    let d = rv.as_real()?;
                    if d == 0.0 {
                        return Err(NrcError::DivisionByZero.into());
                    }
                    Value::Real(lv.as_real()? / d)
                }
            }
        });
    }
    Ok(Column::from_values(out))
}

fn eval_cmp(op: CmpOp, l: &Column, r: &Column, n: usize) -> Column {
    if let (Some(a), Some(b)) = (l.dense_ints(), r.dense_ints()) {
        return Column::from_bools(a.iter().zip(b).map(|(x, y)| op.eval(x.cmp(y))).collect());
    }
    // Row-wise comparison through `Value::cmp` (which already normalizes
    // int/real mixes and NaN); NULL on either side compares false.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lv = value_at(l, i);
        let rv = value_at(r, i);
        out.push(if matches!(lv, Value::Null) || matches!(rv, Value::Null) {
            false
        } else {
            op.eval(lv.cmp(&rv))
        });
    }
    Column::from_bools(out)
}
