//! Chaos differential suite: under **seeded, deterministic fault injection**
//! at every site (morsel execution, spill read/write, shuffle delivery,
//! worker startup), every run must either match the fault-free oracle after
//! recovery or return a **typed** error within its deadline — never a hang,
//! never a silently wrong answer, never a leaked spill file. The fault
//! schedules are pure functions of their seeds, so every failure here
//! reproduces byte-for-byte.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{
    collect_unshredded, run_query_bounded, run_query_repr, InputSet, QuerySpec, RunOutcome,
    RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext, FaultPlan, FaultSite};
use trance_nrc::{eval, Bag, Env, Value};
use trance_shred::{NestingStructure, ShreddedInputDecl};

mod common;
use common::{assert_bags_approx_eq, random_flat, random_nested, random_query, Watchdog};

/// Generous per-run deadline: the contract is "typed result before this
/// fires", so it only bites when recovery livelocks — which is exactly the
/// bug it exists to surface (backed up by the process-level watchdog).
const RUN_DEADLINE: Duration = Duration::from_secs(120);

/// A cluster armed with `plan`. `capped` additionally enables the spill
/// subsystem under a tight memory cap so the `spill_read` / `spill_write`
/// injection sites actually execute. The worker count is pinned (like the
/// scheduler-stress suite, this suite *is* its own matrix): a 1-worker pool
/// spawns no threads, so honouring `TRANCE_WORKERS=1` would make the
/// `worker_start` site unreachable and the schedules non-reproducible.
fn chaos_ctx(plan: FaultPlan, capped: bool) -> DistContext {
    let mut cfg = ClusterConfig::new(3, 8)
        .with_broadcast_limit(64)
        .with_faults(plan);
    if capped {
        cfg = cfg.with_worker_memory(2 * 1024).with_spill();
    }
    DistContext::new(cfg)
}

fn outcome_bag(result: &RunResult, context: &str) -> Bag {
    match result {
        RunResult::Nested(d) => d.collect_bag(),
        RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
        RunResult::Failed(e) => panic!("{context}: run failed: {e}"),
    }
}

/// Builds the seeded random program `seed` together with its sequential
/// reference result (the same generator and seeds as the other differential
/// suites, so a chaos failure cross-references directly).
fn random_case(seed: u64) -> (QuerySpec, Vec<(&'static str, Value, bool)>, Bag) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + seed);
    let r_rows = rng.gen_range(5..40usize);
    let s_rows = rng.gen_range(5..30usize);
    let n_rows = rng.gen_range(3..20usize);
    let r = random_flat(&mut rng, r_rows, 8);
    let s = random_flat(&mut rng, s_rows, 8);
    let n = random_nested(&mut rng, n_rows, 8);
    let query = random_query(&mut rng);
    let env = Env::from_bindings([("R", r.clone()), ("S", s.clone()), ("N", n.clone())]);
    let expected = eval(&query, &env).unwrap().into_bag().unwrap();
    let n_structure = NestingStructure::flat().with_child("items", NestingStructure::flat());
    let spec = QuerySpec::new(
        format!("chaos-{seed}"),
        query,
        vec![ShreddedInputDecl::new("N", n_structure)],
    );
    (
        spec,
        vec![("R", r, false), ("S", s, false), ("N", n, true)],
        expected,
    )
}

fn input_set(ctx: DistContext, values: &[(&'static str, Value, bool)]) -> InputSet {
    let mut inputs = InputSet::new(ctx);
    for (name, v, nested) in values {
        if *nested {
            inputs
                .add_nested(name, v.as_bag().unwrap().clone())
                .unwrap();
        } else {
            inputs.add_flat(name, v.as_bag().unwrap().clone()).unwrap();
        }
    }
    inputs
}

#[test]
fn seeded_fault_schedules_recover_or_fail_typed_on_every_strategy_and_repr() {
    let _watchdog = Watchdog::arm("chaos::seeded_fault_schedules", Duration::from_secs(600));
    // Accumulated per-site fire counts across the whole suite: the schedules
    // must collectively exercise every injection point.
    let mut fired = [0u64; FaultSite::ALL.len()];
    let mut recovered_runs = 0u64;
    let mut typed_failures = 0u64;
    for seed in 0..24u64 {
        let (spec, values, expected) = random_case(seed);
        // Odd seeds run memory-capped with spilling on, so the spill
        // read/write sites execute; even seeds run in-memory.
        let capped = seed % 2 == 1;
        let inputs = input_set(chaos_ctx(FaultPlan::seeded(seed), capped), &values);
        let ctx = inputs.context().clone();

        // The fault-free oracle side: same cluster, injector suppressed for
        // the run. It must match the sequential reference and inject nothing.
        let oracle = run_query_bounded(&spec, &inputs, Strategy::Standard, false, None);
        assert_eq!(
            oracle.stats.faults_injected, 0,
            "seed {seed}: a faults-off run must not inject"
        );
        let oracle_bag = outcome_bag(&oracle.result, &format!("seed {seed} faults-off oracle"));
        assert_bags_approx_eq(
            &expected,
            &oracle_bag,
            &format!("seed {seed}: faults-off oracle vs sequential reference"),
        );

        for strategy in Strategy::all() {
            for columnar in [true, false] {
                let repr = if columnar { "columnar" } else { "row" };
                let outcome = run_faulted(&spec, &inputs, strategy, columnar);
                recovered_runs +=
                    u64::from(outcome.stats.retries > 0 || outcome.stats.recovered_partitions > 0);
                match &outcome.result {
                    RunResult::Failed(e) => {
                        // A surviving failure must be typed — retry
                        // exhaustion, memory, or cancellation — and the
                        // injector must actually have been the cause class
                        // the taxonomy claims.
                        assert!(
                            e.is_retryable() || e.is_fatal() || e.is_cancelled(),
                            "seed {seed} {} {repr}: untyped failure {e}",
                            strategy.label()
                        );
                        typed_failures += 1;
                    }
                    other => {
                        let produced =
                            outcome_bag(other, &format!("seed {seed} {} {repr}", strategy.label()));
                        assert_bags_approx_eq(
                            &expected,
                            &produced,
                            &format!(
                                "seed {seed} {} {repr}: faulted run after recovery vs reference",
                                strategy.label()
                            ),
                        );
                    }
                }
            }
        }

        let injector = ctx.faults().expect("chaos cluster has an injector");
        for site in FaultSite::ALL {
            fired[site.index()] += injector.fired(site);
        }

        // No spill file may survive the runs' collections (the oracle
        // outcome holds a distributed collection, so it must go too).
        if let Some(dir) = ctx.spill_dir() {
            drop(oracle);
            drop(inputs);
            assert_eq!(
                std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
                0,
                "seed {seed}: spill files leaked under fault injection"
            );
            drop(ctx);
            assert!(!dir.exists(), "seed {seed}: spill dir survived the context");
        }
    }
    for site in FaultSite::ALL {
        assert!(
            fired[site.index()] > 0,
            "the 24 schedules never exercised the `{site}` injection point"
        );
    }
    assert!(
        recovered_runs > 0,
        "no run ever retried or recovered — injection is not reaching execution"
    );
    // Typed failures are allowed but must stay the exception: recovery is
    // supposed to absorb the default fault rates almost always.
    let total_runs = 24 * Strategy::all().len() as u64 * 2;
    assert!(
        typed_failures < total_runs / 4,
        "{typed_failures}/{total_runs} faulted runs failed — recovery is not absorbing faults"
    );
}

/// One faulted run under the chaos deadline. The bounded entry runs the
/// columnar representation; row-representation runs go through the repr
/// entry (faults on by default) with the process watchdog as their hang
/// guard instead of a per-run deadline.
fn run_faulted(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    columnar: bool,
) -> RunOutcome {
    if columnar {
        run_query_bounded(spec, inputs, strategy, true, Some(RUN_DEADLINE))
    } else {
        run_query_repr(spec, inputs, strategy, false)
    }
}

#[test]
fn targeted_one_shot_bursts_force_lineage_recovery_deterministically() {
    let _watchdog = Watchdog::arm("chaos::one_shot_bursts", Duration::from_secs(600));
    let (spec, values, expected) = random_case(3);
    // A quiet plan except for one burst of morsel faults long enough to
    // exhaust the bounded per-task retries (initial attempt + MAX_TASK_RETRIES
    // redraws), so the task fails and the partition must be recomputed from
    // its source — the lineage path, pinned to exact draw indices.
    let plan = FaultPlan::quiet(7).with_burst(FaultSite::Morsel, 0, 1 + 3);
    let inputs = input_set(chaos_ctx(plan, false), &values);
    for strategy in [Strategy::Standard, Strategy::Shred] {
        let outcome = run_query_bounded(&spec, &inputs, strategy, true, Some(RUN_DEADLINE));
        let produced = outcome_bag(&outcome.result, &format!("one-shot {}", strategy.label()));
        assert_bags_approx_eq(
            &expected,
            &produced,
            &format!("one-shot burst {}: recovery vs reference", strategy.label()),
        );
    }
    let injector = inputs.context().faults().unwrap();
    assert!(
        injector.fired(FaultSite::Morsel) >= 4,
        "the pinned burst must have fired all four morsel faults"
    );
}

#[test]
fn deadline_cancellation_races_mid_spill_without_leaks_and_oracle_unaffected() {
    let _watchdog = Watchdog::arm("chaos::cancellation", Duration::from_secs(600));
    let (spec, values, expected) = random_case(5);
    // Quiet injector: this test is about cancellation, not faults — but the
    // cluster is capped with spilling on so cancellation lands mid-spill.
    let inputs = input_set(chaos_ctx(FaultPlan::quiet(0), true), &values);
    let ctx = inputs.context().clone();

    // A zero deadline fires at the first morsel/frame boundary check:
    // deterministic cancellation, typed error, `cancelled` stat set.
    let outcome = run_query_bounded(
        &spec,
        &inputs,
        Strategy::Standard,
        false,
        Some(Duration::ZERO),
    );
    match &outcome.result {
        RunResult::Failed(e) => assert!(
            e.is_cancelled(),
            "zero deadline must surface as Cancelled, got: {e}"
        ),
        _ => panic!("zero deadline must cancel the run"),
    }
    assert_eq!(outcome.stats.cancelled, 1, "the cancelled stat must be set");

    // Cross-thread cancellation racing the run mid-spill / mid-shuffle: the
    // canceller sweeps its delay across iterations so the cancel lands at
    // different pipeline stages. Every iteration must end in a typed
    // Cancelled error or a clean completion matching the reference — and
    // never leak a spill file.
    for delay_us in [0u64, 50, 200, 800, 3200] {
        let token = ctx.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay_us));
            token.cancel("chaos test canceller");
        });
        let outcome = run_query_bounded(&spec, &inputs, Strategy::Baseline, false, None);
        canceller.join().unwrap();
        match &outcome.result {
            RunResult::Failed(e) => assert!(
                e.is_cancelled(),
                "racing cancel at {delay_us}µs: non-cancellation failure {e}"
            ),
            other => {
                // Cancel lost the race (fired before the run reset its
                // token, or after completion): the result must be untouched.
                let produced = outcome_bag(other, &format!("racing cancel at {delay_us}µs"));
                assert_bags_approx_eq(
                    &expected,
                    &produced,
                    &format!("racing cancel at {delay_us}µs: completed run vs reference"),
                );
            }
        }
        if let Some(dir) = ctx.spill_dir() {
            assert_eq!(
                std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
                0,
                "racing cancel at {delay_us}µs: spill files leaked"
            );
        }
    }

    // The same context stays healthy after cancellations: a fresh staged
    // oracle run completes and matches the reference.
    let oracle = run_query_bounded(&spec, &inputs, Strategy::Standard, false, None);
    let oracle_bag = outcome_bag(&oracle.result, "post-cancel oracle");
    assert_bags_approx_eq(&expected, &oracle_bag, "post-cancel oracle vs reference");
    assert_eq!(oracle.stats.cancelled, 0);

    // Spill teardown still holds after the cancellation storm.
    if let Some(dir) = ctx.spill_dir() {
        drop(inputs);
        assert_eq!(
            std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
            0,
            "spill files leaked after the cancellation storm"
        );
        drop(ctx);
        assert!(!dir.exists());
    }
}
