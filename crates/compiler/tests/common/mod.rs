//! Helpers shared by the differential test suites (`strategies_agree.rs`,
//! `spill_agree.rs`, `scheduler_stress.rs` and `chaos.rs`): the paper's
//! running example, the seeded-random NRC program generator, the
//! (float-tolerant) canonical bag comparison, and the wall-clock watchdog
//! that turns a hung differential suite into a loud abort.

// Each test binary compiles this module separately and uses the subset of
// helpers it needs.
#![allow(dead_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;
use trance_nrc::builder::*;
use trance_nrc::{Bag, Expr, Value};
use trance_shred::NestingStructure;

/// A wall-clock watchdog for the long differential suites: if the owning
/// test has not disarmed it (by dropping it) within `limit`, the process
/// aborts with a message naming the suite — a hang becomes a loud, fast CI
/// failure instead of a silent timeout an hour later. The fault-tolerance
/// contract is "typed error or matching result, never a hang", so the
/// watchdog is itself part of what the chaos suite proves.
pub struct Watchdog {
    armed: Arc<AtomicBool>,
}

impl Watchdog {
    /// Arms a watchdog that aborts the process after `limit` unless dropped
    /// first.
    pub fn arm(label: &str, limit: Duration) -> Watchdog {
        let armed = Arc::new(AtomicBool::new(true));
        let flag = armed.clone();
        let label = label.to_string();
        std::thread::spawn(move || {
            let start = Instant::now();
            while start.elapsed() < limit {
                std::thread::sleep(Duration::from_millis(100));
                if !flag.load(Ordering::Relaxed) {
                    return;
                }
            }
            if flag.load(Ordering::Relaxed) {
                eprintln!(
                    "watchdog: `{label}` still running after {:.0}s — aborting (a fault-tolerance \
                     bug that hangs must fail loudly, not eat the CI timeout)",
                    limit.as_secs_f64()
                );
                std::process::abort();
            }
        });
        Watchdog { armed }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.armed.store(false, Ordering::Relaxed);
    }
}

/// The customers/orders/parts nested input of the running example.
pub fn cop_value(customers: usize) -> Value {
    let mut rows = Vec::new();
    for c in 0..customers {
        let mut orders = Vec::new();
        for o in 0..(c % 4) {
            let mut parts = Vec::new();
            for p in 0..(o + c) % 5 {
                parts.push(Value::tuple([
                    ("pid", Value::Int((p % 7) as i64)),
                    ("qty", Value::Real(1.0 + p as f64)),
                ]));
            }
            orders.push(Value::tuple([
                ("odate", Value::Date(100 + o as i64)),
                ("oparts", Value::bag(parts)),
            ]));
        }
        rows.push(Value::tuple([
            ("cname", Value::str(format!("c{c}"))),
            ("corders", Value::bag(orders)),
        ]));
    }
    Value::bag(rows)
}

/// The flat `Part` side of the running example.
pub fn part_value() -> Value {
    Value::bag(
        (0..7)
            .map(|p| {
                Value::tuple([
                    ("pid", Value::Int(p)),
                    ("pname", Value::str(format!("part{p}"))),
                    ("price", Value::Real(0.5 + p as f64)),
                ])
            })
            .collect(),
    )
}

/// The nesting structure of [`cop_value`].
pub fn cop_structure() -> NestingStructure {
    NestingStructure::flat().with_child(
        "corders",
        NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
    )
}

/// The paper's running example query (nested output, join + aggregation at
/// the innermost level).
pub fn running_example() -> Expr {
    forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    )
}

/// Canonicalizes nested rows for comparison — the shared
/// `trance_nrc::compare` definition (bags and tuple fields sort
/// recursively), so the tests and the benchmark harness's oracle checks use
/// one comparator.
pub fn canonical(bag: &Bag) -> Vec<Value> {
    trance_nrc::canonical_rows(bag)
}

/// Panics unless the two bags are multiset-equal up to float tolerance
/// (distributed aggregation sums reals in a different order than the
/// sequential reference evaluator).
pub fn assert_bags_approx_eq(expected: &Bag, produced: &Bag, context: &str) {
    let e = canonical(expected);
    let p = canonical(produced);
    assert_eq!(e.len(), p.len(), "{context}: cardinality mismatch");
    for (ev, pv) in e.iter().zip(p.iter()) {
        assert!(
            trance_nrc::approx_eq(ev, pv),
            "{context}: rows differ beyond float tolerance\n  expected: {ev:?}\n  produced: {pv:?}"
        );
    }
}

/// The small string vocabulary of [`random_flat`]'s `s` field — few distinct
/// values over many rows, so dictionary-encoded predicates have codes to
/// reuse.
pub const STR_VOCAB: [&str; 5] = ["red", "green", "blue", "amber", "teal"];

/// Random flat relation `R(a, b, c, s)` (ints, reals and low-cardinality
/// strings, with duplicate keys so joins and groupings hit multiplicities).
pub fn random_flat(rng: &mut StdRng, rows: usize, key_space: i64) -> Value {
    Value::bag(
        (0..rows)
            .map(|_| {
                Value::tuple([
                    ("a", Value::Int(rng.gen_range(0..key_space))),
                    ("b", Value::Int(rng.gen_range(-5..50))),
                    ("c", Value::Real(rng.gen_range(0.0..10.0))),
                    (
                        "s",
                        Value::str(STR_VOCAB[rng.gen_range(0..STR_VOCAB.len())]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Random nested relation `N(key, name, items: {(ik, iv)})`, some item bags
/// empty so outer-regrouping paths are exercised.
pub fn random_nested(rng: &mut StdRng, rows: usize, key_space: i64) -> Value {
    Value::bag(
        (0..rows)
            .map(|i| {
                let n_items = rng.gen_range(0..5usize);
                let items: Vec<Value> = (0..n_items)
                    .map(|_| {
                        Value::tuple([
                            ("ik", Value::Int(rng.gen_range(0..key_space))),
                            ("iv", Value::Real(rng.gen_range(0.0..4.0))),
                        ])
                    })
                    .collect();
                Value::tuple([
                    ("key", Value::Int(i as i64 % key_space)),
                    ("name", Value::str(format!("n{i}"))),
                    ("items", Value::bag(items)),
                ])
            })
            .collect(),
    )
}

/// Random flat relation `RN(a, b, c, s, m)` with **awkward operands**: `b`
/// is sometimes NULL, `s` is sometimes absent (the tuple lacks the
/// attribute), and `m` mixes integer and real lanes so its column falls off
/// every dense fast path. Used by the expression-differential suite, whose
/// oracle is the *interpreted plan route* — not the sequential reference,
/// whose comparison semantics on NULL differ by design.
pub fn random_flat_nullable(rng: &mut StdRng, rows: usize, key_space: i64) -> Value {
    Value::bag(
        (0..rows)
            .map(|_| {
                let b = if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(-5..50))
                };
                let m = if rng.gen_bool(0.5) {
                    Value::Int(rng.gen_range(-3..30))
                } else {
                    Value::Real(rng.gen_range(-3.0..30.0))
                };
                let mut fields = vec![
                    ("a", Value::Int(rng.gen_range(0..key_space))),
                    ("b", b),
                    ("c", Value::Real(rng.gen_range(0.5..10.0))),
                    ("m", m),
                ];
                if !rng.gen_bool(0.2) {
                    fields.push((
                        "s",
                        Value::str(STR_VOCAB[rng.gen_range(0..STR_VOCAB.len())]),
                    ));
                }
                Value::tuple(fields)
            })
            .collect(),
    )
}

/// A random scalar expression over the fields of `x` (no division — the
/// generator must not manufacture runtime errors).
fn random_scalar(rng: &mut StdRng, var: &str) -> Expr {
    match rng.gen_range(0..4u32) {
        0 => proj(trance_nrc::builder::var(var), "a"),
        1 => proj(trance_nrc::builder::var(var), "b"),
        2 => add(
            proj(trance_nrc::builder::var(var), "a"),
            proj(trance_nrc::builder::var(var), "b"),
        ),
        _ => mul(
            proj(trance_nrc::builder::var(var), "c"),
            Expr::Const(Value::Real(rng.gen_range(0.5..2.0))),
        ),
    }
}

/// A random filter over `x` (comparisons only — NULL-safe by construction).
fn random_predicate(rng: &mut StdRng, var: &str) -> Expr {
    let field = if rng.gen_bool(0.5) { "a" } else { "b" };
    let bound = Value::Int(rng.gen_range(0..20));
    let lhs = proj(trance_nrc::builder::var(var), field);
    if rng.gen_bool(0.5) {
        cmp_lt(lhs, Expr::Const(bound))
    } else {
        cmp_eq(lhs, Expr::Const(bound))
    }
}

/// One random NRC query over `R`, `S` (flat) and `N` (nested).
pub fn random_query(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..6u32) {
        // Filter + project.
        0 => forin(
            "x",
            var("R"),
            ifthen(
                random_predicate(rng, "x"),
                singleton(tuple([
                    ("u", random_scalar(rng, "x")),
                    ("v", proj(var("x"), "c")),
                ])),
            ),
        ),
        // Equi-join with a residual predicate.
        1 => forin(
            "x",
            var("R"),
            forin(
                "y",
                var("S"),
                ifthen(
                    and(
                        cmp_eq(proj(var("x"), "a"), proj(var("y"), "a")),
                        random_predicate(rng, "y"),
                    ),
                    singleton(tuple([
                        ("u", random_scalar(rng, "x")),
                        ("w", proj(var("y"), "c")),
                    ])),
                ),
            ),
        ),
        // Aggregation over a join.
        2 => sum_by(
            forin(
                "x",
                var("R"),
                forin(
                    "y",
                    var("S"),
                    ifthen(
                        cmp_eq(proj(var("x"), "a"), proj(var("y"), "a")),
                        singleton(tuple([
                            ("k", proj(var("x"), "b")),
                            ("total", mul(proj(var("x"), "c"), proj(var("y"), "c"))),
                        ])),
                    ),
                ),
            ),
            &["k"],
            &["total"],
        ),
        // Nested output: navigate the nested input, join the flat side at the
        // inner level, regroup.
        3 => forin(
            "n",
            var("N"),
            singleton(tuple([
                ("name", proj(var("n"), "name")),
                (
                    "stuff",
                    forin(
                        "i",
                        proj(var("n"), "items"),
                        forin(
                            "y",
                            var("S"),
                            ifthen(
                                cmp_eq(proj(var("i"), "ik"), proj(var("y"), "a")),
                                singleton(tuple([
                                    ("ik", proj(var("i"), "ik")),
                                    ("score", mul(proj(var("i"), "iv"), proj(var("y"), "c"))),
                                ])),
                            ),
                        ),
                    ),
                ),
            ])),
        ),
        // Grouping into bags.
        4 => group_by(
            forin(
                "x",
                var("R"),
                ifthen(
                    random_predicate(rng, "x"),
                    singleton(tuple([
                        ("k", proj(var("x"), "a")),
                        ("p", proj(var("x"), "b")),
                    ])),
                ),
            ),
            &["k"],
            "grp",
        ),
        // Union of two filtered branches.
        _ => Expr::Union(
            Box::new(forin(
                "x",
                var("R"),
                ifthen(
                    random_predicate(rng, "x"),
                    singleton(tuple([("u", proj(var("x"), "a"))])),
                ),
            )),
            Box::new(forin(
                "x",
                var("R"),
                ifthen(
                    random_predicate(rng, "x"),
                    singleton(tuple([("u", proj(var("x"), "b"))])),
                ),
            )),
        ),
    }
}

// ---------------------------------------------------------------------------
// Expression-heavy generator (the expr_agree differential corpus)
// ---------------------------------------------------------------------------

/// A random numeric scalar over `x`'s awkward fields (`a`, `b`-nullable,
/// `c`, `m`-mixed) — recursive add/sub/mul nests plus constants, never
/// division (the generator must not manufacture runtime errors).
pub fn random_deep_scalar(rng: &mut StdRng, var_name: &str, depth: usize) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0..6u32) {
            0 => proj(var(var_name), "a"),
            1 => proj(var(var_name), "b"),
            2 => proj(var(var_name), "c"),
            3 => proj(var(var_name), "m"),
            4 => int(rng.gen_range(-4..10)),
            _ => real(rng.gen_range(0.5..3.0)),
        };
    }
    let l = random_deep_scalar(rng, var_name, depth - 1);
    let r = random_deep_scalar(rng, var_name, depth - 1);
    match rng.gen_range(0..3u32) {
        0 => add(l, r),
        1 => sub(l, r),
        _ => mul(l, r),
    }
}

/// A random deep predicate over `x`: And/Or/Not nests whose leaves compare
/// arithmetic nests, nullable and mixed-kind fields, and the sometimes-absent
/// string field `s` against vocabulary constants.
pub fn random_deep_predicate(rng: &mut StdRng, var_name: &str, depth: usize) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0..5u32) {
            0 => cmp_lt(
                random_deep_scalar(rng, var_name, 1),
                random_deep_scalar(rng, var_name, 1),
            ),
            1 => cmp_ge(proj(var(var_name), "b"), int(rng.gen_range(0..20))),
            2 => cmp_eq(
                proj(var(var_name), "s"),
                string(STR_VOCAB[rng.gen_range(0..STR_VOCAB.len())]),
            ),
            3 => cmp_ne(
                proj(var(var_name), "s"),
                string(STR_VOCAB[rng.gen_range(0..STR_VOCAB.len())]),
            ),
            _ => cmp_gt(proj(var(var_name), "m"), real(rng.gen_range(0.0..20.0))),
        };
    }
    let l = random_deep_predicate(rng, var_name, depth - 1);
    match rng.gen_range(0..3u32) {
        0 => and(l, random_deep_predicate(rng, var_name, depth - 1)),
        1 => or(l, random_deep_predicate(rng, var_name, depth - 1)),
        _ => not(l),
    }
}

/// One random **expression-heavy** NRC query over `RN` (awkward flat input:
/// NULL `b` lanes, absent `s` lanes, mixed-kind `m`), `S` (clean flat) and
/// `N` (nested). The shapes stack deep scalar/predicate nests onto
/// select/extend/project chains so the compiled kernel route and the
/// interpreted route disagree loudly on any semantic drift.
pub fn random_expr_query(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..4u32) {
        // Deep filter + computed projection off the awkward relation.
        0 => forin(
            "x",
            var("RN"),
            ifthen(
                random_deep_predicate(rng, "x", 2),
                singleton(tuple([
                    ("u", random_deep_scalar(rng, "x", 2)),
                    ("v", random_deep_scalar(rng, "x", 1)),
                    ("is_red", cmp_eq(proj(var("x"), "s"), string(STR_VOCAB[0]))),
                ])),
            ),
        ),
        // Join with a deep residual predicate on both sides.
        1 => forin(
            "x",
            var("RN"),
            forin(
                "y",
                var("S"),
                ifthen(
                    and(
                        cmp_eq(proj(var("x"), "a"), proj(var("y"), "a")),
                        and(
                            random_deep_predicate(rng, "x", 1),
                            random_deep_predicate(rng, "y", 1),
                        ),
                    ),
                    singleton(tuple([
                        ("u", random_deep_scalar(rng, "x", 2)),
                        ("w", proj(var("y"), "c")),
                        ("tag", proj(var("y"), "s")),
                    ])),
                ),
            ),
        ),
        // Nested output with deep inner predicates: the lowered plans carry
        // label-building extends between the selects.
        2 => forin(
            "n",
            var("N"),
            singleton(tuple([
                ("name", proj(var("n"), "name")),
                (
                    "picks",
                    forin(
                        "i",
                        proj(var("n"), "items"),
                        forin(
                            "y",
                            var("S"),
                            ifthen(
                                and(
                                    cmp_eq(proj(var("i"), "ik"), proj(var("y"), "a")),
                                    random_deep_predicate(rng, "y", 1),
                                ),
                                singleton(tuple([
                                    ("ik", proj(var("i"), "ik")),
                                    (
                                        "score",
                                        mul(proj(var("i"), "iv"), random_deep_scalar(rng, "y", 1)),
                                    ),
                                ])),
                            ),
                        ),
                    ),
                ),
            ])),
        ),
        // Union of two deep-filtered branches over the same scan.
        _ => union(
            forin(
                "x",
                var("RN"),
                ifthen(
                    random_deep_predicate(rng, "x", 2),
                    singleton(tuple([("u", random_deep_scalar(rng, "x", 1))])),
                ),
            ),
            forin(
                "x",
                var("RN"),
                ifthen(
                    random_deep_predicate(rng, "x", 2),
                    singleton(tuple([("u", random_deep_scalar(rng, "x", 1))])),
                ),
            ),
        ),
    }
}

// ---------------------------------------------------------------------------
// front-end round-trip fuzzing
// ---------------------------------------------------------------------------

/// Asserts the front-end round-trip law `parse(pretty(e)) == e` and returns
/// the re-parsed expression (structurally equal to `e`, but produced by the
/// text path — feed it to the pipeline for differential runs).
pub fn assert_round_trips(e: &Expr, context: &str) -> Expr {
    let text = trance_nrc::pretty::pretty(e);
    match trance_frontend::parse_expr(&text) {
        Ok(parsed) => {
            assert_eq!(
                &parsed, e,
                "{context}: parse(pretty(e)) != e for program:\n{text}"
            );
            parsed
        }
        Err(err) => panic!(
            "{context}: pretty output failed to re-parse:\n{text}\n--- diagnostic ---\n{err}"
        ),
    }
}

/// Reads a `u64` knob from the environment (trimmed), falling back to
/// `default` on absence or junk — fuzz suites must never panic on a bad
/// knob, they just run the default corpus.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.trim().parse::<u64>().unwrap_or_else(|_| {
            eprintln!("{name}={v:?} is not a number; using default {default}");
            default
        }),
        Err(_) => default,
    }
}
