//! Compiled-kernel vs interpreter differential suite: the register-based
//! expression kernels ([`trance_compiler::kernel`]) must agree with the
//! tree-walking interpreter ([`trance_compiler::vector`]) — **exactly**, not
//! approximately — on a seeded corpus of expression-heavy queries over
//! awkward inputs (NULL lanes, absent attributes, mixed-kind columns,
//! dictionary strings), across every compilation strategy and both physical
//! representations. Both routes run the same optimized plans over the same
//! partitions, so their logical *and* physical shuffle byte accounting must
//! also be identical: the kernels are a pure evaluation-strategy change.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use trance_compiler::{
    collect_unshredded, run_query_expr, InputSet, QuerySpec, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::{Bag, Value};
use trance_shred::{NestingStructure, ShreddedInputDecl};

mod common;
use common::{
    canonical, random_expr_query, random_flat, random_flat_nullable, random_nested, Watchdog,
};

fn ctx() -> DistContext {
    // `TRANCE_WORKERS` overrides the worker count (the CI matrix knob): the
    // kernels must agree with the interpreter at any pool size.
    DistContext::new(
        ClusterConfig::new(3, 8)
            .with_broadcast_limit(64)
            .with_env_workers(),
    )
}

fn outcome_bag(result: &RunResult, context: &str) -> Bag {
    match result {
        RunResult::Nested(d) => d.collect_bag(),
        RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
        RunResult::Failed(e) => panic!("{context} failed: {e}"),
    }
}

fn random_case(seed: u64) -> (QuerySpec, Vec<(&'static str, Value, bool)>) {
    let mut rng = StdRng::seed_from_u64(0xE1_0000 + seed);
    let rn_rows = rng.gen_range(15..40usize);
    let s_rows = rng.gen_range(10..30usize);
    let n_rows = rng.gen_range(3..15usize);
    let rn = random_flat_nullable(&mut rng, rn_rows, 8);
    let s = random_flat(&mut rng, s_rows, 8);
    let n = random_nested(&mut rng, n_rows, 8);
    let query = random_expr_query(&mut rng);
    let n_structure = NestingStructure::flat().with_child("items", NestingStructure::flat());
    let spec = QuerySpec::new(
        format!("expr-{seed}"),
        query,
        vec![ShreddedInputDecl::new("N", n_structure)],
    );
    (
        spec,
        vec![("RN", rn, false), ("S", s, false), ("N", n, true)],
    )
}

fn input_set(values: &[(&'static str, Value, bool)]) -> InputSet {
    let mut inputs = InputSet::new(ctx());
    for (name, v, nested) in values {
        if *nested {
            inputs
                .add_nested(name, v.as_bag().unwrap().clone())
                .unwrap();
        } else {
            inputs.add_flat(name, v.as_bag().unwrap().clone()).unwrap();
        }
    }
    inputs
}

/// The core differential: for every seeded query, strategy and physical
/// representation, the compiled run and the interpreted run must produce
/// identical bags (exact equality — same floats bit for bit, since both
/// routes execute the same arithmetic per surviving lane in the same order)
/// and move identical logical and physical byte volumes through their
/// shuffles.
#[test]
fn compiled_kernels_agree_with_interpreter_on_seeded_corpus() {
    let _watchdog = Watchdog::arm("expr_agree::seeded_corpus", Duration::from_secs(600));
    for seed in 0..12u64 {
        let (spec, values) = random_case(seed);
        let inputs = input_set(&values);
        for strategy in Strategy::all() {
            for columnar in [true, false] {
                let repr = if columnar { "columnar" } else { "row" };
                let tag = format!("seed {seed} {} {repr}", strategy.label());
                let compiled = run_query_expr(&spec, &inputs, strategy, columnar, true);
                let interp = run_query_expr(&spec, &inputs, strategy, columnar, false);
                let compiled_bag = outcome_bag(&compiled.result, &format!("{tag} compiled"));
                let interp_bag = outcome_bag(&interp.result, &format!("{tag} interpreted"));
                assert_eq!(
                    canonical(&interp_bag),
                    canonical(&compiled_bag),
                    "{tag}: compiled kernels disagree with the interpreter"
                );
                // Identical plans over identical partitions: a diverging
                // byte count means the kernels changed WHAT was computed,
                // not just how.
                assert_eq!(
                    interp.stats.shuffled_tuples, compiled.stats.shuffled_tuples,
                    "{tag}: shuffled tuple counts diverge"
                );
                assert_eq!(
                    interp.stats.shuffled_bytes, compiled.stats.shuffled_bytes,
                    "{tag}: logical shuffle bytes diverge"
                );
                assert_eq!(
                    interp.stats.shuffled_bytes_phys, compiled.stats.shuffled_bytes_phys,
                    "{tag}: physical shuffle bytes diverge"
                );
                // The interpreter side must not have compiled anything — the
                // switch actually selects the engine.
                assert_eq!(
                    interp.stats.expr_compiles(),
                    0,
                    "{tag}: interpreted run recorded kernel compiles"
                );
            }
        }
    }
}

/// The compiled columnar route actually engages the kernels: programs are
/// compiled, instructions counted, and compile time metered — and on the
/// row route the kernels stay out of the picture entirely.
#[test]
fn compiled_runs_record_kernel_programs() {
    let _watchdog = Watchdog::arm("expr_agree::kernel_stats", Duration::from_secs(120));
    // A fixed, unmistakably expression-heavy case.
    let (spec, values) = random_case(1);
    let inputs = input_set(&values);
    let compiled = run_query_expr(&spec, &inputs, Strategy::Standard, true, true);
    assert!(
        !compiled.result.is_failure(),
        "compiled standard run must succeed"
    );
    if std::env::var("TRANCE_EXPR").as_deref() == Ok("interp") {
        // The env escape hatch overrides the caller — nothing to assert.
        return;
    }
    assert!(
        compiled.stats.expr_compiles() > 0,
        "columnar compiled run must compile at least one kernel program"
    );
    assert!(
        compiled.stats.expr_kernel_instrs > 0,
        "compiled programs must report their instruction counts"
    );
    for (label, prog) in &compiled.stats.expr_programs {
        assert!(
            !prog.text.is_empty(),
            "program {label} must record its rendered listing"
        );
    }
    let row = run_query_expr(&spec, &inputs, Strategy::Standard, false, true);
    assert!(!row.result.is_failure(), "row run must succeed");
    assert_eq!(
        row.stats.expr_compiles(),
        0,
        "the row route has no columnar kernels to compile"
    );
}
