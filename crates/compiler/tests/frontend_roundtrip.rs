//! Grammar-driven fuzzing of the textual front-end.
//!
//! The seeded generator in `common` produces random NRC programs; each one
//! is pretty-printed, re-parsed with `trance-frontend`, and checked two
//! ways:
//!
//! 1. **Round-trip law**: `parse(pretty(e)) == e`, structurally.
//! 2. **Differential execution**: the re-parsed program must behave
//!    *identically* to the directly-built AST on every compilation
//!    strategy × both shuffle representations — bag-equal results and
//!    identical logical shuffle volume (or the same failure).
//!
//! Seeds come from `TRANCE_FUZZ_SEED` (default `0xF0D`) and the corpus
//! size from `TRANCE_FUZZ_PROGRAMS` / `TRANCE_FUZZ_DIFF_PROGRAMS`, so CI
//! can run a date-seeded sweep and echo the seed for replay.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{
    collect_unshredded, run_query_repr, InputSet, QuerySpec, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::{Bag, Program};
use trance_shred::{NestingStructure, ShreddedInputDecl};

mod common;
use common::{
    assert_round_trips, canonical, env_u64, random_expr_query, random_flat, random_flat_nullable,
    random_nested, random_query, running_example, Watchdog,
};

fn ctx() -> DistContext {
    DistContext::new(
        ClusterConfig::new(3, 8)
            .with_broadcast_limit(64)
            .with_env_workers(),
    )
}

fn n_structure() -> NestingStructure {
    NestingStructure::flat().with_child("items", NestingStructure::flat())
}

#[test]
fn roundtrip_law_holds_for_seeded_generator_programs() {
    let _w = Watchdog::arm("frontend_roundtrip::law", Duration::from_secs(600));
    let base = env_u64("TRANCE_FUZZ_SEED", 0xF0D);
    let n = env_u64("TRANCE_FUZZ_PROGRAMS", 48);
    eprintln!("fuzz: round-trip law over {n} seeds starting at {base} (TRANCE_FUZZ_SEED)");
    assert_round_trips(&running_example(), "running example");
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(i));
        let q = random_query(&mut rng);
        assert_round_trips(&q, &format!("seed {base}+{i} (random_query)"));
        let q = random_expr_query(&mut rng);
        assert_round_trips(&q, &format!("seed {base}+{i} (random_expr_query)"));
    }
}

#[test]
fn roundtrip_law_holds_for_multi_assignment_programs() {
    let base = env_u64("TRANCE_FUZZ_SEED", 0xF0D);
    for i in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(0x9000 + i));
        let mut prog = Program::new();
        prog.assign("A", random_query(&mut rng));
        prog.assign("B", random_expr_query(&mut rng));
        prog.assign("Result", random_query(&mut rng));
        let text = trance_nrc::pretty::pretty_program(&prog);
        let parsed = trance_frontend::parse_program(&text).unwrap_or_else(|e| {
            panic!("seed {base}+{i}: program failed to re-parse:\n{text}\n{e}")
        });
        assert_eq!(
            parsed, prog,
            "seed {base}+{i}: parse_program(pretty_program(p)) != p:\n{text}"
        );
    }
}

#[test]
fn parsed_text_runs_identically_across_all_strategies_and_representations() {
    let _w = Watchdog::arm(
        "frontend_roundtrip::differential",
        Duration::from_secs(1200),
    );
    let base = env_u64("TRANCE_FUZZ_SEED", 0xF0D);
    let n = env_u64("TRANCE_FUZZ_DIFF_PROGRAMS", 6);
    eprintln!("fuzz: differential sweep over {n} seeds starting at {base} (TRANCE_FUZZ_SEED)");
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(0x1000 + i));
        let r_rows = rng.gen_range(5..30usize);
        let s_rows = rng.gen_range(5..25usize);
        let n_rows = rng.gen_range(3..15usize);
        let r = random_flat(&mut rng, r_rows, 8);
        let rn = random_flat_nullable(&mut rng, r_rows, 8);
        let s = random_flat(&mut rng, s_rows, 8);
        let nv = random_nested(&mut rng, n_rows, 8);
        let query = if i % 2 == 0 {
            random_query(&mut rng)
        } else {
            random_expr_query(&mut rng)
        };
        let parsed = assert_round_trips(&query, &format!("diff seed {base}+{i}"));

        let mut inputs = InputSet::new(ctx());
        inputs.add_flat("R", r.as_bag().unwrap().clone()).unwrap();
        inputs.add_flat("RN", rn.as_bag().unwrap().clone()).unwrap();
        inputs.add_flat("S", s.as_bag().unwrap().clone()).unwrap();
        inputs
            .add_nested("N", nv.as_bag().unwrap().clone())
            .unwrap();
        let decls = vec![ShreddedInputDecl::new("N", n_structure())];
        let direct_spec = QuerySpec::new(format!("fuzz-{i}"), query, decls.clone());
        let parsed_spec = QuerySpec::new(format!("fuzz-{i}"), parsed, decls);

        for strategy in Strategy::all() {
            for columnar in [true, false] {
                let direct = run_query_repr(&direct_spec, &inputs, strategy, columnar);
                let parsed = run_query_repr(&parsed_spec, &inputs, strategy, columnar);
                let label = format!(
                    "seed {base}+{i} strategy {} ({})",
                    strategy.label(),
                    if columnar { "columnar" } else { "rows" }
                );
                match (&direct.result, &parsed.result) {
                    (RunResult::Failed(de), RunResult::Failed(pe)) => {
                        // Typed failures (e.g. memory caps) must at least
                        // agree in kind; the message carries sizes that can
                        // legitimately differ run-to-run.
                        assert_eq!(
                            std::mem::discriminant(de),
                            std::mem::discriminant(pe),
                            "{label}: direct and parsed failed differently: {de} vs {pe}"
                        );
                    }
                    (RunResult::Failed(de), _) => {
                        panic!("{label}: direct AST failed ({de}) but parsed text succeeded")
                    }
                    (_, RunResult::Failed(pe)) => {
                        panic!("{label}: parsed text failed ({pe}) but direct AST succeeded")
                    }
                    (dr, pr) => {
                        let db: Bag = match dr {
                            RunResult::Nested(d) => d.collect_bag(),
                            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
                            RunResult::Failed(_) => unreachable!(),
                        };
                        let pb: Bag = match pr {
                            RunResult::Nested(d) => d.collect_bag(),
                            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
                            RunResult::Failed(_) => unreachable!(),
                        };
                        assert_eq!(
                            canonical(&db),
                            canonical(&pb),
                            "{label}: parsed text and direct AST disagree on results"
                        );
                        assert_eq!(
                            direct.stats.shuffled_bytes, parsed.stats.shuffled_bytes,
                            "{label}: parsed text shuffled a different logical volume"
                        );
                    }
                }
            }
        }
    }
}
