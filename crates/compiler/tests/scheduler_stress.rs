//! Scheduler-stress differential suite: morsel-driven **pipelined** execution
//! must agree with the **staged** executor — bag-equal results and identical
//! logical shuffle volume — on every strategy, both physical
//! representations, and the seeded random NRC program suite, at worker
//! counts {1, 2, 7}. Odd worker counts and repeated pipelined runs shake out
//! ordering and work-stealing races: stolen morsels are re-assembled in
//! source order, so not a byte may move differently.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{
    collect_unshredded, run_query_configured, InputSet, QuerySpec, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::{Bag, Value};
use trance_shred::{NestingStructure, ShreddedInputDecl};

mod common;
use common::{
    assert_bags_approx_eq, cop_structure, cop_value, part_value, random_flat, random_nested,
    random_query, running_example, Watchdog,
};

/// The stress suite pins its worker counts explicitly (it *is* the matrix),
/// so `TRANCE_WORKERS` is deliberately not consulted here.
fn ctx(workers: usize) -> DistContext {
    DistContext::new(ClusterConfig::new(workers, 8).with_broadcast_limit(64))
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn outcome_bag(result: &RunResult, context: &str) -> Bag {
    match result {
        RunResult::Nested(d) => d.collect_bag(),
        RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
        RunResult::Failed(e) => panic!("{context}: run failed: {e}"),
    }
}

/// Runs `spec` pipelined and staged in one representation and asserts
/// bag-equal results and identical logical shuffle bytes; `repeats` extra
/// pipelined runs guard against steal-order nondeterminism.
fn check_pipelined_vs_staged(
    spec: &QuerySpec,
    inputs: &InputSet,
    strategy: Strategy,
    columnar: bool,
    repeats: usize,
    context: &str,
) {
    let staged = run_query_configured(spec, inputs, strategy, columnar, false);
    let staged_bag = outcome_bag(&staged.result, &format!("{context} staged"));
    for rep in 0..=repeats {
        let pipelined = run_query_configured(spec, inputs, strategy, columnar, true);
        let pipelined_bag =
            outcome_bag(&pipelined.result, &format!("{context} pipelined rep{rep}"));
        assert_bags_approx_eq(
            &staged_bag,
            &pipelined_bag,
            &format!("{context} rep{rep}: pipelined vs staged results"),
        );
        assert_eq!(
            staged.stats.shuffled_bytes, pipelined.stats.shuffled_bytes,
            "{context} rep{rep}: fusion must not move a single extra logical shuffle byte"
        );
        assert_eq!(
            staged.stats.shuffled_tuples, pipelined.stats.shuffled_tuples,
            "{context} rep{rep}: shuffled tuple counts must match"
        );
    }
}

#[test]
fn running_example_pipelined_matches_staged_all_strategies_reprs_and_workers() {
    let _watchdog = Watchdog::arm(
        "scheduler_stress::running_example",
        std::time::Duration::from_secs(600),
    );
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    for workers in WORKER_COUNTS {
        let mut inputs = InputSet::new(ctx(workers));
        inputs
            .add_nested("COP", cop_value(30).as_bag().unwrap().clone())
            .unwrap();
        inputs
            .add_flat("Part", part_value().as_bag().unwrap().clone())
            .unwrap();
        for strategy in Strategy::all() {
            for columnar in [true, false] {
                check_pipelined_vs_staged(
                    &spec,
                    &inputs,
                    strategy,
                    columnar,
                    0,
                    &format!(
                        "running-example workers={workers} {} {}",
                        strategy.label(),
                        if columnar { "columnar" } else { "row" }
                    ),
                );
            }
        }
    }
}

#[test]
fn random_programs_pipelined_matches_staged_all_strategies_reprs_and_workers() {
    let _watchdog = Watchdog::arm(
        "scheduler_stress::random_programs",
        std::time::Duration::from_secs(600),
    );
    // The nested input's structure, declared so the shredded strategies can
    // run the random programs too.
    let n_structure = NestingStructure::flat().with_child("items", NestingStructure::flat());
    for workers in WORKER_COUNTS {
        // Repeated pipelined runs only at the odd worker count, where steal
        // interleavings are most adversarial (keeps suite runtime sane).
        let repeats = if workers == 7 { 1 } else { 0 };
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + seed);
            let r_rows = rng.gen_range(5..40usize);
            let s_rows = rng.gen_range(5..30usize);
            let n_rows = rng.gen_range(3..20usize);
            let r = random_flat(&mut rng, r_rows, 8);
            let s = random_flat(&mut rng, s_rows, 8);
            let n = random_nested(&mut rng, n_rows, 8);
            let query = random_query(&mut rng);

            let mut inputs = InputSet::new(ctx(workers));
            inputs.add_flat("R", r.as_bag().unwrap().clone()).unwrap();
            inputs.add_flat("S", s.as_bag().unwrap().clone()).unwrap();
            inputs.add_nested("N", n.as_bag().unwrap().clone()).unwrap();
            let spec = QuerySpec::new(
                format!("random-{seed}"),
                query,
                vec![ShreddedInputDecl::new("N", n_structure.clone())],
            );

            for strategy in Strategy::all() {
                for columnar in [true, false] {
                    check_pipelined_vs_staged(
                        &spec,
                        &inputs,
                        strategy,
                        columnar,
                        repeats,
                        &format!(
                            "seed {seed} workers={workers} {} {}",
                            strategy.label(),
                            if columnar { "columnar" } else { "row" }
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_runs_report_morsels_and_truthful_op_attribution() {
    // The stats contract the benches and `--explain` surface: a pipelined
    // run reports per-pipeline timings with member operator lists; a staged
    // run reports none. Fused time never lands in a bare member-op bucket
    // that did not actually run staged.
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let mut inputs = InputSet::new(ctx(3));
    inputs
        .add_nested("COP", cop_value(40).as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();

    let pipelined = run_query_configured(&spec, &inputs, Strategy::Standard, true, true);
    assert!(!pipelined.result.is_failure());
    assert!(
        !pipelined.stats.pipeline_timings.is_empty(),
        "a pipelined run must report per-pipeline timings"
    );
    assert!(pipelined.stats.total_morsels() > 0);
    for (label, timing) in &pipelined.stats.pipeline_timings {
        assert!(
            !timing.ops.is_empty(),
            "pipeline {label} must report its member operator list"
        );
        assert_eq!(
            label,
            &trance_algebra::pipeline_label(&timing.ops),
            "the label must be derived from the member list"
        );
        assert!(
            pipelined.stats.op_timings.contains_key(label),
            "pipeline {label} must appear in op_ms under its own label"
        );
    }
    // Row-local member operators of fused chains never show up as bare
    // staged entries on the pipelined run.
    for fused_member in ["map", "filter", "flat_map"] {
        assert!(
            !pipelined.stats.op_timings.contains_key(fused_member),
            "fused pipelines must not lump time into the staged `{fused_member}` bucket"
        );
    }
    // Expression kernels are compiled once per pipeline execution — at plan
    // time, before the first morsel — never once per morsel: across many
    // morsels the compile count stays bounded by the pipeline run count.
    if std::env::var("TRANCE_EXPR").as_deref() != Ok("interp") {
        let pipeline_runs: u64 = pipelined
            .stats
            .pipeline_timings
            .values()
            .map(|t| t.calls)
            .sum();
        let compiles = pipelined.stats.expr_compiles();
        assert!(
            compiles > 0,
            "a pipelined compiled run over expression chains must compile kernels"
        );
        assert!(
            compiles <= pipeline_runs * 4,
            "kernel compiles ({compiles}) must be bounded by pipeline executions \
             ({pipeline_runs}), not morsel count ({})",
            pipelined.stats.total_morsels()
        );
    }

    let staged = run_query_configured(&spec, &inputs, Strategy::Standard, true, false);
    assert!(!staged.result.is_failure());
    assert!(
        staged.stats.pipeline_timings.is_empty(),
        "a staged run must not report pipelines"
    );
    assert_eq!(staged.stats.total_morsels(), 0);
    let _ = Value::Null;
}
