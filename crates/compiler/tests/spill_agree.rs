//! Out-of-core correctness: with the spill subsystem enabled, memory-capped
//! runs must produce results **identical** to uncapped in-memory runs — on
//! every strategy, on both physical representations, and across the seeded
//! random NRC program suite — while the same cap with spilling disabled
//! still reproduces the paper's FAIL. Spill files must drain back to zero
//! once the runs' collections are gone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{
    collect_unshredded, run_query_configured, run_query_repr, run_query_spill, InputSet, QuerySpec,
    RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::{eval, Bag, Env, Value};
use trance_shred::ShreddedInputDecl;

mod common;
use common::{
    assert_bags_approx_eq, cop_structure, cop_value, part_value, random_flat, random_nested,
    random_query, running_example, Watchdog,
};

/// A spill-capable cluster with a cap small enough that the flattening
/// strategies go out-of-core on the running example. `TRANCE_WORKERS`
/// overrides the worker count (the CI matrix knob) — the assertions here are
/// differential, so they must hold at any pool size.
fn capped_ctx(worker_memory: usize) -> DistContext {
    DistContext::new(
        ClusterConfig::new(3, 8)
            .with_broadcast_limit(64)
            .with_worker_memory(worker_memory)
            .with_spill()
            .with_env_workers(),
    )
}

fn uncapped_ctx() -> DistContext {
    DistContext::new(
        ClusterConfig::new(3, 8)
            .with_broadcast_limit(64)
            .with_env_workers(),
    )
}

fn input_set(ctx: DistContext, values: &[(&str, Value, bool)]) -> InputSet {
    let mut inputs = InputSet::new(ctx);
    for (name, v, nested) in values {
        if *nested {
            inputs
                .add_nested(name, v.as_bag().unwrap().clone())
                .unwrap();
        } else {
            inputs.add_flat(name, v.as_bag().unwrap().clone()).unwrap();
        }
    }
    inputs
}

fn outcome_bag(result: &RunResult, context: &str) -> Bag {
    match result {
        RunResult::Nested(d) => d.collect_bag(),
        RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
        RunResult::Failed(e) => panic!("{context}: run failed: {e}"),
    }
}

#[test]
fn capped_spill_runs_match_uncapped_on_every_strategy() {
    let values = [("COP", cop_value(120), true), ("Part", part_value(), false)];
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );

    let uncapped = input_set(uncapped_ctx(), &values);
    let capped = input_set(capped_ctx(12 * 1024), &values);
    let mut spilled_somewhere = false;
    for strategy in Strategy::all() {
        let expected = outcome_bag(
            &run_query_spill(&spec, &uncapped, strategy, true).result,
            &format!("uncapped {}", strategy.label()),
        );
        let outcome = run_query_spill(&spec, &capped, strategy, true);
        let produced = outcome_bag(
            &outcome.result,
            &format!("capped+spill {}", strategy.label()),
        );
        spilled_somewhere |= outcome.stats.spilled_bytes > 0;
        assert_bags_approx_eq(
            &expected,
            &produced,
            &format!(
                "strategy {}: capped spill run vs uncapped oracle",
                strategy.label()
            ),
        );
    }
    assert!(
        spilled_somewhere,
        "the cap is meant to force at least one strategy out-of-core"
    );

    // The same cap with spilling off must still reproduce the paper's FAIL
    // for the flattening strategy (SPARKSQL-LIKE drags wide rows through
    // every shuffle).
    let outcome = run_query_spill(&spec, &capped, Strategy::Baseline, false);
    assert!(
        outcome.result.is_failure(),
        "spill off on the capped cluster must FAIL like the paper"
    );

    // Once every run's collections are dropped, no spill file may remain.
    drop(uncapped);
    if let Some(dir) = capped.context().spill_dir() {
        drop(capped);
        assert!(
            !dir.exists(),
            "dropping the context must remove the scoped spill directory"
        );
    }
}

#[test]
fn capped_pipelined_fail_cells_match_their_uncapped_oracles() {
    // The spill × pipeline interaction the capped benchmark cells rely on:
    // on the FAIL-cell strategies (the flattening routes that exceed the
    // cap), a memory-capped **pipelined** run with spilling on must match
    // the uncapped staged oracle exactly — on both physical
    // representations. Fused pipelines stream through the same spill-aware
    // PartBuilder sinks as the staged operators, so going out-of-core
    // mid-pipeline must not change a single row.
    let values = [("COP", cop_value(120), true), ("Part", part_value(), false)];
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let uncapped = input_set(uncapped_ctx(), &values);
    let capped = input_set(capped_ctx(12 * 1024), &values);
    let mut spilled_somewhere = false;
    for strategy in [Strategy::Standard, Strategy::Baseline] {
        for columnar in [true, false] {
            let repr = if columnar { "columnar" } else { "row" };
            // Staged, uncapped: the oracle.
            let oracle = run_query_configured(&spec, &uncapped, strategy, columnar, false);
            let oracle_bag = outcome_bag(
                &oracle.result,
                &format!("uncapped staged {} {repr}", strategy.label()),
            );
            // Pipelined, capped, spilling: must complete and agree.
            let capped_run = run_query_configured(&spec, &capped, strategy, columnar, true);
            spilled_somewhere |= capped_run.stats.spilled_bytes > 0;
            let capped_bag = outcome_bag(
                &capped_run.result,
                &format!("capped pipelined {} {repr}", strategy.label()),
            );
            assert_bags_approx_eq(
                &oracle_bag,
                &capped_bag,
                &format!(
                    "{} {repr}: capped pipelined run vs uncapped staged oracle",
                    strategy.label()
                ),
            );
        }
    }
    assert!(
        spilled_somewhere,
        "the cap is meant to force the pipelined runs out-of-core"
    );
    // Spill files of the pipelined runs drain with their collections.
    if let Some(dir) = capped.context().spill_dir() {
        let ctx = capped.context().clone();
        drop(capped);
        assert_eq!(
            std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
            0,
            "pipelined spill files leaked"
        );
        drop(ctx);
        assert!(!dir.exists());
    }
}

#[test]
fn randomized_capped_spill_runs_match_uncapped_in_both_representations() {
    let _watchdog = Watchdog::arm(
        "spill_agree::randomized_capped",
        std::time::Duration::from_secs(600),
    );
    let mut spilled_somewhere = false;
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + seed);
        let r_rows = rng.gen_range(5..40usize);
        let s_rows = rng.gen_range(5..30usize);
        let n_rows = rng.gen_range(3..20usize);
        let r = random_flat(&mut rng, r_rows, 8);
        let s = random_flat(&mut rng, s_rows, 8);
        let n = random_nested(&mut rng, n_rows, 8);
        let query = random_query(&mut rng);

        let env = Env::from_bindings([("R", r.clone()), ("S", s.clone()), ("N", n.clone())]);
        let expected = eval(&query, &env).unwrap().into_bag().unwrap();

        let values = [("R", r, false), ("S", s, false), ("N", n, true)];
        // A cap this small forces even the random programs' joins and
        // groupings out-of-core; spilling must keep them correct anyway.
        let capped = input_set(capped_ctx(2 * 1024), &values);
        let spec = QuerySpec::new(format!("random-{seed}"), query, vec![]);

        for strategy in [Strategy::Standard, Strategy::Baseline] {
            // Columnar (default) representation under the cap.
            let col = run_query_spill(&spec, &capped, strategy, true);
            spilled_somewhere |= col.stats.spilled_bytes > 0;
            let col_bag = outcome_bag(
                &col.result,
                &format!("seed {seed} capped columnar {}", strategy.label()),
            );
            assert_bags_approx_eq(
                &expected,
                &col_bag,
                &format!(
                    "seed {seed}: capped columnar spill run vs reference under {}",
                    strategy.label()
                ),
            );
            // Row-representation oracle under the same cap: the row engine
            // spills through the same machinery and must agree too.
            let row = run_query_repr(&spec, &capped, strategy, false);
            let row_bag = outcome_bag(
                &row.result,
                &format!("seed {seed} capped row {}", strategy.label()),
            );
            assert_bags_approx_eq(
                &expected,
                &row_bag,
                &format!(
                    "seed {seed}: capped row spill run vs reference under {}",
                    strategy.label()
                ),
            );
        }

        // All collections die with the input set: the scoped directory must
        // be empty (it is removed entirely when the context drops).
        if let Some(dir) = capped.context().spill_dir() {
            let ctx = capped.context().clone();
            drop(capped);
            assert_eq!(
                std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
                0,
                "seed {seed}: spill files leaked"
            );
            drop(ctx);
            assert!(!dir.exists());
        }
    }
    assert!(
        spilled_somewhere,
        "the randomized capped suite is meant to exercise real spills"
    );
}
