//! Cross-strategy correctness: every compilation strategy (standard,
//! SparkSQL-like baseline, shredded, shredded+unshredded, and their skew-aware
//! variants) must produce the same result as the local reference evaluator on
//! the paper's query families.

use std::collections::BTreeMap;

use trance_compiler::{collect_unshredded, run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::builder::*;
use trance_nrc::{eval, Bag, Env, Value};
use trance_shred::{NestingStructure, ShreddedInputDecl};

fn ctx() -> DistContext {
    DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(64))
}

fn cop_value(customers: usize) -> Value {
    let mut rows = Vec::new();
    for c in 0..customers {
        let mut orders = Vec::new();
        for o in 0..(c % 4) {
            let mut parts = Vec::new();
            for p in 0..(o + c) % 5 {
                parts.push(Value::tuple([
                    ("pid", Value::Int((p % 7) as i64)),
                    ("qty", Value::Real(1.0 + p as f64)),
                ]));
            }
            orders.push(Value::tuple([
                ("odate", Value::Date(100 + o as i64)),
                ("oparts", Value::bag(parts)),
            ]));
        }
        rows.push(Value::tuple([
            ("cname", Value::str(format!("c{c}"))),
            ("corders", Value::bag(orders)),
        ]));
    }
    Value::bag(rows)
}

fn part_value() -> Value {
    Value::bag(
        (0..7)
            .map(|p| {
                Value::tuple([
                    ("pid", Value::Int(p)),
                    ("pname", Value::str(format!("part{p}"))),
                    ("price", Value::Real(0.5 + p as f64)),
                ])
            })
            .collect(),
    )
}

fn cop_structure() -> NestingStructure {
    NestingStructure::flat().with_child(
        "corders",
        NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
    )
}

fn running_example() -> trance_nrc::Expr {
    forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    )
}

/// Canonicalizes nested rows for comparison: sorts bags recursively.
fn canonical(bag: &Bag) -> Vec<Value> {
    fn canon(v: &Value) -> Value {
        match v {
            Value::Bag(b) => {
                let mut items: Vec<Value> = b.iter().map(canon).collect();
                items.sort();
                Value::Bag(Bag::new(items))
            }
            Value::Tuple(t) => {
                let mut fields: Vec<(String, Value)> =
                    t.iter().map(|(n, v)| (n.to_string(), canon(v))).collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Tuple(trance_nrc::Tuple::new(fields))
            }
            other => other.clone(),
        }
    }
    let mut items: Vec<Value> = bag.iter().map(canon).collect();
    items.sort();
    items
}

fn reference_result(query: &trance_nrc::Expr, inputs: &[(&str, Value)]) -> Bag {
    let env = Env::from_bindings(inputs.iter().map(|(n, v)| (n.to_string(), v.clone())));
    eval(query, &env).unwrap().into_bag().unwrap()
}

fn check_all_strategies(spec: &QuerySpec, values: &[(&str, Value, bool)]) {
    let expected = reference_result(
        &spec.query,
        &values
            .iter()
            .map(|(n, v, _)| (*n, v.clone()))
            .collect::<Vec<_>>(),
    );
    let ctx = ctx();
    let mut inputs = InputSet::new(ctx);
    for (name, v, nested) in values {
        if *nested {
            inputs
                .add_nested(name, v.as_bag().unwrap().clone())
                .unwrap();
        } else {
            inputs.add_flat(name, v.as_bag().unwrap().clone()).unwrap();
        }
    }
    for strategy in Strategy::all() {
        let outcome = run_query(spec, &inputs, strategy);
        let produced: Bag = match &outcome.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("{} failed: {e}", strategy.label()),
        };
        assert_eq!(
            canonical(&expected),
            canonical(&produced),
            "strategy {} disagrees with the reference evaluator for query {}",
            strategy.label(),
            spec.name
        );
    }
}

#[test]
fn running_example_all_strategies_agree() {
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    check_all_strategies(
        &spec,
        &[("COP", cop_value(12), true), ("Part", part_value(), false)],
    );
}

#[test]
fn flat_to_nested_all_strategies_agree() {
    let query = forin(
        "c",
        var("Customer"),
        singleton(tuple([
            ("cname", proj(var("c"), "cname")),
            (
                "orders",
                forin(
                    "o",
                    var("Orders"),
                    ifthen(
                        cmp_eq(proj(var("o"), "ckey"), proj(var("c"), "ckey")),
                        singleton(tuple([
                            ("odate", proj(var("o"), "odate")),
                            (
                                "items",
                                forin(
                                    "l",
                                    var("Lineitem"),
                                    ifthen(
                                        cmp_eq(proj(var("l"), "okey"), proj(var("o"), "okey")),
                                        singleton(tuple([
                                            ("pid", proj(var("l"), "pid")),
                                            ("qty", proj(var("l"), "qty")),
                                        ])),
                                    ),
                                ),
                            ),
                        ])),
                    ),
                ),
            ),
        ])),
    );
    let customer = Value::bag(
        (0..10)
            .map(|c| {
                Value::tuple([
                    ("ckey", Value::Int(c)),
                    ("cname", Value::str(format!("c{c}"))),
                ])
            })
            .collect(),
    );
    let orders = Value::bag(
        (0..25)
            .map(|o| {
                Value::tuple([
                    ("okey", Value::Int(o)),
                    ("ckey", Value::Int(o % 10)),
                    ("odate", Value::Date(1000 + o)),
                ])
            })
            .collect(),
    );
    let lineitem = Value::bag(
        (0..60)
            .map(|l| {
                Value::tuple([
                    ("okey", Value::Int(l % 25)),
                    ("pid", Value::Int(l % 7)),
                    ("qty", Value::Real(1.0 + (l % 4) as f64)),
                ])
            })
            .collect(),
    );
    let spec = QuerySpec::new("flat-to-nested", query, vec![]);
    check_all_strategies(
        &spec,
        &[
            ("Customer", customer, false),
            ("Orders", orders, false),
            ("Lineitem", lineitem, false),
        ],
    );
}

#[test]
fn nested_to_flat_all_strategies_agree() {
    let query = sum_by(
        forin(
            "cop",
            var("COP"),
            forin(
                "co",
                proj(var("cop"), "corders"),
                forin(
                    "op",
                    proj(var("co"), "oparts"),
                    forin(
                        "p",
                        var("Part"),
                        ifthen(
                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                            singleton(tuple([
                                ("cname", proj(var("cop"), "cname")),
                                (
                                    "spent",
                                    mul(proj(var("op"), "qty"), proj(var("p"), "price")),
                                ),
                            ])),
                        ),
                    ),
                ),
            ),
        ),
        &["cname"],
        &["spent"],
    );
    let spec = QuerySpec::new(
        "nested-to-flat",
        query,
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    check_all_strategies(
        &spec,
        &[("COP", cop_value(15), true), ("Part", part_value(), false)],
    );
}

#[test]
fn memory_cap_produces_fail_outcomes() {
    // A tiny per-worker memory cap makes the flattening strategies fail with
    // MemoryExceeded — the engine-level reproduction of the paper's FAIL runs.
    let ctx = DistContext::new(
        ClusterConfig::new(2, 4)
            .with_worker_memory(2_000)
            .with_broadcast_limit(64),
    );
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop_value(200).as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let outcome = run_query(&spec, &inputs, Strategy::Baseline);
    assert!(
        outcome.result.is_failure(),
        "baseline must hit the memory cap"
    );
}

#[test]
fn shredded_strategy_reports_lower_shuffle_than_baseline_for_wide_rows() {
    // Wide nested rows: the baseline drags every attribute through the
    // shuffles while the shredded route only moves dictionary rows.
    let mut rows = Vec::new();
    for c in 0..40 {
        let orders: Vec<Value> = (0..6)
            .map(|o| {
                Value::tuple([
                    ("odate", Value::Date(o)),
                    (
                        "oparts",
                        Value::bag(
                            (0..8)
                                .map(|p| {
                                    Value::tuple([
                                        ("pid", Value::Int(p % 7)),
                                        ("qty", Value::Real(p as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        rows.push(Value::tuple([
            ("cname", Value::str(format!("customer-{c}"))),
            ("comment", Value::str("x".repeat(120))),
            ("corders", Value::bag(orders)),
        ]));
    }
    let cop = Value::bag(rows);
    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(64));
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop.as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let shred = run_query(&spec, &inputs, Strategy::Shred);
    let baseline = run_query(&spec, &inputs, Strategy::Baseline);
    assert!(!shred.result.is_failure());
    assert!(!baseline.result.is_failure());
    assert!(
        shred.stats.shuffled_bytes < baseline.stats.shuffled_bytes,
        "shredded route should shuffle fewer bytes ({} vs {})",
        shred.stats.shuffled_bytes,
        baseline.stats.shuffled_bytes
    );
}

#[test]
fn shredded_output_dictionaries_are_exposed() {
    let ctx = ctx();
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop_value(10).as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let outcome = run_query(&spec, &inputs, Strategy::Shred);
    match outcome.result {
        RunResult::Shredded(out) => {
            let paths: Vec<&String> = out.dicts.keys().collect();
            assert_eq!(paths, vec!["corders", "corders_oparts"]);
            let mut sizes = BTreeMap::new();
            for (p, d) in &out.dicts {
                sizes.insert(p.clone(), d.len());
            }
            assert!(sizes["corders"] > 0);
        }
        other => panic!("expected shredded output, got {other:?}"),
    }
}
