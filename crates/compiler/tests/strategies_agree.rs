//! Cross-strategy correctness: every compilation strategy (standard,
//! SparkSQL-like baseline, shredded, shredded+unshredded, and their skew-aware
//! variants) must produce the same result as the local reference evaluator on
//! the paper's query families — **through the columnar plan route (the
//! default), the row plan route, and the legacy fused executor**, which serve
//! as differential oracles for one another. A seeded random NRC program
//! generator widens the net beyond the hand-written queries; the
//! row-vs-columnar comparison runs on every query/strategy pair and on all
//! seeded random programs.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{
    collect_unshredded, run_query, run_query_legacy, run_query_repr, InputSet, QuerySpec,
    RunResult, Strategy,
};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::builder::*;
use trance_nrc::{eval, Bag, Env, Value};
use trance_shred::ShreddedInputDecl;

mod common;
use common::{
    assert_bags_approx_eq, canonical, cop_structure, cop_value, part_value, random_flat,
    random_nested, random_query, running_example,
};

fn ctx() -> DistContext {
    // `TRANCE_WORKERS` overrides the worker count (the CI matrix knob):
    // every assertion here is differential or reference-based, so it must
    // hold at any pool size.
    DistContext::new(
        ClusterConfig::new(3, 8)
            .with_broadcast_limit(64)
            .with_env_workers(),
    )
}

fn reference_result(query: &trance_nrc::Expr, inputs: &[(&str, Value)]) -> Bag {
    let env = Env::from_bindings(inputs.iter().map(|(n, v)| (n.to_string(), v.clone())));
    eval(query, &env).unwrap().into_bag().unwrap()
}

fn check_all_strategies(spec: &QuerySpec, values: &[(&str, Value, bool)]) {
    let expected = reference_result(
        &spec.query,
        &values
            .iter()
            .map(|(n, v, _)| (*n, v.clone()))
            .collect::<Vec<_>>(),
    );
    let ctx = ctx();
    let mut inputs = InputSet::new(ctx);
    for (name, v, nested) in values {
        if *nested {
            inputs
                .add_nested(name, v.as_bag().unwrap().clone())
                .unwrap();
        } else {
            inputs.add_flat(name, v.as_bag().unwrap().clone()).unwrap();
        }
    }
    for strategy in Strategy::all() {
        // Plan route (NRC → Plan → optimize → physical execution).
        let outcome = run_query(spec, &inputs, strategy);
        let produced: Bag = match &outcome.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("{} failed: {e}", strategy.label()),
        };
        assert_eq!(
            canonical(&expected),
            canonical(&produced),
            "strategy {} disagrees with the reference evaluator for query {}",
            strategy.label(),
            spec.name
        );
        // Differential: the row representation of the plan route must agree
        // with the (default) columnar representation on every query/strategy
        // pair.
        let row_repr = run_query_repr(spec, &inputs, strategy, false);
        let row_bag: Bag = match &row_repr.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("row-repr {} failed: {e}", strategy.label()),
        };
        assert_eq!(
            canonical(&produced),
            canonical(&row_bag),
            "columnar and row representations disagree under {} for query {}",
            strategy.label(),
            spec.name
        );
        // Differential: the legacy fused executor must agree with the plan
        // route on every query/strategy pair.
        let legacy = run_query_legacy(spec, &inputs, strategy);
        let legacy_bag: Bag = match &legacy.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("legacy {} failed: {e}", strategy.label()),
        };
        assert_eq!(
            canonical(&produced),
            canonical(&legacy_bag),
            "plan route and legacy fused executor disagree under {} for query {}",
            strategy.label(),
            spec.name
        );
    }
}

#[test]
fn running_example_all_strategies_agree() {
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    check_all_strategies(
        &spec,
        &[("COP", cop_value(12), true), ("Part", part_value(), false)],
    );
}

#[test]
fn flat_to_nested_all_strategies_agree() {
    let query = forin(
        "c",
        var("Customer"),
        singleton(tuple([
            ("cname", proj(var("c"), "cname")),
            (
                "orders",
                forin(
                    "o",
                    var("Orders"),
                    ifthen(
                        cmp_eq(proj(var("o"), "ckey"), proj(var("c"), "ckey")),
                        singleton(tuple([
                            ("odate", proj(var("o"), "odate")),
                            (
                                "items",
                                forin(
                                    "l",
                                    var("Lineitem"),
                                    ifthen(
                                        cmp_eq(proj(var("l"), "okey"), proj(var("o"), "okey")),
                                        singleton(tuple([
                                            ("pid", proj(var("l"), "pid")),
                                            ("qty", proj(var("l"), "qty")),
                                        ])),
                                    ),
                                ),
                            ),
                        ])),
                    ),
                ),
            ),
        ])),
    );
    let customer = Value::bag(
        (0..10)
            .map(|c| {
                Value::tuple([
                    ("ckey", Value::Int(c)),
                    ("cname", Value::str(format!("c{c}"))),
                ])
            })
            .collect(),
    );
    let orders = Value::bag(
        (0..25)
            .map(|o| {
                Value::tuple([
                    ("okey", Value::Int(o)),
                    ("ckey", Value::Int(o % 10)),
                    ("odate", Value::Date(1000 + o)),
                ])
            })
            .collect(),
    );
    let lineitem = Value::bag(
        (0..60)
            .map(|l| {
                Value::tuple([
                    ("okey", Value::Int(l % 25)),
                    ("pid", Value::Int(l % 7)),
                    ("qty", Value::Real(1.0 + (l % 4) as f64)),
                ])
            })
            .collect(),
    );
    let spec = QuerySpec::new("flat-to-nested", query, vec![]);
    check_all_strategies(
        &spec,
        &[
            ("Customer", customer, false),
            ("Orders", orders, false),
            ("Lineitem", lineitem, false),
        ],
    );
}

#[test]
fn nested_to_flat_all_strategies_agree() {
    let query = sum_by(
        forin(
            "cop",
            var("COP"),
            forin(
                "co",
                proj(var("cop"), "corders"),
                forin(
                    "op",
                    proj(var("co"), "oparts"),
                    forin(
                        "p",
                        var("Part"),
                        ifthen(
                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                            singleton(tuple([
                                ("cname", proj(var("cop"), "cname")),
                                (
                                    "spent",
                                    mul(proj(var("op"), "qty"), proj(var("p"), "price")),
                                ),
                            ])),
                        ),
                    ),
                ),
            ),
        ),
        &["cname"],
        &["spent"],
    );
    let spec = QuerySpec::new(
        "nested-to-flat",
        query,
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    check_all_strategies(
        &spec,
        &[("COP", cop_value(15), true), ("Part", part_value(), false)],
    );
}

#[test]
fn memory_cap_produces_fail_outcomes() {
    // A tiny per-worker memory cap makes the flattening strategies fail with
    // MemoryExceeded — the engine-level reproduction of the paper's FAIL runs.
    let ctx = DistContext::new(
        ClusterConfig::new(2, 4)
            .with_worker_memory(2_000)
            .with_broadcast_limit(64),
    );
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop_value(200).as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let outcome = run_query(&spec, &inputs, Strategy::Baseline);
    assert!(
        outcome.result.is_failure(),
        "baseline must hit the memory cap"
    );
}

#[test]
fn shredded_strategy_reports_lower_shuffle_than_baseline_for_wide_rows() {
    // Wide nested rows: the baseline drags every attribute through the
    // shuffles while the shredded route only moves dictionary rows.
    let mut rows = Vec::new();
    for c in 0..40 {
        let orders: Vec<Value> = (0..6)
            .map(|o| {
                Value::tuple([
                    ("odate", Value::Date(o)),
                    (
                        "oparts",
                        Value::bag(
                            (0..8)
                                .map(|p| {
                                    Value::tuple([
                                        ("pid", Value::Int(p % 7)),
                                        ("qty", Value::Real(p as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        rows.push(Value::tuple([
            ("cname", Value::str(format!("customer-{c}"))),
            ("comment", Value::str("x".repeat(120))),
            ("corders", Value::bag(orders)),
        ]));
    }
    let cop = Value::bag(rows);
    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(64));
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop.as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let shred = run_query(&spec, &inputs, Strategy::Shred);
    let baseline = run_query(&spec, &inputs, Strategy::Baseline);
    assert!(!shred.result.is_failure());
    assert!(!baseline.result.is_failure());
    assert!(
        shred.stats.shuffled_bytes < baseline.stats.shuffled_bytes,
        "shredded route should shuffle fewer bytes ({} vs {})",
        shred.stats.shuffled_bytes,
        baseline.stats.shuffled_bytes
    );
}

// ---------------------------------------------------------------------------
// seeded randomized NRC programs: plan route vs legacy oracle vs reference
// ---------------------------------------------------------------------------

#[test]
fn randomized_programs_plan_route_matches_legacy_and_reference() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + seed);
        let r_rows = rng.gen_range(5..40usize);
        let s_rows = rng.gen_range(5..30usize);
        let n_rows = rng.gen_range(3..20usize);
        let r = random_flat(&mut rng, r_rows, 8);
        let s = random_flat(&mut rng, s_rows, 8);
        let n = random_nested(&mut rng, n_rows, 8);
        let query = random_query(&mut rng);

        let env = Env::from_bindings([("R", r.clone()), ("S", s.clone()), ("N", n.clone())]);
        let expected = eval(&query, &env).unwrap().into_bag().unwrap();

        let ctx = ctx();
        let mut inputs = InputSet::new(ctx);
        inputs.add_flat("R", r.as_bag().unwrap().clone()).unwrap();
        inputs.add_flat("S", s.as_bag().unwrap().clone()).unwrap();
        inputs.add_nested("N", n.as_bag().unwrap().clone()).unwrap();
        let spec = QuerySpec::new(format!("random-{seed}"), query, vec![]);

        for strategy in [
            Strategy::Standard,
            Strategy::Baseline,
            Strategy::StandardSkew,
        ] {
            let plan_out = match &run_query(&spec, &inputs, strategy).result {
                RunResult::Nested(d) => d.collect_bag(),
                other => panic!("seed {seed} {}: {other:?}", strategy.label()),
            };
            let legacy_out = match &run_query_legacy(&spec, &inputs, strategy).result {
                RunResult::Nested(d) => d.collect_bag(),
                other => panic!("seed {seed} legacy {}: {other:?}", strategy.label()),
            };
            let row_out = match &run_query_repr(&spec, &inputs, strategy, false).result {
                RunResult::Nested(d) => d.collect_bag(),
                other => panic!("seed {seed} row-repr {}: {other:?}", strategy.label()),
            };
            assert_bags_approx_eq(
                &expected,
                &plan_out,
                &format!(
                    "seed {seed}: plan route vs reference evaluator under {}",
                    strategy.label()
                ),
            );
            assert_bags_approx_eq(
                &plan_out,
                &row_out,
                &format!(
                    "seed {seed}: columnar vs row representation under {}",
                    strategy.label()
                ),
            );
            assert_bags_approx_eq(
                &plan_out,
                &legacy_out,
                &format!(
                    "seed {seed}: plan route vs legacy oracle under {}",
                    strategy.label()
                ),
            );
        }
    }
}

#[test]
fn shadowed_let_bindings_execute_lexically_on_the_plan_route() {
    // let X = {pids} in (let X = {pids+100} in scan X) ∪ (scan X): the second
    // branch must read the OUTER binding. (The legacy fused executor resolves
    // let-bindings through a mutable input map and gets this wrong, which is
    // one reason the plan route freshens assignment names.)
    let inner = trance_nrc::Expr::Let {
        var: "X".into(),
        value: Box::new(forin(
            "p",
            var("Part"),
            singleton(tuple([("u", add(proj(var("p"), "pid"), int(100)))])),
        )),
        body: Box::new(forin(
            "t",
            var("X"),
            singleton(tuple([("u", proj(var("t"), "u"))])),
        )),
    };
    let outer_use = forin(
        "t",
        var("X"),
        singleton(tuple([("u", proj(var("t"), "u"))])),
    );
    let query = trance_nrc::Expr::Let {
        var: "X".into(),
        value: Box::new(forin(
            "p",
            var("Part"),
            singleton(tuple([("u", proj(var("p"), "pid"))])),
        )),
        body: Box::new(trance_nrc::Expr::Union(
            Box::new(inner),
            Box::new(outer_use),
        )),
    };
    let expected = reference_result(&query, &[("Part", part_value())]);
    let ctx = ctx();
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new("shadowed-lets", query, vec![]);
    let outcome = run_query(&spec, &inputs, Strategy::Standard);
    let produced = match &outcome.result {
        RunResult::Nested(d) => d.collect_bag(),
        other => panic!("{other:?}"),
    };
    assert_eq!(canonical(&expected), canonical(&produced));
}

#[test]
fn optimizer_reduces_standard_route_shuffle_volume() {
    // The SparkSQL-like baseline is the standard route with the optimizer
    // off: with it on, column pruning (at scans *and* unnests) must strictly
    // reduce the shuffled volume on wide nested rows.
    let mut rows = Vec::new();
    for c in 0..40 {
        let orders: Vec<Value> = (0..6)
            .map(|o| {
                Value::tuple([
                    ("odate", Value::Date(o)),
                    ("ocomment", Value::str("y".repeat(60))),
                    (
                        "oparts",
                        Value::bag(
                            (0..8)
                                .map(|p| {
                                    Value::tuple([
                                        ("pid", Value::Int(p % 7)),
                                        ("qty", Value::Real(p as f64)),
                                        ("note", Value::str("z".repeat(40))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        rows.push(Value::tuple([
            ("cname", Value::str(format!("customer-{c}"))),
            ("comment", Value::str("x".repeat(120))),
            ("corders", Value::bag(orders)),
        ]));
    }
    let cop = Value::bag(rows);
    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(64));
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop.as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let standard = run_query(&spec, &inputs, Strategy::Standard);
    let baseline = run_query(&spec, &inputs, Strategy::Baseline);
    assert!(!standard.result.is_failure());
    assert!(!baseline.result.is_failure());
    assert!(
        standard.stats.shuffled_bytes < baseline.stats.shuffled_bytes,
        "optimizer on must shuffle strictly fewer bytes ({} vs {})",
        standard.stats.shuffled_bytes,
        baseline.stats.shuffled_bytes
    );
}

#[test]
fn columnar_representation_ships_fewer_physical_bytes_than_rows() {
    // Same plans, same logical volume — but the columnar representation must
    // ship strictly fewer *physical* bytes (schema once per batch, typed
    // vectors, buffer-dictionary strings).
    let mut rows = Vec::new();
    for c in 0..40 {
        let orders: Vec<Value> = (0..6)
            .map(|o| {
                Value::tuple([
                    ("odate", Value::Date(o)),
                    (
                        "oparts",
                        Value::bag(
                            (0..8)
                                .map(|p| {
                                    Value::tuple([
                                        ("pid", Value::Int(p % 7)),
                                        ("qty", Value::Real(p as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        rows.push(Value::tuple([
            ("cname", Value::str(format!("customer-{c}"))),
            ("corders", Value::bag(orders)),
        ]));
    }
    let cop = Value::bag(rows);
    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(64));
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop.as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let col = run_query_repr(&spec, &inputs, Strategy::Standard, true);
    let row = run_query_repr(&spec, &inputs, Strategy::Standard, false);
    assert!(!col.result.is_failure() && !row.result.is_failure());
    assert_eq!(
        col.stats.shuffled_bytes, row.stats.shuffled_bytes,
        "both representations must report the same logical shuffle volume"
    );
    assert_eq!(
        row.stats.shuffled_bytes, row.stats.shuffled_bytes_phys,
        "rows ship as heap values: logical == physical on the row path"
    );
    assert!(
        col.stats.shuffled_bytes_phys < row.stats.shuffled_bytes_phys,
        "columnar must ship strictly fewer physical bytes ({} vs {})",
        col.stats.shuffled_bytes_phys,
        row.stats.shuffled_bytes_phys
    );
}

#[test]
fn shredded_output_dictionaries_are_exposed() {
    let ctx = ctx();
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop_value(10).as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part_value().as_bag().unwrap().clone())
        .unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let outcome = run_query(&spec, &inputs, Strategy::Shred);
    match outcome.result {
        RunResult::Shredded(out) => {
            let paths: Vec<&String> = out.dicts.keys().collect();
            assert_eq!(paths, vec!["corders", "corders_oparts"]);
            let mut sizes = BTreeMap::new();
            for (p, d) in &out.dicts {
                sizes.insert(p.clone(), d.len());
            }
            assert!(sizes["corders"] > 0);
        }
        other => panic!("expected shredded output, got {other:?}"),
    }
}
