//! Columnar batches: the typed physical representation of the engine.
//!
//! A [`Batch`] stores a partition's rows column-wise: the attribute names
//! live **once** in a shared [`Schema`] (`Arc<Schema>`), and the data lives
//! in typed [`Column`]s — `i64`/`f64`/`bool`/date vectors, dictionary-encoded
//! strings, and offset-encoded nested-bag columns whose elements are
//! themselves a child `Batch`. Row-wise, every tuple of a
//! [`trance_nrc::Value`] collection repeats its attribute names as heap
//! strings; batch-wise those bytes are paid once per batch, which is what
//! makes the columnar route's shuffle volume so much smaller.
//!
//! Validity is tracked with two [`Bitmap`]s per column:
//!
//! * `nulls` — the row holds an explicit `Value::Null` (outer joins and
//!   outer unnests produce these);
//! * `absent` — the row's tuple did not contain the attribute at all. The
//!   nested data model distinguishes a tuple without attribute `a` from one
//!   with `a: NULL`, and a lossless `Value` ↔ `Batch` round trip must too.
//!
//! Values a typed column cannot hold (labels, mixed numeric kinds, nested
//! tuples) fall back to a [`Column::Other`] value vector — still schema-once,
//! just not vector-typed. Rows that are not tuples at all are kept verbatim
//! in an *opaque* batch ([`Schema::is_opaque`]), mirroring how the row engine
//! passes non-tuple values through untouched.

use std::collections::HashMap;
use std::sync::Arc;

use trance_nrc::{Bag, MemSize, Tuple, Value};

// ---------------------------------------------------------------------------
// bitmaps
// ---------------------------------------------------------------------------

/// A fixed-length bitmap (one bit per row) used for null / absent tracking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            bits: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to one.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let slot = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        if *slot & mask == 0 {
            *slot |= mask;
            self.ones += 1;
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, b: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        self.len += 1;
        if b {
            let i = self.len - 1;
            self.bits[i / 64] |= 1u64 << (i % 64);
            self.ones += 1;
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// True when at least one bit is set.
    pub fn any(&self) -> bool {
        self.ones > 0
    }

    /// Physical size of the bit buffer in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// The raw bit words (spill serialization).
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a bitmap from raw words and a bit length (spill
    /// deserialization); the ones count is recomputed.
    pub(crate) fn from_words(bits: Vec<u64>, len: usize) -> Bitmap {
        debug_assert_eq!(bits.len(), len.div_ceil(64));
        let ones = bits.iter().map(|w| w.count_ones() as usize).sum();
        Bitmap { bits, len, ones }
    }
}

// ---------------------------------------------------------------------------
// schema
// ---------------------------------------------------------------------------

/// The attribute schema shared by every row of a [`Batch`]: the field names,
/// stored once per batch instead of once per row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<String>,
    opaque: bool,
}

impl Schema {
    /// A schema over the given attribute names, in order.
    pub fn new(fields: Vec<String>) -> Schema {
        Schema {
            fields,
            opaque: false,
        }
    }

    /// The marker schema of an *opaque* batch: rows that are not tuples are
    /// stored verbatim in a single value column.
    pub fn opaque() -> Schema {
        Schema {
            fields: Vec::new(),
            opaque: true,
        }
    }

    /// The attribute names, in order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// True for the opaque (non-tuple rows) schema.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Position of attribute `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Physical bytes of the schema itself (concatenated field-name buffer
    /// plus one offset per field), charged once per batch by the exact byte
    /// accounting.
    pub fn byte_size(&self) -> usize {
        8 + self.fields.iter().map(|f| 4 + f.len()).sum::<usize>()
    }
}

/// A planner-provided column hint: the field's name plus whether the plan
/// schema knows it to be bag-valued. Produced from
/// `trance_algebra::AttrSchema` by the compiler and used to type batch
/// columns from the plan schema even when the sampled data alone could not
/// (e.g. a nested attribute whose bags are all empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldHint {
    /// Attribute name.
    pub name: String,
    /// Inner hints when the plan schema marks the attribute bag-valued;
    /// `None` for scalar (or unknown) attributes.
    pub nested: Option<Vec<FieldHint>>,
}

impl FieldHint {
    /// A scalar (or unknown-typed) field hint.
    pub fn scalar(name: impl Into<String>) -> FieldHint {
        FieldHint {
            name: name.into(),
            nested: None,
        }
    }

    /// A bag-valued field hint with the given inner fields.
    pub fn bag(name: impl Into<String>, inner: Vec<FieldHint>) -> FieldHint {
        FieldHint {
            name: name.into(),
            nested: Some(inner),
        }
    }
}

// ---------------------------------------------------------------------------
// columns
// ---------------------------------------------------------------------------

/// A string dictionary stored the way columnar formats ship it: one
/// concatenated byte buffer plus `u32` entry offsets. Entry `i` is
/// `bytes[offsets[i] .. offsets[i + 1]]`. Unlike a `Vec<String>`, a unique
/// string costs its bytes plus one offset — not a full heap-string header —
/// so dictionary encoding never loses to the row representation even when
/// every value is distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrDict {
    bytes: String,
    offsets: Vec<u32>,
}

/// `Default` must uphold the `offsets.len() == len() + 1` invariant, so it
/// delegates to [`StrDict::new`] instead of deriving (a derived empty
/// `offsets` would underflow `len()`).
impl Default for StrDict {
    fn default() -> StrDict {
        StrDict::new()
    }
}

impl StrDict {
    /// The empty dictionary.
    pub fn new() -> StrDict {
        StrDict {
            bytes: String::new(),
            offsets: vec![0],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry `i`.
    pub fn get(&self, i: usize) -> &str {
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Appends an entry, returning its code.
    pub fn push(&mut self, s: &str) -> u32 {
        self.bytes.push_str(s);
        let end = u32::try_from(self.bytes.len())
            .expect("string dictionary exceeds the u32 offset space of one batch");
        self.offsets.push(end);
        (self.offsets.len() - 2) as u32
    }

    /// Byte length of entry `i`.
    fn entry_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Physical bytes: the concatenated buffer plus one offset per entry.
    pub fn byte_size(&self) -> usize {
        self.bytes.len() + self.offsets.len() * 4
    }

    /// Iterator over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The raw concatenated buffer and offsets (spill serialization).
    pub(crate) fn raw_parts(&self) -> (&str, &[u32]) {
        (&self.bytes, &self.offsets)
    }

    /// Rebuilds a dictionary from its raw buffers (spill deserialization).
    pub(crate) fn from_raw(bytes: String, offsets: Vec<u32>) -> StrDict {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, bytes.len());
        StrDict { bytes, offsets }
    }
}

/// The elements of a [`Column::Bag`]: either a child batch (every element is
/// a tuple — the common, fully columnar case) or a plain value vector.
#[derive(Debug, Clone)]
pub enum BagElems {
    /// All elements are tuples; they form a child batch shared by the whole
    /// column.
    Rows(Box<Batch>),
    /// Mixed or non-tuple elements, kept as values.
    Values(Vec<Value>),
}

/// One typed column of a [`Batch`].
///
/// Every variant carries an `absent` bitmap (the row's tuple lacked the
/// attribute); the typed variants additionally carry a `nulls` bitmap for
/// explicit `Value::Null` entries, whose data slots hold an arbitrary
/// placeholder.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Values (placeholder where null/absent).
        data: Vec<i64>,
        /// Explicit NULL rows.
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// 64-bit floats.
    Real {
        /// Values (placeholder where null/absent).
        data: Vec<f64>,
        /// Explicit NULL rows.
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// Booleans.
    Bool {
        /// Values (placeholder where null/absent).
        data: Vec<bool>,
        /// Explicit NULL rows.
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// Dates (days since the epoch, like [`Value::Date`]).
    Date {
        /// Values (placeholder where null/absent).
        data: Vec<i64>,
        /// Explicit NULL rows.
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`, whose
    /// bytes are stored (and byte-accounted) once per batch.
    Str {
        /// The distinct string values (concatenated buffer + offsets).
        dict: StrDict,
        /// Per-row dictionary codes (placeholder where null/absent).
        codes: Vec<u32>,
        /// Explicit NULL rows.
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// Offset-encoded nested bags: row `i`'s bag is
    /// `elems[offsets[i] .. offsets[i + 1]]`.
    Bag {
        /// `rows + 1` monotone offsets into `elems`.
        offsets: Vec<u32>,
        /// The flattened elements of every bag in the column.
        elems: BagElems,
        /// Explicit NULL rows (distinct from an empty bag).
        nulls: Bitmap,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
    /// Fallback for values no typed column can hold (labels, nested tuples,
    /// mixed numeric kinds, all-NULL columns): the values verbatim, with
    /// `Value::Null` standing in for NULL rows.
    Other {
        /// The values (NULL rows hold `Value::Null`).
        values: Vec<Value>,
        /// Rows whose tuple lacked the attribute.
        absent: Bitmap,
    },
}

/// Candidate column type while scanning values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Unset,
    Int,
    Real,
    Bool,
    Date,
    Str,
    Bag,
    Mixed,
}

fn kind_of(v: &Value) -> Kind {
    match v {
        Value::Int(_) => Kind::Int,
        Value::Real(_) => Kind::Real,
        Value::Bool(_) => Kind::Bool,
        Value::Date(_) => Kind::Date,
        Value::Str(_) => Kind::Str,
        Value::Bag(_) => Kind::Bag,
        Value::Null => Kind::Unset,
        Value::Label(_) | Value::Tuple(_) => Kind::Mixed,
    }
}

/// Builds a column from per-row slots: `None` = attribute absent,
/// `Some(&Value::Null)` = explicit NULL.
pub(crate) fn build_column(slots: &[Option<&Value>]) -> Column {
    let mut kind = Kind::Unset;
    for v in slots.iter().flatten() {
        let k = kind_of(v);
        kind = match (kind, k) {
            (cur, Kind::Unset) => cur,
            (Kind::Unset, k) => k,
            (cur, k) if cur == k => cur,
            _ => Kind::Mixed,
        };
        if kind == Kind::Mixed {
            break;
        }
    }
    let n = slots.len();
    let mut nulls = Bitmap::zeros(n);
    let mut absent = Bitmap::zeros(n);
    macro_rules! fill_prim {
        ($variant:ident, $t:ty, $default:expr, $pat:pat => $val:expr) => {{
            let mut data: Vec<$t> = Vec::with_capacity(n);
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Some($pat) => data.push($val),
                    Some(Value::Null) => {
                        data.push($default);
                        nulls.set(i);
                    }
                    None => {
                        data.push($default);
                        absent.set(i);
                    }
                    _ => unreachable!("kind scan guaranteed uniform values"),
                }
            }
            Column::$variant {
                data,
                nulls,
                absent,
            }
        }};
    }
    match kind {
        Kind::Int => fill_prim!(Int, i64, 0, Value::Int(x) => *x),
        Kind::Real => fill_prim!(Real, f64, 0.0, Value::Real(x) => *x),
        Kind::Bool => fill_prim!(Bool, bool, false, Value::Bool(x) => *x),
        Kind::Date => fill_prim!(Date, i64, 0, Value::Date(x) => *x),
        Kind::Str => {
            let mut dict = StrDict::new();
            let mut lookup: HashMap<&str, u32> = HashMap::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Some(Value::Str(s)) => {
                        let code = *lookup.entry(s.as_str()).or_insert_with(|| dict.push(s));
                        codes.push(code);
                    }
                    Some(Value::Null) => {
                        codes.push(0);
                        nulls.set(i);
                    }
                    None => {
                        codes.push(0);
                        absent.set(i);
                    }
                    _ => unreachable!("kind scan guaranteed uniform values"),
                }
            }
            Column::Str {
                dict,
                codes,
                nulls,
                absent,
            }
        }
        Kind::Bag => {
            let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
            offsets.push(0);
            let mut elem_refs: Vec<&Value> = Vec::new();
            let mut all_tuples = true;
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Some(Value::Bag(b)) => {
                        for e in b.iter() {
                            all_tuples &= matches!(e, Value::Tuple(_));
                            elem_refs.push(e);
                        }
                    }
                    Some(Value::Null) => nulls.set(i),
                    None => absent.set(i),
                    _ => unreachable!("kind scan guaranteed uniform values"),
                }
                let end = u32::try_from(elem_refs.len())
                    .expect("bag column exceeds the u32 offset space of one batch");
                offsets.push(end);
            }
            let elems = if all_tuples {
                BagElems::Rows(Box::new(Batch::from_row_refs(&elem_refs)))
            } else {
                BagElems::Values(elem_refs.into_iter().cloned().collect())
            };
            Column::Bag {
                offsets,
                elems,
                nulls,
                absent,
            }
        }
        Kind::Unset | Kind::Mixed => {
            let mut values: Vec<Value> = Vec::with_capacity(n);
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Some(v) => values.push((*v).clone()),
                    None => {
                        values.push(Value::Null);
                        absent.set(i);
                    }
                }
            }
            Column::Other { values, absent }
        }
    }
}

fn build_column_owned(slots: &[Option<Value>]) -> Column {
    let refs: Vec<Option<&Value>> = slots.iter().map(Option::as_ref).collect();
    build_column(&refs)
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } | Column::Date { data, .. } => data.len(),
            Column::Real { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Bag { offsets, .. } => offsets.len().saturating_sub(1),
            Column::Other { values, .. } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a typed column from owned values (no absent rows) — the entry
    /// point vectorized expression evaluators use to materialize results.
    pub fn from_values(values: Vec<Value>) -> Column {
        let slots: Vec<Option<&Value>> = values.iter().map(Some).collect();
        build_column(&slots)
    }

    /// A boolean column with no nulls (predicate results).
    pub fn from_bools(data: Vec<bool>) -> Column {
        let n = data.len();
        Column::Bool {
            data,
            nulls: Bitmap::zeros(n),
            absent: Bitmap::zeros(n),
        }
    }

    /// A column holding `n` copies of one value, built by filling the typed
    /// buffer directly — no per-row `Value` clones, no kind scan. Produces
    /// exactly the layout [`Column::from_values`] would for the same rows
    /// (one-entry string dictionaries included), so the constant fast path
    /// is byte-identical to the general one.
    pub fn from_const(v: &Value, n: usize) -> Column {
        match v {
            Value::Int(x) => Column::Int {
                data: vec![*x; n],
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            },
            Value::Real(x) => Column::Real {
                data: vec![*x; n],
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            },
            Value::Bool(x) => Column::Bool {
                data: vec![*x; n],
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            },
            Value::Date(x) => Column::Date {
                data: vec![*x; n],
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            },
            Value::Str(s) => {
                let mut dict = StrDict::new();
                if n > 0 {
                    dict.push(s);
                }
                Column::Str {
                    dict,
                    codes: vec![0; n],
                    nulls: Bitmap::zeros(n),
                    absent: Bitmap::zeros(n),
                }
            }
            // NULL, bags, labels and tuples keep the `from_values` fallback
            // layouts (an all-NULL column is `Other` there too).
            other => Column::from_values(vec![other.clone(); n]),
        }
    }

    /// An all-NULL column of `n` rows — what a column reference absent from
    /// the whole batch evaluates to. Same layout as
    /// `from_values(vec![Value::Null; n])` (the `Other` fallback), without
    /// the per-row build dispatch.
    pub fn null_column(n: usize) -> Column {
        Column::Other {
            values: vec![Value::Null; n],
            absent: Bitmap::zeros(n),
        }
    }

    /// The `i64` buffer when this is a no-null, no-absent integer column
    /// (vectorized fast path).
    pub fn dense_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int {
                data,
                nulls,
                absent,
            } if !nulls.any() && !absent.any() => Some(data),
            _ => None,
        }
    }

    /// The `f64` buffer when this is a no-null, no-absent real column.
    pub fn dense_reals(&self) -> Option<&[f64]> {
        match self {
            Column::Real {
                data,
                nulls,
                absent,
            } if !nulls.any() && !absent.any() => Some(data),
            _ => None,
        }
    }

    /// The `bool` buffer when this is a no-null, no-absent boolean column.
    pub fn dense_bools(&self) -> Option<&[bool]> {
        match self {
            Column::Bool {
                data,
                nulls,
                absent,
            } if !nulls.any() && !absent.any() => Some(data),
            _ => None,
        }
    }

    /// The absent bitmap.
    fn absent(&self) -> &Bitmap {
        match self {
            Column::Int { absent, .. }
            | Column::Real { absent, .. }
            | Column::Bool { absent, .. }
            | Column::Date { absent, .. }
            | Column::Str { absent, .. }
            | Column::Bag { absent, .. }
            | Column::Other { absent, .. } => absent,
        }
    }

    /// True when row `i`'s tuple lacked this attribute.
    pub fn is_absent(&self, i: usize) -> bool {
        self.absent().get(i)
    }

    /// True when any row lacks this attribute.
    pub fn has_absent(&self) -> bool {
        self.absent().any()
    }

    /// Number of rows whose tuple carries the attribute (present, possibly
    /// NULL).
    pub fn present_count(&self) -> usize {
        self.len() - self.absent().count_ones()
    }

    /// The value of row `i`; `None` when the attribute is absent from that
    /// row's tuple.
    pub fn value_at(&self, i: usize) -> Option<Value> {
        if self.is_absent(i) {
            return None;
        }
        Some(match self {
            Column::Int { data, nulls, .. } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            Column::Real { data, nulls, .. } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Real(data[i])
                }
            }
            Column::Bool { data, nulls, .. } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            Column::Date { data, nulls, .. } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Date(data[i])
                }
            }
            Column::Str {
                dict, codes, nulls, ..
            } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Str(dict.get(codes[i] as usize).to_string())
                }
            }
            Column::Bag {
                offsets,
                elems,
                nulls,
                ..
            } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                    let items: Vec<Value> = match elems {
                        BagElems::Rows(b) => (lo..hi).map(|j| b.row_value(j)).collect(),
                        BagElems::Values(v) => v[lo..hi].to_vec(),
                    };
                    Value::Bag(Bag::new(items))
                }
            }
            Column::Other { values, .. } => values[i].clone(),
        })
    }

    /// Reinterprets absent rows as explicit NULLs. Projection outputs always
    /// set every attribute they compute, so absence collapses to NULL there
    /// (exactly what `Tuple::get(..) -> None -> NULL` does on the row path).
    pub fn absent_as_null(&self) -> Column {
        let mut out = self.clone();
        match &mut out {
            Column::Int { nulls, absent, .. }
            | Column::Real { nulls, absent, .. }
            | Column::Bool { nulls, absent, .. }
            | Column::Date { nulls, absent, .. }
            | Column::Str { nulls, absent, .. }
            | Column::Bag { nulls, absent, .. } => {
                for i in 0..absent.len() {
                    if absent.get(i) {
                        nulls.set(i);
                    }
                }
                *absent = Bitmap::zeros(nulls.len());
            }
            Column::Other { values, absent } => {
                // Absent slots already hold `Value::Null` placeholders.
                let n = values.len();
                *absent = Bitmap::zeros(n);
            }
        }
        out
    }

    /// Gathers rows by index. `None` entries produce an absent row when
    /// `none_absent` is set, else an explicit NULL row — the two
    /// null-extension flavours of outer joins.
    pub fn gather(&self, idx: &[Option<usize>], none_absent: bool) -> Column {
        let n = idx.len();
        let mut out_nulls = Bitmap::zeros(n);
        let mut out_absent = Bitmap::zeros(n);
        let fill_missing = |slot: usize, bm_nulls: &mut Bitmap, bm_absent: &mut Bitmap| {
            if none_absent {
                bm_absent.set(slot);
            } else {
                bm_nulls.set(slot);
            }
        };
        // One loop body serves every primitive vector; only the variant and
        // the placeholder differ.
        macro_rules! gather_prim {
            ($variant:ident, $data:expr, $nulls:expr, $absent:expr, $default:expr) => {{
                let mut out = Vec::with_capacity(n);
                for (slot, ix) in idx.iter().enumerate() {
                    match ix {
                        Some(i) => {
                            out.push($data[*i]);
                            if $nulls.get(*i) {
                                out_nulls.set(slot);
                            }
                            if $absent.get(*i) {
                                out_absent.set(slot);
                            }
                        }
                        None => {
                            out.push($default);
                            fill_missing(slot, &mut out_nulls, &mut out_absent);
                        }
                    }
                }
                Column::$variant {
                    data: out,
                    nulls: out_nulls,
                    absent: out_absent,
                }
            }};
        }
        match self {
            Column::Int {
                data,
                nulls,
                absent,
            } => gather_prim!(Int, data, nulls, absent, 0),
            Column::Date {
                data,
                nulls,
                absent,
            } => gather_prim!(Date, data, nulls, absent, 0),
            Column::Real {
                data,
                nulls,
                absent,
            } => gather_prim!(Real, data, nulls, absent, 0.0),
            Column::Bool {
                data,
                nulls,
                absent,
            } => gather_prim!(Bool, data, nulls, absent, false),
            Column::Str {
                dict,
                codes,
                nulls,
                absent,
            } => {
                // Shrink the dictionary to the codes that survive the gather
                // so the physical accounting stays exact after filters.
                let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
                let mut out_dict = StrDict::new();
                let mut out_codes: Vec<u32> = Vec::with_capacity(n);
                for (slot, ix) in idx.iter().enumerate() {
                    match ix {
                        Some(i) => {
                            if nulls.get(*i) {
                                out_nulls.set(slot);
                                out_codes.push(0);
                            } else if absent.get(*i) {
                                out_absent.set(slot);
                                out_codes.push(0);
                            } else {
                                let old = codes[*i] as usize;
                                if remap[old] == u32::MAX {
                                    remap[old] = out_dict.push(dict.get(old));
                                }
                                out_codes.push(remap[old]);
                            }
                        }
                        None => {
                            out_codes.push(0);
                            fill_missing(slot, &mut out_nulls, &mut out_absent);
                        }
                    }
                }
                Column::Str {
                    dict: out_dict,
                    codes: out_codes,
                    nulls: out_nulls,
                    absent: out_absent,
                }
            }
            Column::Bag {
                offsets,
                elems,
                nulls,
                absent,
            } => {
                let mut out_offsets: Vec<u32> = Vec::with_capacity(n + 1);
                out_offsets.push(0);
                let mut elem_idx: Vec<Option<usize>> = Vec::new();
                for (slot, ix) in idx.iter().enumerate() {
                    match ix {
                        Some(i) => {
                            if nulls.get(*i) {
                                out_nulls.set(slot);
                            } else if absent.get(*i) {
                                out_absent.set(slot);
                            } else {
                                for j in offsets[*i] as usize..offsets[*i + 1] as usize {
                                    elem_idx.push(Some(j));
                                }
                            }
                        }
                        None => fill_missing(slot, &mut out_nulls, &mut out_absent),
                    }
                    out_offsets.push(elem_idx.len() as u32);
                }
                let out_elems = match elems {
                    BagElems::Rows(b) => BagElems::Rows(Box::new(b.take_opt(&elem_idx, true))),
                    BagElems::Values(v) => BagElems::Values(
                        elem_idx
                            .iter()
                            .map(|j| v[j.expect("bag element gathers are dense")].clone())
                            .collect(),
                    ),
                };
                Column::Bag {
                    offsets: out_offsets,
                    elems: out_elems,
                    nulls: out_nulls,
                    absent: out_absent,
                }
            }
            Column::Other { values, absent } => {
                let mut out = Vec::with_capacity(n);
                for (slot, ix) in idx.iter().enumerate() {
                    match ix {
                        Some(i) => {
                            out.push(values[*i].clone());
                            if absent.get(*i) {
                                out_absent.set(slot);
                            }
                        }
                        None => {
                            out.push(Value::Null);
                            fill_missing(slot, &mut out_nulls, &mut out_absent);
                        }
                    }
                }
                // `Other` has no separate null bitmap: a NULL extension keeps
                // the explicit `Value::Null` entry.
                Column::Other {
                    values: out,
                    absent: out_absent,
                }
            }
        }
    }

    /// Appends `other` in place when the variants are compatible; returns
    /// `false` (leaving `self` unspecified-but-valid) when the caller must
    /// rebuild from values instead.
    fn append(&mut self, other: &Column) -> bool {
        fn extend_bitmap(dst: &mut Bitmap, src: &Bitmap) {
            for i in 0..src.len() {
                dst.push(src.get(i));
            }
        }
        // The four primitive vectors share one append body.
        macro_rules! append_prim {
            ($data:ident, $nulls:ident, $absent:ident, $d2:ident, $n2:ident, $a2:ident) => {{
                $data.extend_from_slice($d2);
                extend_bitmap($nulls, $n2);
                extend_bitmap($absent, $a2);
                true
            }};
        }
        match (self, other) {
            (
                Column::Int {
                    data,
                    nulls,
                    absent,
                },
                Column::Int {
                    data: d2,
                    nulls: n2,
                    absent: a2,
                },
            ) => append_prim!(data, nulls, absent, d2, n2, a2),
            (
                Column::Date {
                    data,
                    nulls,
                    absent,
                },
                Column::Date {
                    data: d2,
                    nulls: n2,
                    absent: a2,
                },
            ) => append_prim!(data, nulls, absent, d2, n2, a2),
            (
                Column::Real {
                    data,
                    nulls,
                    absent,
                },
                Column::Real {
                    data: d2,
                    nulls: n2,
                    absent: a2,
                },
            ) => append_prim!(data, nulls, absent, d2, n2, a2),
            (
                Column::Bool {
                    data,
                    nulls,
                    absent,
                },
                Column::Bool {
                    data: d2,
                    nulls: n2,
                    absent: a2,
                },
            ) => append_prim!(data, nulls, absent, d2, n2, a2),
            (
                Column::Str {
                    dict,
                    codes,
                    nulls,
                    absent,
                },
                Column::Str {
                    dict: dict2,
                    codes: codes2,
                    nulls: n2,
                    absent: a2,
                },
            ) => {
                let lookup: HashMap<&str, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s, i as u32))
                    .collect();
                // Entries of `dict2` are distinct among themselves, so a
                // fresh (unseen) entry never needs to be looked up again.
                let mut remap: Vec<u32> = Vec::with_capacity(dict2.len());
                let mut fresh: Vec<String> = Vec::new();
                for s in dict2.iter() {
                    match lookup.get(s) {
                        Some(code) => remap.push(*code),
                        None => {
                            remap.push((dict.len() + fresh.len()) as u32);
                            fresh.push(s.to_string());
                        }
                    }
                }
                drop(lookup);
                for s in fresh {
                    dict.push(&s);
                }
                for (i, c) in codes2.iter().enumerate() {
                    if n2.get(i) || a2.get(i) {
                        codes.push(0);
                    } else {
                        codes.push(remap[*c as usize]);
                    }
                }
                extend_bitmap(nulls, n2);
                extend_bitmap(absent, a2);
                true
            }
            (
                Column::Bag {
                    offsets,
                    elems,
                    nulls,
                    absent,
                },
                Column::Bag {
                    offsets: o2,
                    elems: e2,
                    nulls: n2,
                    absent: a2,
                },
            ) => {
                match (elems, e2) {
                    (BagElems::Rows(b1), BagElems::Rows(b2)) => {
                        let merged = Batch::concat(&[std::mem::take(b1.as_mut()), (**b2).clone()]);
                        **b1 = merged;
                    }
                    (BagElems::Values(v1), BagElems::Values(v2)) => {
                        v1.extend(v2.iter().cloned());
                    }
                    _ => return false,
                }
                let base = *offsets.last().expect("offsets start at 0");
                offsets.extend(o2.iter().skip(1).map(|o| o + base));
                extend_bitmap(nulls, n2);
                extend_bitmap(absent, a2);
                true
            }
            (
                Column::Other { values, absent },
                Column::Other {
                    values: v2,
                    absent: a2,
                },
            ) => {
                values.extend(v2.iter().cloned());
                extend_bitmap(absent, a2);
                true
            }
            _ => false,
        }
    }

    /// Exact physical bytes of the column's buffers. Validity bitmaps are
    /// charged only when they carry a set bit — an all-valid column ships
    /// without them, as in real columnar wire formats.
    pub fn physical_bytes(&self) -> usize {
        fn bitmaps(nulls: &Bitmap, absent: &Bitmap) -> usize {
            let mut total = 0;
            if nulls.any() {
                total += nulls.byte_size();
            }
            if absent.any() {
                total += absent.byte_size();
            }
            total
        }
        match self {
            Column::Int {
                data,
                nulls,
                absent,
            }
            | Column::Date {
                data,
                nulls,
                absent,
            } => data.len() * 8 + bitmaps(nulls, absent),
            Column::Real {
                data,
                nulls,
                absent,
            } => data.len() * 8 + bitmaps(nulls, absent),
            Column::Bool {
                data,
                nulls,
                absent,
            } => data.len() + bitmaps(nulls, absent),
            Column::Str {
                dict,
                codes,
                nulls,
                absent,
            } => codes.len() * 4 + dict.byte_size() + bitmaps(nulls, absent),
            Column::Bag {
                offsets,
                elems,
                nulls,
                absent,
            } => {
                let elem_bytes = match elems {
                    BagElems::Rows(b) => b.physical_bytes(),
                    BagElems::Values(v) => v.iter().map(MemSize::mem_size).sum(),
                };
                offsets.len() * 4 + elem_bytes + bitmaps(nulls, absent)
            }
            Column::Other { values, absent } => {
                values.iter().map(MemSize::mem_size).sum::<usize>()
                    + if absent.any() { absent.byte_size() } else { 0 }
            }
        }
    }

    /// Row-equivalent bytes of the column's *values* (the contribution the
    /// same data would make to `Value::mem_size` as tuple fields), excluding
    /// the per-field name/slot overhead, which the batch accounts from the
    /// schema and the present counts.
    fn logical_value_bytes(&self) -> usize {
        match self {
            Column::Int { absent, .. }
            | Column::Date { absent, .. }
            | Column::Real { absent, .. }
            | Column::Bool { absent, .. } => (self.len() - absent.count_ones()) * 8,
            Column::Str {
                dict,
                codes,
                nulls,
                absent,
            } => {
                let mut total = 0usize;
                for (i, c) in codes.iter().enumerate() {
                    if absent.get(i) {
                        continue;
                    }
                    total += if nulls.get(i) {
                        8
                    } else {
                        24 + dict.entry_len(*c as usize)
                    };
                }
                total
            }
            Column::Bag {
                offsets,
                elems,
                nulls,
                absent,
            } => {
                let n = offsets.len().saturating_sub(1);
                let present = n - absent.count_ones();
                let null_rows = nulls.count_ones();
                let elem_bytes = match elems {
                    BagElems::Rows(b) => b.logical_bytes(),
                    BagElems::Values(v) => v.iter().map(MemSize::mem_size).sum(),
                };
                (present - null_rows) * 24 + null_rows * 8 + elem_bytes
            }
            Column::Other { values, absent } => values
                .iter()
                .enumerate()
                .filter(|(i, _)| !absent.get(*i))
                .map(|(_, v)| v.mem_size())
                .sum(),
        }
    }
}

// ---------------------------------------------------------------------------
// batches
// ---------------------------------------------------------------------------

/// A columnar batch: one partition's rows as `Arc<Schema>` + typed columns.
///
/// Columns are `Arc`-shared: operators that keep a column untouched
/// (projection pass-through, column extension, renaming, expression
/// references) copy a pointer, not the buffers.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl Batch {
    /// The empty batch (no rows, no attributes).
    pub fn empty() -> Batch {
        Batch::default()
    }

    /// Builds a batch from row values. Tuples become columns under the union
    /// of their attribute names (first-occurrence order); if any row is not a
    /// tuple the whole batch is stored *opaque* (values verbatim).
    pub fn from_rows(rows: &[Value]) -> Batch {
        let refs: Vec<&Value> = rows.iter().collect();
        Batch::from_row_refs(&refs)
    }

    /// [`Batch::from_rows`] over borrowed rows.
    pub fn from_row_refs(rows: &[&Value]) -> Batch {
        Batch::from_row_refs_hinted(rows, &[])
    }

    /// Builds a batch whose leading columns follow the planner's field hints
    /// (see [`FieldHint`]): hinted fields come first in hint order, and a
    /// hinted bag-valued field becomes a [`Column::Bag`] even when every row
    /// holds NULL or no data at all — batches typed from plan schemas, not
    /// only from sampled values.
    pub fn from_row_refs_hinted(rows: &[&Value], hints: &[FieldHint]) -> Batch {
        if rows.is_empty() {
            let fields: Vec<String> = hints.iter().map(|h| h.name.clone()).collect();
            let columns = hints
                .iter()
                .map(|h| Arc::new(empty_hinted_column(h)))
                .collect();
            return Batch {
                schema: Arc::new(Schema::new(fields)),
                columns,
                rows: 0,
            };
        }
        if rows.iter().any(|r| !matches!(r, Value::Tuple(_))) {
            return Batch {
                schema: Arc::new(Schema::opaque()),
                columns: vec![Arc::new(Column::Other {
                    values: rows.iter().map(|r| (*r).clone()).collect(),
                    absent: Bitmap::zeros(rows.len()),
                })],
                rows: rows.len(),
            };
        }
        // Field order: a topological merge of the rows' attribute orders
        // (hint fields lead), so every set of rows with *consistent* relative
        // orders — even when individual rows skip attributes — round-trips
        // with its order intact. Conflicting orders normalize to the merged
        // order, breaking ties by first occurrence.
        let fields = merge_field_order(rows, hints);
        let index: HashMap<&str, usize> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.as_str(), i))
            .collect();
        let mut slots: Vec<Vec<Option<&Value>>> = vec![vec![None; rows.len()]; fields.len()];
        for (r, row) in rows.iter().enumerate() {
            if let Value::Tuple(t) = row {
                for (name, value) in t.fields() {
                    slots[index[name.as_str()]][r] = Some(value);
                }
            }
        }
        let columns: Vec<Arc<Column>> = fields
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let col = build_column(&slots[c]);
                Arc::new(match hints.iter().find(|h| h.name == *name) {
                    Some(FieldHint {
                        nested: Some(inner),
                        ..
                    }) => coerce_to_bag(col, inner),
                    _ => col,
                })
            })
            .collect();
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns,
            rows: rows.len(),
        }
    }

    /// Rebuilds a batch from its raw parts (spill deserialization): the
    /// exact schema (opaque flag included) and the decoded columns.
    pub(crate) fn from_raw(schema: Arc<Schema>, columns: Vec<Arc<Column>>, rows: usize) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == rows) || schema.is_opaque());
        Batch {
            schema,
            columns,
            rows,
        }
    }

    /// Builds a batch directly from columns (all of length `rows`).
    pub fn from_columns(fields: Vec<String>, columns: Vec<Column>, rows: usize) -> Batch {
        debug_assert_eq!(fields.len(), columns.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns: columns.into_iter().map(Arc::new).collect(),
            rows,
        }
    }

    /// A batch of `rows` empty tuples (used for the plan `Unit` input).
    pub fn unit(rows: usize) -> Batch {
        Batch {
            schema: Arc::new(Schema::new(Vec::new())),
            columns: Vec::new(),
            rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The columns, in schema order (`Arc`-shared).
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// The column of attribute `name`.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| self.columns[i].as_ref())
    }

    /// The shared handle of attribute `name`'s column — a pointer copy, the
    /// cheap path for expression references.
    pub fn column_arc(&self, name: &str) -> Option<Arc<Column>> {
        self.schema.index_of(name).map(|i| self.columns[i].clone())
    }

    /// The value of attribute `name` in row `i` (`None` when the attribute is
    /// absent from that row).
    pub fn value_at(&self, i: usize, name: &str) -> Option<Value> {
        self.column(name).and_then(|c| c.value_at(i))
    }

    /// Materializes row `i` as a [`Value`]: a tuple of the present attributes
    /// in schema order, or the stored value verbatim for opaque batches.
    pub fn row_value(&self, i: usize) -> Value {
        if self.schema.is_opaque() {
            if let Column::Other { values, .. } = self.columns[0].as_ref() {
                return values[i].clone();
            }
            unreachable!("opaque batches hold a single value column");
        }
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(self.columns.len());
        for (name, col) in self.schema.fields().iter().zip(&self.columns) {
            if let Some(v) = col.value_at(i) {
                fields.push((name.clone(), v));
            }
        }
        Value::Tuple(Tuple::new(fields))
    }

    /// Materializes every row (the collect boundary back to the row world).
    pub fn to_rows(&self) -> Vec<Value> {
        (0..self.rows).map(|i| self.row_value(i)).collect()
    }

    /// Gathers the given rows into a new batch.
    pub fn take(&self, idx: &[usize]) -> Batch {
        let opt: Vec<Option<usize>> = idx.iter().map(|i| Some(*i)).collect();
        self.take_opt(&opt, true)
    }

    /// Gathers rows with optional indices: `None` rows come out all-absent
    /// (`none_absent`) or all-NULL — the right-side null extension of outer
    /// joins.
    pub fn take_opt(&self, idx: &[Option<usize>], none_absent: bool) -> Batch {
        let columns: Vec<Arc<Column>> = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(idx, none_absent)))
            .collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: idx.len(),
        }
    }

    /// Keeps the rows whose mask bit is set.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.rows);
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.then_some(i))
            .collect();
        self.take(&idx)
    }

    /// Concatenates batches into one. Batches with identical schemas append
    /// column buffers directly; mixed schemas fall back to a value-level
    /// rebuild (the row engine's union cost).
    pub fn concat(batches: &[Batch]) -> Batch {
        let nonempty: Vec<&Batch> = batches.iter().filter(|b| !b.is_empty()).collect();
        match nonempty.len() {
            0 => {
                // Preserve a schema if any input has one.
                return batches
                    .iter()
                    .find(|b| !b.schema.fields().is_empty())
                    .or(batches.first())
                    .cloned()
                    .unwrap_or_default();
            }
            1 => return nonempty[0].clone(),
            _ => {}
        }
        let first = nonempty[0];
        if nonempty.iter().all(|b| b.schema == first.schema)
            || nonempty
                .iter()
                .all(|b| !b.schema.is_opaque() && b.schema.fields() == first.schema.fields())
        {
            let mut columns = first.columns.clone();
            let mut rows = first.rows;
            let mut ok = true;
            'append: for b in &nonempty[1..] {
                for (c, col) in columns.iter_mut().enumerate() {
                    if !Arc::make_mut(col).append(&b.columns[c]) {
                        ok = false;
                        break 'append;
                    }
                }
                rows += b.rows;
            }
            if ok {
                return Batch {
                    schema: first.schema.clone(),
                    columns,
                    rows,
                };
            }
        }
        // Heterogeneous fallback: rebuild from materialized rows.
        let mut rows: Vec<Value> = Vec::with_capacity(nonempty.iter().map(|b| b.rows).sum());
        for b in &nonempty {
            rows.extend(b.to_rows());
        }
        Batch::from_rows(&rows)
    }

    /// Left-to-right tuple concatenation of two same-length batches with the
    /// row engine's overwrite semantics: the output keeps `self`'s attribute
    /// order; where `other` carries the same attribute and the row is
    /// present on the right, the right value wins; `other`-only attributes
    /// are appended.
    pub fn merge_overwrite(&self, other: &Batch) -> Batch {
        debug_assert_eq!(self.rows, other.rows);
        let mut fields: Vec<String> = Vec::new();
        let mut columns: Vec<Arc<Column>> = Vec::new();
        for (name, left_col) in self.schema.fields().iter().zip(&self.columns) {
            match other.column_arc(name) {
                None => {
                    fields.push(name.clone());
                    columns.push(left_col.clone());
                }
                Some(right_col) => {
                    fields.push(name.clone());
                    if !right_col.absent().any() {
                        columns.push(right_col);
                    } else {
                        // Row-wise overwrite: right wins where present.
                        let slots: Vec<Option<Value>> = (0..self.rows)
                            .map(|i| right_col.value_at(i).or_else(|| left_col.value_at(i)))
                            .collect();
                        columns.push(Arc::new(build_column_owned(&slots)));
                    }
                }
            }
        }
        for (name, right_col) in other.schema.fields().iter().zip(&other.columns) {
            if self.schema.index_of(name).is_none() {
                fields.push(name.clone());
                columns.push(right_col.clone());
            }
        }
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns,
            rows: self.rows,
        }
    }

    /// Renames every attribute through `f` — a schema-only operation, the
    /// columnar counterpart of the row engine's per-row `alias.field`
    /// rewrite. Opaque batches become a single column named `value_name`
    /// (the `alias.__value` convention).
    pub fn rename_fields(&self, f: impl Fn(&str) -> String, value_name: &str) -> Batch {
        if self.schema.is_opaque() {
            return Batch {
                schema: Arc::new(Schema::new(vec![value_name.to_string()])),
                columns: self.columns.clone(),
                rows: self.rows,
            };
        }
        let fields: Vec<String> = self.schema.fields().iter().map(|n| f(n)).collect();
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns: self.columns.clone(),
            rows: self.rows,
        }
    }

    /// Keeps only the attributes in `names`, in `names` order, skipping
    /// names the schema lacks — the columnar `Tuple::project`. Columns are
    /// shared, not copied.
    pub fn project_fields(&self, names: &[String]) -> Batch {
        let mut fields: Vec<String> = Vec::with_capacity(names.len());
        let mut columns: Vec<Arc<Column>> = Vec::with_capacity(names.len());
        for name in names {
            if let Some(i) = self.schema.index_of(name) {
                fields.push(name.clone());
                columns.push(self.columns[i].clone());
            }
        }
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns,
            rows: self.rows,
        }
    }

    /// The batch without attribute `name` (no-op when absent).
    pub fn without_column(&self, name: &str) -> Batch {
        match self.schema.index_of(name) {
            None => self.clone(),
            Some(i) => {
                let mut fields = self.schema.fields().to_vec();
                fields.remove(i);
                let mut columns = self.columns.clone();
                columns.remove(i);
                Batch {
                    schema: Arc::new(Schema::new(fields)),
                    columns,
                    rows: self.rows,
                }
            }
        }
    }

    /// Adds or replaces a column with tuple `set` semantics: an existing
    /// attribute keeps its position, a new one is appended. The untouched
    /// columns are shared, so repeated extension is linear, not quadratic.
    pub fn with_column(&self, name: &str, column: Arc<Column>) -> Batch {
        debug_assert_eq!(column.len(), self.rows);
        let mut fields = self.schema.fields().to_vec();
        let mut columns = self.columns.clone();
        match self.schema.index_of(name) {
            Some(i) => columns[i] = column,
            None => {
                fields.push(name.to_string());
                columns.push(column);
            }
        }
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns,
            rows: self.rows,
        }
    }

    /// Adds (or overwrites) `attr` with the engine's coordination-free
    /// unique-id numbering: row `i` of this batch gets
    /// `partition + (start + i) * stride`, where `start` is the number of
    /// rows of the same partition already numbered. Shared by the staged
    /// `with_unique_id` operator (where `start` advances chunk by chunk) and
    /// fused pipelines (where a sequential morsel cursor advances it), so
    /// both executors assign byte-identical ids.
    pub fn with_unique_ids(&self, attr: &str, partition: usize, start: i64, stride: i64) -> Batch {
        let n = self.rows;
        let data: Vec<i64> = (0..n)
            .map(|i| partition as i64 + (start + i as i64) * stride)
            .collect();
        self.with_column(
            attr,
            Arc::new(Column::Int {
                data,
                nulls: Bitmap::zeros(n),
                absent: Bitmap::zeros(n),
            }),
        )
    }

    /// Exact physical bytes of the batch: the column buffers plus the schema
    /// (and each string dictionary) counted **once per batch**.
    pub fn physical_bytes(&self) -> usize {
        self.schema.byte_size()
            + self
                .columns
                .iter()
                .map(|c| c.physical_bytes())
                .sum::<usize>()
    }

    /// Row-equivalent bytes: what the same rows would occupy (and be metered
    /// at) in the row representation, i.e. `Σ Value::mem_size`. Used for the
    /// legacy logical counters, broadcast planning and the simulated memory
    /// cap, so both representations make identical planning decisions.
    pub fn logical_bytes(&self) -> usize {
        if self.schema.is_opaque() {
            if let Column::Other { values, .. } = self.columns[0].as_ref() {
                return values.iter().map(MemSize::mem_size).sum();
            }
        }
        let mut total = self.rows * 16;
        for (name, col) in self.schema.fields().iter().zip(&self.columns) {
            total += col.present_count() * (name.len() + 8) + col.logical_value_bytes();
        }
        total
    }
}

/// Merges the attribute orders of tuple rows (and leading hints) into one
/// schema order: Kahn's topological sort over the adjacency constraints each
/// row contributes, ties broken by first occurrence. Rows with mutually
/// consistent orders reproduce exactly; genuinely conflicting orders get a
/// deterministic normalization (the cycle is broken at the earliest-seen
/// field).
fn merge_field_order(rows: &[&Value], hints: &[FieldHint]) -> Vec<String> {
    // Rows overwhelmingly repeat one attribute sequence: collapse to the
    // *distinct* sequences first (in first-seen order) so the constraint
    // graph is built from a handful of chains, not one chain per row.
    let mut seqs: Vec<Vec<&str>> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<&str>> = std::collections::HashSet::new();
    for row in rows {
        if let Value::Tuple(t) = row {
            let names: Vec<&str> = t.fields().iter().map(|(n, _)| n.as_str()).collect();
            if seen.insert(names.clone()) {
                seqs.push(names);
            }
        }
    }
    if hints.is_empty() && seqs.len() == 1 {
        return seqs.remove(0).into_iter().map(String::from).collect();
    }
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut intern = |name: &str, names: &mut Vec<String>| -> usize {
        if let Some(i) = index.get(name) {
            return *i;
        }
        names.push(name.to_string());
        index.insert(name.to_string(), names.len() - 1);
        names.len() - 1
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut prev: Option<usize> = None;
    for h in hints {
        let i = intern(&h.name, &mut names);
        if let Some(p) = prev {
            edges.push((p, i));
        }
        prev = Some(i);
    }
    for seq in &seqs {
        let mut prev: Option<usize> = None;
        for name in seq {
            let i = intern(name, &mut names);
            if let Some(p) = prev {
                if p != i {
                    edges.push((p, i));
                }
            }
            prev = Some(i);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let n = names.len();
    let mut indegree = vec![0usize; n];
    for (_, v) in &edges {
        indegree[*v] += 1;
    }
    let mut placed = vec![false; n];
    let mut out: Vec<String> = Vec::with_capacity(n);
    while out.len() < n {
        // Lowest first-occurrence node with no remaining predecessors; if
        // none (a cycle of conflicting orders), the earliest remaining node.
        let next = (0..n)
            .find(|i| !placed[*i] && indegree[*i] == 0)
            .or_else(|| (0..n).find(|i| !placed[*i]))
            .expect("unplaced node exists");
        placed[next] = true;
        out.push(names[next].clone());
        for (u, v) in &edges {
            if *u == next && !placed[*v] {
                indegree[*v] = indegree[*v].saturating_sub(1);
            }
        }
    }
    out
}

/// An empty (zero-row) column matching a field hint.
fn empty_hinted_column(hint: &FieldHint) -> Column {
    match &hint.nested {
        Some(inner) => Column::Bag {
            offsets: vec![0],
            elems: BagElems::Rows(Box::new(Batch::from_row_refs_hinted(&[], inner))),
            nulls: Bitmap::zeros(0),
            absent: Bitmap::zeros(0),
        },
        None => Column::Other {
            values: Vec::new(),
            absent: Bitmap::zeros(0),
        },
    }
}

/// Upgrades an all-null/absent fallback column to a typed bag column when the
/// plan schema says the attribute is bag-valued.
fn coerce_to_bag(col: Column, inner: &[FieldHint]) -> Column {
    match &col {
        Column::Bag { .. } => col,
        Column::Other { values, absent } if values.iter().all(|v| matches!(v, Value::Null)) => {
            let n = values.len();
            let mut nulls = Bitmap::zeros(n);
            for i in 0..n {
                if !absent.get(i) {
                    nulls.set(i);
                }
            }
            Column::Bag {
                offsets: vec![0; n + 1],
                elems: BagElems::Rows(Box::new(Batch::from_row_refs_hinted(&[], inner))),
                nulls,
                absent: absent.clone(),
            }
        }
        _ => col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Value> {
        vec![
            Value::tuple([
                ("a", Value::Int(1)),
                ("s", Value::str("x")),
                (
                    "bag",
                    Value::bag(vec![Value::tuple([("k", Value::Int(10))])]),
                ),
            ]),
            Value::tuple([
                ("a", Value::Null),
                ("s", Value::str("x")),
                ("bag", Value::bag(vec![])),
            ]),
            Value::tuple([("a", Value::Int(3)), ("s", Value::str("y"))]),
        ]
    }

    #[test]
    fn round_trip_preserves_rows_nulls_and_absence() {
        let rows = rows();
        let batch = Batch::from_rows(&rows);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.schema().fields(), ["a", "s", "bag"]);
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn string_dictionary_deduplicates() {
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::tuple([("s", Value::str(if i % 2 == 0 { "even" } else { "odd" }))]))
            .collect();
        let batch = Batch::from_rows(&rows);
        match batch.column("s").unwrap() {
            Column::Str { dict, .. } => assert_eq!(dict.len(), 2),
            other => panic!("expected dict column, got {other:?}"),
        }
        assert!(batch.physical_bytes() < batch.logical_bytes());
    }

    #[test]
    fn opaque_batches_hold_non_tuple_rows_verbatim() {
        let rows = vec![Value::Int(1), Value::str("two")];
        let batch = Batch::from_rows(&rows);
        assert!(batch.schema().is_opaque());
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn take_and_filter_gather_nested_bags() {
        let rows = rows();
        let batch = Batch::from_rows(&rows);
        let taken = batch.take(&[2, 0]);
        assert_eq!(taken.to_rows(), vec![rows[2].clone(), rows[0].clone()]);
        let filtered = batch.filter(&[false, true, false]);
        assert_eq!(filtered.to_rows(), vec![rows[1].clone()]);
    }

    #[test]
    fn concat_appends_same_schema_batches() {
        let rows = rows();
        let b1 = Batch::from_rows(&rows[..2]);
        let b2 = Batch::from_rows(&rows[..2]);
        let all = Batch::concat(&[b1, b2]);
        assert_eq!(all.rows(), 4);
        assert_eq!(all.to_rows()[2..], rows[..2]);
    }

    #[test]
    fn hinted_build_types_empty_bag_columns() {
        let rows = vec![Value::tuple([("k", Value::Int(1)), ("items", Value::Null)])];
        let hints = vec![
            FieldHint::scalar("k"),
            FieldHint::bag("items", vec![FieldHint::scalar("x")]),
        ];
        let refs: Vec<&Value> = rows.iter().collect();
        let batch = Batch::from_row_refs_hinted(&refs, &hints);
        assert!(matches!(batch.column("items").unwrap(), Column::Bag { .. }));
        assert_eq!(batch.to_rows(), rows);
    }
}
