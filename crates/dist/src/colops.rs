//! [`ColCollection`]: the columnar counterpart of [`DistCollection`] — a
//! hash-partitioned collection whose partitions are typed [`Batch`]es instead
//! of `Vec<Value>` rows.
//!
//! Every operator mirrors the semantics of its row-engine twin (the
//! differential suites in `trance-compiler` hold the two representations to
//! multiset-identical outputs) while executing over column buffers:
//!
//! * projections/extensions/selections run as whole-batch transforms
//!   ([`ColCollection::map_batches`] / [`ColCollection::filter_mask`]) whose
//!   column expressions are evaluated vectorized by the compiler;
//! * scan renaming (`alias.field`) is a schema rewrite — zero data movement;
//! * unnest gathers parent columns by fan-out index and splices the bag
//!   column's child batch in, all offset arithmetic;
//! * joins gather matched rows from both sides by index lists;
//! * shuffles ship whole batches and meter **exact physical buffer bytes**
//!   (schema and string dictionaries counted once per shipped batch) next to
//!   the row-equivalent logical estimate, so row-vs-columnar byte cells are
//!   directly comparable.
//!
//! Broadcast planning and the simulated per-worker memory cap use the
//! *logical* (row-equivalent) sizes on purpose: both representations make
//! identical planning decisions and fail the same FAIL runs; only the
//! shipped bytes differ.
//!
//! ## Out-of-core execution
//!
//! With the spill subsystem enabled ([`crate::ClusterConfig::with_spill`] +
//! a worker memory cap), a partition is either **resident** (an in-memory
//! batch) or **spilled** (chunked frames in a `trance-store` spill file),
//! and memory pressure spills instead of failing:
//!
//! * **materialize-time governor** — after every operator, the
//!   [`trance_store::MemoryGovernor`] picks victim partitions (largest first
//!   per overloaded worker) and writes them to disk;
//! * **spilling shuffle writers** — a receiving shuffle partition whose
//!   accumulated pieces exceed its share of worker memory is written frame
//!   by frame instead of concatenated in memory;
//! * **external (Grace-style) hash join** — a co-partitioned join whose
//!   inputs exceed the operator budget sub-partitions both sides by a salted
//!   key hash into on-disk buckets and joins the bucket pairs one at a time;
//! * **spilling grouping** — `nest_bag` / `nest_sum` finalization over an
//!   oversized partition sub-partitions by grouping-key hash the same way
//!   (groups never span buckets);
//! * row-local operators (map/filter/unnest and broadcast-join probes)
//!   stream spilled inputs chunk by chunk and overflow their outputs back
//!   to disk once they outgrow the partition budget.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use trance_nrc::{Bag, Tuple, Value};
use trance_store::{ByteReader, ByteWriter, MemoryGovernor, Spillable};

use crate::batch::{Batch, Bitmap, Column, FieldHint};
use crate::error::{ExecError, Result};
use crate::exchange::{allgather_u64, global_sum, owned_range, owner_of_partition, Exchange};
use crate::fault::{with_retry, FaultSite};
use crate::join::{JoinKind, JoinSpec};
use crate::ops::DistCollection;
use crate::partition::{hash_key, hash_value, run_partitioned, PartRows};
use crate::scheduler::MorselCtx;
use crate::spill::{batch_frames, read_batches, spill_batch, SpillChunkWriter, SpilledBatches};
use crate::stats::JoinStrategy;
use crate::{DistContext, JoinHint};

/// Target rows per morsel: resident partitions larger than this split into
/// row-range morsels so the worker pool can balance (and steal) within a
/// partition; spilled partitions already stream in bounded frames.
pub const MORSEL_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// partitions: resident or spilled
// ---------------------------------------------------------------------------

/// One partition of a [`ColCollection`]: resident in memory or spilled to a
/// frame file on disk.
#[derive(Debug, Clone)]
pub(crate) enum ColPart {
    /// Resident batch.
    Mem(Batch),
    /// Disk-resident partition (shared so clones of the collection share one
    /// file; the file is deleted when the last reference drops).
    Spilled(Arc<SpilledBatches>),
}

impl ColPart {
    fn rows(&self) -> usize {
        match self {
            ColPart::Mem(b) => b.rows(),
            ColPart::Spilled(s) => s.rows(),
        }
    }

    /// Bytes currently held in worker memory (0 for spilled partitions).
    fn resident_bytes(&self) -> usize {
        match self {
            ColPart::Mem(b) => b.logical_bytes(),
            ColPart::Spilled(_) => 0,
        }
    }

    fn logical_bytes(&self) -> usize {
        match self {
            ColPart::Mem(b) => b.logical_bytes(),
            ColPart::Spilled(s) => s.logical_bytes(),
        }
    }

    fn physical_bytes(&self) -> usize {
        match self {
            ColPart::Mem(b) => b.physical_bytes(),
            ColPart::Spilled(s) => s.physical_bytes(),
        }
    }

    /// The whole partition as one batch (reads spilled partitions back).
    fn batch<'a>(&'a self, ctx: &DistContext) -> Result<Cow<'a, Batch>> {
        match self {
            ColPart::Mem(b) => Ok(Cow::Borrowed(b)),
            ColPart::Spilled(s) => Ok(Cow::Owned(read_batches(ctx, s)?)),
        }
    }

    /// Streams the partition chunk by chunk without materializing it whole.
    fn chunks<'a>(&'a self, ctx: &'a DistContext) -> Result<ColChunks<'a>> {
        Ok(match self {
            ColPart::Mem(b) => ColChunks::Mem(Some(b)),
            ColPart::Spilled(s) => ColChunks::Spilled(batch_frames(ctx, s)?),
        })
    }
}

impl PartRows for ColPart {
    fn part_rows(&self) -> usize {
        self.rows()
    }
}

/// Chunk iterator over one partition (see [`ColPart::chunks`]).
pub(crate) enum ColChunks<'a> {
    Mem(Option<&'a Batch>),
    Spilled(crate::spill::BatchFrames<'a>),
}

impl Iterator for ColChunks<'_> {
    type Item = Result<Batch>;

    fn next(&mut self) -> Option<Result<Batch>> {
        match self {
            ColChunks::Mem(slot) => slot.take().map(|b| Ok(b.clone())),
            ColChunks::Spilled(frames) => frames.next(),
        }
    }
}

/// The per-partition resident budget: one worker owns
/// `ceil(partitions / workers)` partitions, so a single partition may keep
/// about that share of the worker cap in memory before overflowing to disk.
fn part_budget(ctx: &DistContext) -> usize {
    let limit = ctx.config().worker_memory.unwrap_or(usize::MAX);
    let per_worker = ctx
        .config()
        .partitions
        .max(1)
        .div_ceil(ctx.config().workers.max(1));
    (limit / per_worker.max(1)).max(1)
}

/// The working-set budget of one operator execution (a worker processes one
/// partition at a time) — the governor's policy, defined once in
/// [`MemoryGovernor::operator_budget`].
fn op_budget(ctx: &DistContext) -> usize {
    MemoryGovernor::new(
        ctx.config().worker_memory.unwrap_or(usize::MAX),
        ctx.config().workers,
    )
    .operator_budget()
}

/// Accumulates operator output chunks for one partition: stays in memory
/// until the partition budget is exceeded, then overflows every chunk to a
/// spill file — the write side of every streaming operator.
struct PartBuilder<'a> {
    ctx: &'a DistContext,
    budget: usize,
    mem: Vec<Batch>,
    mem_logical: usize,
    writer: Option<SpillChunkWriter>,
}

impl<'a> PartBuilder<'a> {
    fn new(ctx: &'a DistContext) -> PartBuilder<'a> {
        let budget = if ctx.spill_active() {
            part_budget(ctx)
        } else {
            usize::MAX
        };
        PartBuilder {
            ctx,
            budget,
            mem: Vec::new(),
            mem_logical: 0,
            writer: None,
        }
    }

    fn push(&mut self, chunk: Batch) -> Result<()> {
        if crate::spill::batch_is_void(&chunk) {
            return Ok(());
        }
        if let Some(writer) = self.writer.as_mut() {
            return writer.push(self.ctx, &chunk);
        }
        self.mem_logical += chunk.logical_bytes();
        self.mem.push(chunk);
        if self.mem_logical > self.budget {
            // Overflow: move everything accumulated so far to disk.
            let mut writer = SpillChunkWriter::new(self.ctx)?;
            for chunk in self.mem.drain(..) {
                writer.push(self.ctx, &chunk)?;
            }
            self.mem_logical = 0;
            self.writer = Some(writer);
        }
        Ok(())
    }

    fn finish(self) -> Result<ColPart> {
        match self.writer {
            Some(writer) => Ok(ColPart::Spilled(Arc::new(writer.finish(self.ctx)?))),
            None => Ok(ColPart::Mem(Batch::concat(&self.mem))),
        }
    }
}

/// A distributed collection of columnar [`Batch`]es, one per hash partition.
#[derive(Clone)]
pub struct ColCollection {
    ctx: DistContext,
    parts: Arc<Vec<ColPart>>,
}

impl std::fmt::Debug for ColCollection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColCollection")
            .field("partitions", &self.parts.len())
            .field("rows", &self.len())
            .finish()
    }
}

impl ColCollection {
    fn from_parts(ctx: DistContext, parts: Vec<Batch>) -> Self {
        ColCollection::from_col_parts(ctx, parts.into_iter().map(ColPart::Mem).collect())
    }

    fn from_col_parts(ctx: DistContext, parts: Vec<ColPart>) -> Self {
        ColCollection {
            ctx,
            parts: Arc::new(parts),
        }
    }

    /// Wraps freshly produced operator output, enforcing the per-worker
    /// memory cap (on row-equivalent bytes, exactly like the row engine).
    /// With spilling enabled, the memory governor spills victim partitions
    /// instead of failing.
    fn materialize(ctx: DistContext, parts: Vec<Batch>) -> Result<Self> {
        ColCollection::materialize_parts(ctx, parts.into_iter().map(ColPart::Mem).collect())
    }

    fn materialize_parts(ctx: DistContext, mut parts: Vec<ColPart>) -> Result<Self> {
        if ctx.spill_active() {
            crate::spill::govern_materialized(&ctx, &mut parts, ColPart::resident_bytes, |part| {
                Ok(match part {
                    ColPart::Mem(batch) => ColPart::Spilled(Arc::new(spill_batch(&ctx, batch)?)),
                    ColPart::Spilled(s) => ColPart::Spilled(s.clone()),
                })
            })?;
        } else {
            enforce_memory_col(&ctx, &parts)?;
        }
        Ok(ColCollection::from_col_parts(ctx, parts))
    }

    /// Converts a row collection into batches, partition by partition — the
    /// **scan ingest** boundary, the only place (besides
    /// [`ColCollection::to_rows`]) where the columnar route touches
    /// row values. `hints` come from the plan-layer schema and type columns
    /// the sampled values alone could not; ingest is not metered, matching
    /// the paper's exclusion of input loading.
    pub fn ingest(coll: &DistCollection, hints: &[FieldHint]) -> Result<ColCollection> {
        let mut parts: Vec<Batch> = Vec::with_capacity(coll.num_partitions());
        coll.for_each_partition(|rows| {
            let refs: Vec<&Value> = rows.iter().collect();
            parts.push(Batch::from_row_refs_hinted(&refs, hints));
            Ok(())
        })?;
        Ok(ColCollection::from_parts(coll.context().clone(), parts))
    }

    /// An empty columnar collection over this context's partitions.
    pub fn empty(ctx: &DistContext) -> ColCollection {
        ColCollection::from_parts(
            ctx.clone(),
            vec![Batch::empty(); ctx.config().partitions.max(1)],
        )
    }

    /// A collection holding `batch` in partition 0 (the columnar counterpart
    /// of parallelizing a tiny constant input such as the plan `Unit`).
    pub fn single(ctx: &DistContext, batch: Batch) -> ColCollection {
        let nparts = ctx.config().partitions.max(1);
        let mut parts = vec![Batch::empty(); nparts];
        parts[0] = batch;
        ColCollection::from_parts(ctx.clone(), parts)
    }

    /// The owning context.
    pub fn context(&self) -> &DistContext {
        &self.ctx
    }

    /// Rebinds the collection to another context sharing the same worker
    /// pool (a [`DistContext::session`]): partitions are Arc-shared (spilled
    /// partitions own their files, so they stay readable), and subsequent
    /// operators meter their stats, honour the memory budget and observe the
    /// cancellation token of `ctx` — the serving layer's per-query isolation.
    pub fn with_context(&self, ctx: &DistContext) -> ColCollection {
        ColCollection {
            ctx: ctx.clone(),
            parts: self.parts.clone(),
        }
    }

    /// The partitions loaded as batches (spilled partitions are read back;
    /// resident ones are borrowed). For consumers that genuinely need every
    /// partition at once — streaming consumers use
    /// [`ColCollection::for_each_batch`] instead.
    pub fn batches(&self) -> Result<Vec<Cow<'_, Batch>>> {
        self.parts.iter().map(|p| p.batch(&self.ctx)).collect()
    }

    /// Streams every partition chunk by chunk: at most one decoded spill
    /// frame is resident at a time, so schema inspection over spilled
    /// collections does not re-materialize what the memory cap evicted.
    pub fn for_each_batch(&self, mut f: impl FnMut(&Batch) -> Result<()>) -> Result<()> {
        for part in self.parts.iter() {
            for chunk in part.chunks(&self.ctx)? {
                f(&chunk?)?;
            }
        }
        Ok(())
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Number of partitions currently spilled to disk.
    pub fn spilled_partitions(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| matches!(p, ColPart::Spilled(_)))
            .count()
    }

    /// The attribute names of the first non-empty partition's schema (used
    /// by schema-directed consumers such as distributed unshredding). Under
    /// a cluster exchange the first non-empty partition may live on another
    /// rank: every rank gathers the per-rank answers and takes the first
    /// non-empty one in rank order — with contiguous partition ownership
    /// that is exactly the single-process scan order.
    pub fn first_fields(&self) -> Result<Vec<String>> {
        let local = self.local_first_fields()?;
        let Some(ex) = self.ctx.exchange() else {
            return Ok(local);
        };
        let mut w = ByteWriter::new();
        w.len_u32(local.len(), "schema fields")?;
        for f in &local {
            w.str(f)?;
        }
        for bytes in ex.allgather(w.into_bytes())? {
            let mut r = ByteReader::new(&bytes);
            let n = r.u32()? as usize;
            if n > 0 {
                let mut fields = Vec::with_capacity(r.bounded_capacity(n));
                for _ in 0..n {
                    fields.push(r.str()?);
                }
                return Ok(fields);
            }
        }
        Ok(Vec::new())
    }

    fn local_first_fields(&self) -> Result<Vec<String>> {
        for part in self.parts.iter() {
            if part.rows() == 0 {
                continue;
            }
            for chunk in part.chunks(&self.ctx)? {
                let chunk = chunk?;
                if !chunk.schema().fields().is_empty() {
                    return Ok(chunk.schema().fields().to_vec());
                }
            }
        }
        Ok(Vec::new())
    }

    /// Total number of rows.
    pub fn len(&self) -> usize {
        self.parts.iter().map(ColPart::rows).sum()
    }

    /// True when no partition holds rows.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.rows() == 0)
    }

    /// Row-equivalent (logical) bytes across all partitions — what the same
    /// rows would occupy in the row representation. Drives broadcast
    /// planning and the memory cap.
    pub fn logical_bytes(&self) -> usize {
        self.parts.iter().map(ColPart::logical_bytes).sum()
    }

    /// The logical size planning decisions must use: the cluster-wide sum
    /// when a multi-process exchange is installed (every rank has to pick
    /// the same plan), [`ColCollection::logical_bytes`] otherwise.
    pub fn planning_bytes(&self) -> Result<usize> {
        planning_logical_bytes(self)
    }

    /// Exact physical buffer bytes across all partitions.
    pub fn physical_bytes(&self) -> usize {
        self.parts.iter().map(ColPart::physical_bytes).sum()
    }

    /// Materializes every partition back into the row representation — the
    /// **collect** boundary. Not metered.
    pub fn to_rows(&self) -> Result<DistCollection> {
        let mut parts = Vec::with_capacity(self.parts.len());
        for part in self.parts.iter() {
            parts.push(part.batch(&self.ctx)?.to_rows());
        }
        Ok(DistCollection::from_parts(self.ctx.clone(), parts))
    }

    /// Gathers every row into a [`Bag`].
    pub fn collect_bag(&self) -> Result<Bag> {
        let mut items = Vec::with_capacity(self.len());
        for part in self.parts.iter() {
            for chunk in part.chunks(&self.ctx)? {
                items.extend(chunk?.to_rows());
            }
        }
        Ok(Bag::new(items))
    }

    /// Times `f` under operator name `op` in the context stats.
    pub(crate) fn timed<T>(&self, op: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let start = Instant::now();
        let out = f();
        self.ctx.stats().record_op(op, start.elapsed());
        out
    }

    /// Applies a whole-batch, row-local transform to every partition
    /// (partition-parallel, no shuffle). The compiler's vectorized expression
    /// evaluator drives projections and extensions through this. Spilled
    /// partitions stream chunk by chunk; oversized outputs overflow back to
    /// disk.
    pub fn map_batches<F>(&self, op: &str, f: F) -> Result<ColCollection>
    where
        F: Fn(&Batch) -> Result<Batch> + Send + Sync,
    {
        self.timed(op, || self.transform_streamed(&f))
    }

    /// Keeps the rows whose mask bit is set; `f` produces one bool per row of
    /// the partition batch (vectorized predicate evaluation).
    pub fn filter_mask<F>(&self, f: F) -> Result<ColCollection>
    where
        F: Fn(&Batch) -> Result<Vec<bool>> + Send + Sync,
    {
        self.timed("filter", || self.filter_mask_untimed(&f))
    }

    fn filter_mask_untimed<F>(&self, f: &F) -> Result<ColCollection>
    where
        F: Fn(&Batch) -> Result<Vec<bool>> + Send + Sync,
    {
        self.transform_streamed(&|b: &Batch| {
            let mask = f(b)?;
            Ok(b.filter(&mask))
        })
    }

    /// Shared body of the row-local streaming operators: applies `f` to each
    /// chunk of each partition, accumulating outputs through a
    /// [`PartBuilder`].
    fn transform_streamed<F>(&self, f: &F) -> Result<ColCollection>
    where
        F: Fn(&Batch) -> Result<Batch> + Send + Sync,
    {
        let parts = run_partitioned(&self.ctx, &self.parts, |_, part| {
            let mut builder = PartBuilder::new(&self.ctx);
            for chunk in part.chunks(&self.ctx)? {
                builder.push(f(&chunk?)?)?;
            }
            builder.finish()
        })?;
        ColCollection::materialize_parts(self.ctx.clone(), parts)
    }

    /// Bag union: partitions are concatenated pairwise, no data moves.
    /// Pairs involving a spilled partition are streamed into a fresh spill
    /// file instead of being materialized.
    pub fn union(&self, other: &ColCollection) -> Result<ColCollection> {
        self.timed("union", || {
            let n = self.parts.len().max(other.parts.len());
            let empty = ColPart::Mem(Batch::empty());
            let mut parts = Vec::with_capacity(n);
            for i in 0..n {
                let a = self.parts.get(i).unwrap_or(&empty);
                let b = other.parts.get(i).unwrap_or(&empty);
                match (a, b) {
                    (ColPart::Mem(a), ColPart::Mem(b)) => {
                        parts.push(ColPart::Mem(Batch::concat(&[a.clone(), b.clone()])));
                    }
                    _ => {
                        let mut builder = PartBuilder::new(&self.ctx);
                        for side in [a, b] {
                            for chunk in side.chunks(&self.ctx)? {
                                builder.push(chunk?)?;
                            }
                        }
                        parts.push(builder.finish()?);
                    }
                }
            }
            ColCollection::materialize_parts(self.ctx.clone(), parts)
        })
    }

    /// Distinct rows (set semantics): shuffles by row hash so equal rows meet
    /// in one partition, then deduplicates per partition.
    pub fn distinct(&self) -> Result<ColCollection> {
        self.timed("distinct", || {
            let shuffled = shuffle_batches(&self.ctx, &self.parts, |b, i| {
                Ok(hash_value(&b.row_value(i)))
            })?;
            let parts = run_partitioned(&self.ctx, &shuffled, |_, part| {
                let b = part.batch(&self.ctx)?;
                let mut seen: HashSet<Value> = HashSet::with_capacity(b.rows());
                let mut keep: Vec<usize> = Vec::new();
                for i in 0..b.rows() {
                    if seen.insert(b.row_value(i)) {
                        keep.push(i);
                    }
                }
                Ok(b.take(&keep))
            })?;
            ColCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Adds a globally unique integer id under `attr` without coordination:
    /// row `i` of partition `p` gets `p + i * partitions`.
    pub fn with_unique_id(&self, attr: &str) -> Result<ColCollection> {
        self.timed("with_unique_id", || {
            let stride = self.parts.len().max(1) as i64;
            let parts = run_partitioned(&self.ctx, &self.parts, |p, part| {
                let mut builder = PartBuilder::new(&self.ctx);
                let mut offset = 0i64;
                for chunk in part.chunks(&self.ctx)? {
                    let b = chunk?;
                    tuple_rows_required(&b)?;
                    let out = b.with_unique_ids(attr, p, offset, stride);
                    offset += b.rows() as i64;
                    builder.push(out)?;
                }
                builder.finish()
            })?;
            ColCollection::materialize_parts(self.ctx.clone(), parts)
        })
    }

    /// Unnest (`µ` / outer `µ̄`) of a bag-valued attribute: parent columns are
    /// gathered by fan-out index, the bag column's child batch is spliced in
    /// (renamed to `alias.field` when an alias is given — a schema rewrite).
    /// With `outer`, rows whose bag is empty/NULL keep their parent tuple and
    /// the inner attributes stay absent. Row-local, so spilled partitions
    /// stream and flattening blow-ups overflow straight back to disk.
    pub fn unnest(
        &self,
        bag_attr: &str,
        alias: Option<&str>,
        outer: bool,
    ) -> Result<ColCollection> {
        self.timed("flat_map", || {
            self.transform_streamed(&|b: &Batch| unnest_batch(b, bag_attr, alias, outer))
        })
    }

    /// The `Γ+` aggregation over columns: map-side partial aggregation, a
    /// shuffle of the (small) partial batches by key hash, and a final
    /// reduce. Semantics mirror [`DistCollection::nest_sum`] exactly
    /// (integer sums stay integral, NULL contributes nothing, an all-NULL
    /// group finalizes to 0).
    pub fn nest_sum(&self, key: &[String], values: &[String]) -> Result<ColCollection> {
        self.timed("nest_sum", || self.nest_sum_untimed(key, values))
    }

    fn nest_sum_untimed(&self, key: &[String], values: &[String]) -> Result<ColCollection> {
        // Map-side partials stream chunk by chunk into one accumulator per
        // partition (algebraic aggregation: chunk order cannot matter).
        let partials = run_partitioned(&self.ctx, &self.parts, |_, part| {
            sum_chunks(part.chunks(&self.ctx)?, key, values, false)
        })?;
        let partials: Vec<ColPart> = partials.into_iter().map(ColPart::Mem).collect();
        let shuffled = shuffle_batches(&self.ctx, &partials, |b, i| {
            Ok(hash_key(&routing_key(b, i, key)))
        })?;
        let parts = run_partitioned(&self.ctx, &shuffled, |_, part| {
            self.grouped_part(part, key, |b| sum_batch(b, key, values, true))
        })?;
        ColCollection::materialize_parts(self.ctx.clone(), parts)
    }

    /// The `Γ⊎` grouping over columns: rows shuffle by key hash, then each
    /// partition groups and emits one row per group whose `out_attr` is an
    /// offset-encoded bag column over the projected value columns.
    pub fn nest_bag(
        &self,
        key: &[String],
        value_attrs: &[String],
        out_attr: &str,
    ) -> Result<ColCollection> {
        self.timed("nest_bag", || {
            let shuffled = shuffle_batches(&self.ctx, &self.parts, |b, i| {
                Ok(hash_key(&routing_key(b, i, key)))
            })?;
            let parts = run_partitioned(&self.ctx, &shuffled, |_, part| {
                self.grouped_part(part, key, |b| nest_bag_batch(b, key, value_attrs, out_attr))
            })?;
            ColCollection::materialize_parts(self.ctx.clone(), parts)
        })
    }

    /// Runs a grouping finalizer over one co-partitioned-by-key partition.
    /// Oversized partitions go out-of-core: rows are sub-partitioned by a
    /// salted hash of the grouping key into on-disk buckets (groups never
    /// span buckets) and each bucket is finalized independently.
    fn grouped_part(
        &self,
        part: &ColPart,
        key: &[String],
        finalize: impl Fn(&Batch) -> Result<Batch>,
    ) -> Result<ColPart> {
        let ctx = &self.ctx;
        if !ctx.spill_active() || part.logical_bytes() <= op_budget(ctx) {
            return Ok(ColPart::Mem(finalize(part.batch(ctx)?.as_ref())?));
        }
        let buckets = spill_split(ctx, part, op_budget(ctx), |b, i| {
            Ok(salted(hash_key(&routing_key(b, i, key))))
        })?;
        let mut builder = PartBuilder::new(ctx);
        for bucket in &buckets {
            let b = read_batches(ctx, bucket)?;
            builder.push(finalize(&b)?)?;
        }
        builder.finish()
    }

    /// Distributed equi-join following `spec` (broadcast / shuffle chosen
    /// from the hint or from logical sizes, exactly like the row engine).
    pub fn join(&self, right: &ColCollection, spec: &JoinSpec) -> Result<ColCollection> {
        let path = match spec.hint() {
            JoinHint::Auto => ColJoinPath::Auto,
            JoinHint::BroadcastRight => ColJoinPath::BroadcastRight { skew: false },
            JoinHint::Shuffle => ColJoinPath::Shuffle { skew: false },
        };
        self.timed("join", || join_impl_col(self, right, spec, path))
    }

    /// Skew-aware equi-join (Section 5) over batches: samples the left side's
    /// key frequencies, shuffle-joins the light keys and broadcast-joins the
    /// heavy keys (falling back to a shuffle when the matching right rows
    /// exceed the broadcast limit).
    pub fn skew_join(&self, right: &ColCollection, spec: &JoinSpec) -> Result<ColCollection> {
        self.timed("skew_join", || {
            let heavy = detect_heavy_keys_col(self, spec.left_keys())?;
            if heavy.is_empty() {
                return self.join(right, spec);
            }
            let keys = Arc::new(heavy);
            let (left_light, left_heavy) = split_by_keys_col(self, spec.left_keys(), &keys)?;
            let (right_light, right_heavy) = split_by_keys_col(right, spec.right_keys(), &keys)?;
            let light = left_light.join(&right_light, spec)?;
            let limit = self.ctx.config().broadcast_limit;
            let heavy = if planning_logical_bytes(&right_heavy)? <= limit {
                join_impl_col(
                    &left_heavy,
                    &right_heavy,
                    spec,
                    ColJoinPath::BroadcastRight { skew: true },
                )?
            } else {
                join_impl_col(
                    &left_heavy,
                    &right_heavy,
                    spec,
                    ColJoinPath::Shuffle { skew: true },
                )?
            };
            light.union(&heavy)
        })
    }

    /// Skew-aware `Γ+`: heavy grouping keys aggregate separately from the
    /// light ones, mirroring `SkewTriple::nest_sum`.
    pub fn nest_sum_skew(&self, key: &[String], values: &[String]) -> Result<ColCollection> {
        self.timed("skew_nest_sum", || {
            let heavy = detect_heavy_keys_col(self, key)?;
            if heavy.is_empty() {
                return self.nest_sum(key, values);
            }
            let keys = Arc::new(heavy);
            let (light, heavy) = split_by_keys_col(self, key, &keys)?;
            light
                .nest_sum(key, values)?
                .union(&heavy.nest_sum(key, values)?)
        })
    }

    /// Runs a **fused operator pipeline** morsel-by-morsel on the context's
    /// persistent worker pool: `step` is the batch-at-a-time closure the
    /// compiler fused out of a chain of row-local plan operators
    /// (scan-rename / select / project / extend / unnest / id assignment).
    ///
    /// Each partition feeds its own spill-aware [`PartBuilder`] sink, so
    /// partition alignment is preserved for downstream breakers and
    /// oversized outputs overflow to disk exactly like the staged operators.
    /// When the partition count is too small to keep every worker busy
    /// (fewer than twice the workers), resident partitions larger than
    /// [`MORSEL_ROWS`] additionally split into row-range morsels executed as
    /// independent tasks (a reorder buffer re-assembles them in source
    /// order, keeping the output byte-identical to the staged executor's);
    /// with ample partitions the whole partition is one morsel — slicing
    /// would cost a gather without buying parallelism. Spilled partitions
    /// stream their frames inside one task either way.
    ///
    /// With `sequential` set (the chain assigns per-partition unique ids),
    /// every partition runs as a single task driving its chunks in order
    /// through a [`MorselCtx`] whose counters reproduce the staged
    /// numbering.
    ///
    /// The run is metered as one [`crate::PipelineTiming`] under `label`
    /// with the fused `ops` member list — never as individual member
    /// operators.
    pub fn run_pipeline<F>(
        &self,
        label: &str,
        ops: &[String],
        sequential: bool,
        step: F,
    ) -> Result<ColCollection>
    where
        F: Fn(&Batch, &mut MorselCtx) -> Result<Batch> + Send + Sync,
    {
        let start = Instant::now();
        let ctx = &self.ctx;
        let nparts = self.parts.len().max(1);
        let stride = nparts as i64;
        let morsels = AtomicU64::new(0);
        // Intra-partition splitting only pays when partitions are scarce
        // relative to workers; otherwise a partition is one morsel.
        let split = nparts < 2 * ctx.config().workers.max(1);
        let sinks: Vec<Mutex<ColMorselSink<'_>>> = (0..self.parts.len())
            .map(|_| Mutex::new(ColMorselSink::new(ctx)))
            .collect();

        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (p, part) in self.parts.iter().enumerate() {
            let sink = &sinks[p];
            let step = &step;
            let morsels = &morsels;
            match part {
                // One task per partition: spilled frames must be read in
                // order, and sequential pipelines thread a running cursor.
                ColPart::Spilled(_) => tasks.push(Box::new(move || {
                    let mut cx = MorselCtx::new(p, stride);
                    let mut next = 0usize;
                    let mut run = || -> Result<()> {
                        for chunk in part.chunks(ctx)? {
                            morsels.fetch_add(1, Ordering::Relaxed);
                            let out = run_morsel(ctx, &step, &chunk?, &mut cx)?;
                            sink.lock().unwrap().push(next, out);
                            next += 1;
                        }
                        Ok(())
                    };
                    if let Err(e) = run() {
                        sink.lock().unwrap().fail(e);
                    }
                })),
                ColPart::Mem(batch) if sequential || !split || batch.rows() <= MORSEL_ROWS => tasks
                    .push(Box::new(move || {
                        let mut cx = MorselCtx::new(p, stride);
                        morsels.fetch_add(1, Ordering::Relaxed);
                        match run_morsel(ctx, &step, batch, &mut cx) {
                            Ok(out) => sink.lock().unwrap().push(0, out),
                            Err(e) => sink.lock().unwrap().fail(e),
                        }
                    })),
                // Large resident partition: independent row-range morsels,
                // re-assembled in source order by the sink.
                ColPart::Mem(batch) => {
                    let chunks = batch.rows().div_ceil(MORSEL_ROWS);
                    for m in 0..chunks {
                        tasks.push(Box::new(move || {
                            let lo = m * MORSEL_ROWS;
                            let hi = ((m + 1) * MORSEL_ROWS).min(batch.rows());
                            let idx: Vec<usize> = (lo..hi).collect();
                            let morsel = batch.take(&idx);
                            let mut cx = MorselCtx::new(p, stride);
                            morsels.fetch_add(1, Ordering::Relaxed);
                            match run_morsel(ctx, &step, &morsel, &mut cx) {
                                Ok(out) => sink.lock().unwrap().push(m, out),
                                Err(e) => sink.lock().unwrap().fail(e),
                            }
                        }));
                    }
                }
            }
        }
        // Tiny pipelines run inline on the caller, like every other
        // operator below the parallel threshold.
        let total_rows: usize = self.parts.iter().map(ColPart::rows).sum();
        if ctx.config().workers.max(1) == 1 || total_rows < crate::partition::PARALLEL_THRESHOLD {
            for task in tasks {
                task();
            }
        } else {
            ctx.run_tasks(tasks);
        }

        let mut parts = Vec::with_capacity(self.parts.len());
        for (p, sink) in sinks.into_iter().enumerate() {
            match sink.into_inner().unwrap().finish() {
                Ok(part) => parts.push(part),
                // Lineage recovery: a partition whose morsel outputs were
                // lost to a retry-exhausted transient fault re-runs the
                // whole fused chain over its still-available source
                // partition (fresh draws, fresh sink). A failure here is
                // final and propagates typed.
                Err(e) if e.is_retryable() => {
                    ctx.check_cancel()?;
                    ctx.stats().record_recovered_partition();
                    let mut cx = MorselCtx::new(p, stride);
                    let mut builder = PartBuilder::new(ctx);
                    for chunk in self.parts[p].chunks(ctx)? {
                        morsels.fetch_add(1, Ordering::Relaxed);
                        builder.push(run_morsel(ctx, &step, &chunk?, &mut cx)?)?;
                    }
                    parts.push(builder.finish()?);
                }
                Err(e) => return Err(e),
            }
        }
        ctx.stats()
            .record_pipeline(label, ops, morsels.load(Ordering::Relaxed), start.elapsed());
        ColCollection::materialize_parts(self.ctx.clone(), parts)
    }
}

/// Executes one morsel of a fused pipeline with the fault-tolerance
/// envelope: a cancellation check at the boundary, a fault-injection draw,
/// and bounded retry that rewinds the [`MorselCtx`] id counters before each
/// attempt (a failed attempt must not burn ids, or retried output would
/// diverge from the staged oracle).
fn run_morsel<F>(ctx: &DistContext, step: &F, batch: &Batch, cx: &mut MorselCtx) -> Result<Batch>
where
    F: Fn(&Batch, &mut MorselCtx) -> Result<Batch> + Send + Sync,
{
    ctx.check_cancel()?;
    let saved = cx.save();
    with_retry(ctx, || {
        cx.restore(saved.clone());
        ctx.fault_check(FaultSite::Morsel)?;
        step(batch, cx)
    })
}

/// The per-partition sink of a fused pipeline run: morsel outputs arrive in
/// completion order, a reorder buffer releases them to the spill-aware
/// [`PartBuilder`] in **source order**, so a pipelined partition is
/// byte-identical to its staged twin no matter how morsels were stolen.
struct ColMorselSink<'a> {
    builder: Option<PartBuilder<'a>>,
    next: usize,
    parked: BTreeMap<usize, Batch>,
    error: Option<ExecError>,
}

impl<'a> ColMorselSink<'a> {
    fn new(ctx: &'a DistContext) -> ColMorselSink<'a> {
        ColMorselSink {
            builder: Some(PartBuilder::new(ctx)),
            next: 0,
            parked: BTreeMap::new(),
            error: None,
        }
    }

    fn push(&mut self, idx: usize, batch: Batch) {
        if self.error.is_some() {
            return;
        }
        self.parked.insert(idx, batch);
        while let Some(batch) = self.parked.remove(&self.next) {
            let builder = self
                .builder
                .as_mut()
                .expect("sink builder present until finish");
            if let Err(e) = builder.push(batch) {
                self.error = Some(e);
                self.parked.clear();
                return;
            }
            self.next += 1;
        }
    }

    /// Records the first failure; later morsels of the partition become
    /// no-ops (the error re-raises at `finish`).
    fn fail(&mut self, e: ExecError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn finish(mut self) -> Result<ColPart> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        debug_assert!(self.parked.is_empty(), "morsel indices must be contiguous");
        self.builder.take().expect("sink finished once").finish()
    }
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

fn tuple_rows_required(b: &Batch) -> Result<()> {
    if b.schema().is_opaque() && !b.is_empty() {
        return Err(ExecError::Other(
            "columnar operator requires tuple rows (opaque batch)".into(),
        ));
    }
    Ok(())
}

/// Enforces the simulated per-worker memory cap on freshly materialized
/// batches, charged in row-equivalent bytes so FAIL behaviour matches the
/// row engine. Only reached with spilling off; spilled partitions (left over
/// from a spill-enabled producer) still charge their logical size — turning
/// spilling off mid-pipeline does not grant free memory.
fn enforce_memory_col(ctx: &DistContext, parts: &[ColPart]) -> Result<()> {
    let Some(limit) = ctx.config().worker_memory else {
        return Ok(());
    };
    let workers = ctx.config().workers.max(1);
    let mut used = vec![0usize; workers];
    for (i, part) in parts.iter().enumerate() {
        used[i % workers] += part.logical_bytes();
    }
    for (worker, used_bytes) in used.into_iter().enumerate() {
        if used_bytes > limit {
            return Err(ExecError::MemoryExceeded {
                worker,
                used_bytes,
                limit_bytes: limit,
            });
        }
    }
    Ok(())
}

/// The equi-join / grouping key of one batch row: `None` when any key column
/// is NULL or absent (such rows can never satisfy an equality).
fn key_at(b: &Batch, i: usize, cols: &[String]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for c in cols {
        match b.value_at(i, c) {
            None | Some(Value::Null) => return None,
            Some(v) => key.push(v),
        }
    }
    Some(key)
}

/// Routing key for grouping shuffles: NULL stands in for missing columns
/// (a stable stand-in is enough to route).
fn routing_key(b: &Batch, i: usize, cols: &[String]) -> Vec<Value> {
    cols.iter()
        .map(|c| b.value_at(i, c).unwrap_or(Value::Null))
        .collect()
}

/// The grouping key tuple of a row: key columns in `key` order, missing
/// columns skipped (mirrors the row engine's `project_tuple`).
fn group_key_tuple(b: &Batch, i: usize, key: &[String]) -> Tuple {
    Tuple::new(
        key.iter()
            .filter_map(|c| b.value_at(i, c).map(|v| (c.clone(), v))),
    )
}

/// Salts a routing hash so Grace sub-partitioning decorrelates from the
/// cluster's partition hash (otherwise every row of one hash partition would
/// land in the same sub-bucket).
fn salted(h: u64) -> u64 {
    // splitmix64 finalizer.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sub-partitions one partition into on-disk buckets by a per-row hash —
/// the Grace fan-out shared by the external hash join and the spilling
/// grouping. The fan-out is sized so each bucket fits the operator budget.
fn spill_split<F>(
    ctx: &DistContext,
    part: &ColPart,
    budget: usize,
    route: F,
) -> Result<Vec<SpilledBatches>>
where
    F: Fn(&Batch, usize) -> Result<u64>,
{
    let fanout = (part.logical_bytes() / budget.max(1) + 1)
        .next_power_of_two()
        .clamp(2, 32);
    spill_split_fanout(ctx, part, fanout, route)
}

/// Repartitions batch rows by a per-row hash, metering the move as a shuffle
/// with both logical (row-equivalent) and exact physical buffer bytes.
///
/// This is the **spilling shuffle writer**: resident source partitions ship
/// one piece per target exactly as before, spilled sources stream chunk by
/// chunk, and a receiving partition whose accumulated pieces exceed its
/// budget is written to disk frame by frame instead of concatenated in
/// memory.
fn shuffle_batches<F>(ctx: &DistContext, parts: &[ColPart], route: F) -> Result<Vec<ColPart>>
where
    F: Fn(&Batch, usize) -> Result<u64> + Send + Sync,
{
    let nparts = ctx.config().partitions.max(1);
    let bucketed = run_partitioned(ctx, parts, |_, part| {
        // The shuffle-delivery injection point: a fault fails this source
        // partition's whole routing pass before any piece ships, so a retry
        // rebuilds the delivery from scratch (no partial double send).
        with_retry(ctx, || {
            ctx.fault_check(FaultSite::Shuffle)?;
            let mut shipped: Vec<Vec<Batch>> = vec![Vec::new(); nparts];
            let mut rows = 0u64;
            let mut logical = 0u64;
            let mut physical = 0u64;
            for chunk in part.chunks(ctx)? {
                let b = chunk?;
                rows += b.rows() as u64;
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nparts];
                for i in 0..b.rows() {
                    let target = (route(&b, i)? % nparts as u64) as usize;
                    buckets[target].push(i);
                }
                for (target, idx) in buckets.iter().enumerate() {
                    if idx.is_empty() {
                        continue;
                    }
                    let piece = b.take(idx);
                    logical += piece.logical_bytes() as u64;
                    physical += piece.physical_bytes() as u64;
                    shipped[target].push(piece);
                }
            }
            Ok((shipped, rows, logical, physical))
        })
    })?;
    let mut tuples = 0u64;
    let mut logical = 0u64;
    let mut physical = 0u64;
    let mut shipped_by_source: Vec<Vec<Vec<Batch>>> = Vec::with_capacity(bucketed.len());
    for (shipped, t, l, p) in bucketed {
        tuples += t;
        logical += l;
        physical += p;
        shipped_by_source.push(shipped);
    }
    let received: Vec<Vec<Batch>> = match ctx.exchange() {
        Some(ex) => exchange_shuffle_pieces(ctx, ex.as_ref(), shipped_by_source)?,
        None => {
            let mut received: Vec<Vec<Batch>> = (0..nparts).map(|_| Vec::new()).collect();
            for shipped in shipped_by_source {
                for (target, pieces) in shipped.into_iter().enumerate() {
                    received[target].extend(pieces);
                }
            }
            received
        }
    };
    // Per-rank metering: each rank counts the rows/bytes its own sources
    // routed, so the rank-summed counters equal the single-process totals.
    ctx.stats().record_shuffle(tuples, logical, physical);
    received
        .into_iter()
        .map(|pieces| {
            let total: usize = pieces.iter().map(Batch::logical_bytes).sum();
            if ctx.spill_active() && total > part_budget(ctx) {
                let mut builder = PartBuilder::new(ctx);
                for piece in pieces {
                    builder.push(piece)?;
                }
                builder.finish()
            } else {
                Ok(ColPart::Mem(Batch::concat(&pieces)))
            }
        })
        .collect()
}

/// Routes one local shuffle pass through the cluster [`Exchange`]: pieces
/// addressed to partitions this rank owns stay local, the rest ship to the
/// owning rank as `(source, target, index, batch)` frames, and incoming
/// frames from other ranks land in the same per-target lists. Each owned
/// target's pieces are then sorted by `(source partition, piece index)` —
/// exactly the order the single-process merge produces — so the reorder
/// buffer absorbs out-of-order network delivery and downstream results stay
/// bag-identical to the in-process oracle.
fn exchange_shuffle_pieces(
    ctx: &DistContext,
    ex: &dyn Exchange,
    shipped_by_source: Vec<Vec<Vec<Batch>>>,
) -> Result<Vec<Vec<Batch>>> {
    let nparts = ctx.config().partitions.max(1);
    let (rank, ranks) = (ex.rank(), ex.ranks());
    let owned = owned_range(rank, nparts, ranks);
    let mut tagged: Vec<Vec<(u32, u32, Batch)>> = (0..nparts).map(|_| Vec::new()).collect();
    let mut outgoing: Vec<(usize, Vec<u8>)> = Vec::new();
    for (s, shipped) in shipped_by_source.into_iter().enumerate() {
        for (t, pieces) in shipped.into_iter().enumerate() {
            let owner = owner_of_partition(t, nparts, ranks);
            for (i, piece) in pieces.into_iter().enumerate() {
                if owner == rank {
                    tagged[t].push((s as u32, i as u32, piece));
                } else {
                    let mut w = ByteWriter::new();
                    w.u32(s as u32);
                    w.u32(t as u32);
                    w.u32(i as u32);
                    piece.encode(&mut w)?;
                    outgoing.push((owner, w.into_bytes()));
                }
            }
        }
    }
    for payload in ex.shuffle(outgoing)? {
        let mut r = ByteReader::new(&payload);
        let s = r.u32()?;
        let t = r.u32()? as usize;
        let i = r.u32()?;
        let piece = Batch::decode(&mut r)?;
        if !owned.contains(&t) {
            return Err(ExecError::Other(format!(
                "rank {rank} received a shuffle piece for partition {t} it does not own"
            )));
        }
        tagged[t].push((s, i, piece));
    }
    Ok(tagged
        .into_iter()
        .map(|mut pieces| {
            pieces.sort_by_key(|(s, i, _)| (*s, *i));
            pieces.into_iter().map(|(_, _, b)| b).collect()
        })
        .collect())
}

// ---------------------------------------------------------------------------
// unnest
// ---------------------------------------------------------------------------

fn rename_child(child: &Batch, alias: Option<&str>) -> Batch {
    match alias {
        Some(a) => child.rename_fields(|f| format!("{a}.{f}"), &format!("{a}.__value")),
        None => child.rename_fields(|f| f.to_string(), "__value"),
    }
}

/// Unnests a bag-valued attribute of one batch — the batch-at-a-time kernel
/// behind [`ColCollection::unnest`], exported so the compiler's fused
/// pipelines can splice it into a morsel closure.
pub fn unnest_batch(b: &Batch, bag_attr: &str, alias: Option<&str>, outer: bool) -> Result<Batch> {
    tuple_rows_required(b)?;
    let parent_shape = b.without_column(bag_attr);
    let Some(col) = b.column(bag_attr) else {
        // Every bag is missing → empty; the outer variant keeps the parents.
        return Ok(if outer { parent_shape } else { Batch::empty() });
    };
    match col {
        Column::Bag { offsets, elems, .. } => {
            let mut parent_idx: Vec<usize> = Vec::new();
            let mut child_idx: Vec<Option<usize>> = Vec::new();
            for i in 0..b.rows() {
                let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                if lo == hi {
                    if outer {
                        parent_idx.push(i);
                        child_idx.push(None);
                    }
                    continue;
                }
                for j in lo..hi {
                    parent_idx.push(i);
                    child_idx.push(Some(j));
                }
            }
            let parents = parent_shape.take(&parent_idx);
            let child = match elems {
                crate::batch::BagElems::Rows(elem_batch) => {
                    rename_child(elem_batch, alias).take_opt(&child_idx, true)
                }
                crate::batch::BagElems::Values(values) => {
                    // Mixed / non-tuple elements: fall back to per-element
                    // row merging (the row engine's merge_element).
                    let rows: Vec<Value> = child_idx
                        .iter()
                        .map(|j| match j {
                            Some(j) => values[*j].clone(),
                            None => Value::Null,
                        })
                        .collect();
                    element_rows_to_batch(&rows, &child_idx, alias)
                }
            };
            Ok(parents.merge_overwrite(&child))
        }
        other => {
            // Row-wise fallback for bags stored in a value column; scalars
            // raise the same type error as the row engine.
            let mut out_rows: Vec<Value> = Vec::new();
            for i in 0..b.rows() {
                let parent = parent_shape.row_value(i);
                let bag = match other.value_at(i) {
                    Some(Value::Bag(bag)) => bag,
                    Some(Value::Null) | None => Bag::empty(),
                    Some(v) => {
                        return Err(trance_nrc::NrcError::TypeMismatch {
                            expected: "bag".into(),
                            found: v.kind().into(),
                            context: format!("unnest of {bag_attr}"),
                        }
                        .into())
                    }
                };
                if bag.is_empty() {
                    if outer {
                        out_rows.push(parent);
                    }
                    continue;
                }
                let parent_t = parent.as_tuple()?.clone();
                for elem in bag.iter() {
                    let mut row = parent_t.clone();
                    merge_element_row(&mut row, elem, alias);
                    out_rows.push(Value::Tuple(row));
                }
            }
            Ok(Batch::from_rows(&out_rows))
        }
    }
}

/// Builds the child-side batch for non-tuple bag elements: tuple elements
/// expand into (possibly aliased) fields, other values become
/// `alias.__value`, `None` slots (outer parents) stay absent.
fn element_rows_to_batch(
    rows: &[Value],
    child_idx: &[Option<usize>],
    alias: Option<&str>,
) -> Batch {
    let merged: Vec<Value> = rows
        .iter()
        .zip(child_idx)
        .map(|(elem, j)| {
            if j.is_none() {
                return Value::Tuple(Tuple::empty());
            }
            let mut t = Tuple::empty();
            merge_element_row(&mut t, elem, alias);
            Value::Tuple(t)
        })
        .collect();
    Batch::from_rows(&merged)
}

/// Merges one flattened bag element into a row, renaming its fields to
/// `alias.field` when an alias is present (the row engine's `merge_element`).
fn merge_element_row(row: &mut Tuple, elem: &Value, alias: Option<&str>) {
    match (elem, alias) {
        (Value::Tuple(et), Some(alias)) => {
            for (f, v) in et.iter() {
                row.set(format!("{alias}.{f}"), v.clone());
            }
        }
        (Value::Tuple(et), None) => {
            for (f, v) in et.iter() {
                row.set(f.to_string(), v.clone());
            }
        }
        (other, Some(alias)) => row.set(format!("{alias}.__value"), other.clone()),
        (other, None) => row.set("__value".to_string(), other.clone()),
    }
}

// ---------------------------------------------------------------------------
// grouping
// ---------------------------------------------------------------------------

/// Streaming `Γ+` over a partition's chunks: one accumulation map across all
/// chunks (see [`ColCollection::nest_sum`]). Aggregation is algebraic, so
/// feeding chunks sequentially is exactly the whole-batch result.
fn sum_chunks(
    chunks: ColChunks<'_>,
    key: &[String],
    values: &[String],
    finalize: bool,
) -> Result<Batch> {
    let mut groups: HashMap<Tuple, Vec<Value>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for chunk in chunks {
        let b = chunk?;
        tuple_rows_required(&b)?;
        for i in 0..b.rows() {
            let k = group_key_tuple(&b, i, key);
            let sums = groups.entry(k.clone()).or_insert_with(|| {
                order.push(k);
                vec![Value::Null; values.len()]
            });
            for (slot, name) in sums.iter_mut().zip(values) {
                let v = b.value_at(i, name).unwrap_or(Value::Null);
                *slot = slot.numeric_add(&v)?;
            }
        }
    }
    let mut out_rows = Vec::with_capacity(order.len());
    for k in order {
        let sums = groups.remove(&k).expect("group recorded in order");
        let mut row = k;
        for (name, sum) in values.iter().zip(sums) {
            let sum = match (&sum, finalize) {
                (Value::Null, true) => Value::Int(0),
                _ => sum,
            };
            row.set(name.clone(), sum);
        }
        out_rows.push(Value::Tuple(row));
    }
    Ok(Batch::from_rows(&out_rows))
}

/// One local `Γ+` pass over a single batch.
fn sum_batch(b: &Batch, key: &[String], values: &[String], finalize: bool) -> Result<Batch> {
    sum_chunks(ColChunks::Mem(Some(b)), key, values, finalize)
}

/// One partition's `Γ⊎`: group rows, emit key columns plus an offset-encoded
/// bag column over the projected value columns.
fn nest_bag_batch(
    b: &Batch,
    key: &[String],
    value_attrs: &[String],
    out_attr: &str,
) -> Result<Batch> {
    tuple_rows_required(b)?;
    let mut groups: HashMap<Tuple, Vec<usize>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for i in 0..b.rows() {
        let k = group_key_tuple(b, i, key);
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(i);
    }
    let mut key_rows: Vec<Value> = Vec::with_capacity(order.len());
    let mut offsets: Vec<u32> = Vec::with_capacity(order.len() + 1);
    offsets.push(0);
    let mut elem_idx: Vec<usize> = Vec::new();
    for k in &order {
        let members = &groups[k];
        elem_idx.extend_from_slice(members);
        offsets.push(elem_idx.len() as u32);
        key_rows.push(Value::Tuple(k.clone()));
    }
    let projected = b.project_fields(value_attrs);
    let child = projected.take(&elem_idx);
    let n = key_rows.len();
    let bag_col = Column::Bag {
        offsets,
        elems: crate::batch::BagElems::Rows(Box::new(child)),
        nulls: Bitmap::zeros(n),
        absent: Bitmap::zeros(n),
    };
    Ok(Batch::from_rows(&key_rows).with_column(out_attr, Arc::new(bag_col)))
}

// ---------------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------------

/// Which physical plan the columnar join takes (mirrors the row engine's
/// `JoinPath`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColJoinPath {
    Auto,
    Shuffle { skew: bool },
    BroadcastRight { skew: bool },
}

fn join_impl_col(
    left: &ColCollection,
    right: &ColCollection,
    spec: &JoinSpec,
    path: ColJoinPath,
) -> Result<ColCollection> {
    let limit = left.ctx.config().broadcast_limit;
    match path {
        ColJoinPath::BroadcastRight { skew } => broadcast_right_col(left, right, spec, skew),
        ColJoinPath::Shuffle { skew } => shuffle_join_col(left, right, spec, skew),
        ColJoinPath::Auto => {
            if planning_logical_bytes(right)? <= limit {
                broadcast_right_col(left, right, spec, false)
            } else if spec.kind() == JoinKind::Inner && planning_logical_bytes(left)? <= limit {
                broadcast_left_col(left, right, spec)
            } else {
                shuffle_join_col(left, right, spec, false)
            }
        }
    }
}

/// The right side's output projection: the spec'd fields (existing columns
/// only, like `Tuple::project`) padded with all-absent columns for spec'd
/// fields the data lacks, so a NULL extension can still name them.
fn project_right_batch(b: &Batch, spec: &JoinSpec) -> Batch {
    match spec.right_fields() {
        None => b.clone(),
        Some(fields) => {
            let mut out = b.project_fields(fields);
            for f in fields {
                if out.schema().index_of(f).is_none() {
                    let n = out.rows();
                    let mut absent = Bitmap::zeros(n);
                    for i in 0..n {
                        absent.set(i);
                    }
                    out = out.with_column(
                        f,
                        Arc::new(Column::Other {
                            values: vec![Value::Null; n],
                            absent,
                        }),
                    );
                }
            }
            out
        }
    }
}

/// Whether a missing right match leaves the right fields absent (no
/// projection configured → empty null extension) or explicit NULLs.
fn none_is_absent(spec: &JoinSpec) -> bool {
    spec.right_fields().is_none()
}

/// A collection's logical size for planning decisions: the cluster-wide sum
/// when a multi-process exchange is installed (every rank must take the
/// same join plan), the local size otherwise. Saturates at `usize::MAX` so
/// a huge cluster-wide sum can only make the planner *more* conservative.
fn planning_logical_bytes(coll: &ColCollection) -> Result<usize> {
    match coll.ctx.exchange() {
        Some(ex) => {
            let total = global_sum(ex.as_ref(), coll.logical_bytes() as u64)?;
            Ok(usize::try_from(total).unwrap_or(usize::MAX))
        }
        None => Ok(coll.logical_bytes()),
    }
}

/// Concatenates a (small) broadcast side into one resident batch. Under an
/// exchange, every rank contributes its local concatenation and the
/// rank-ordered gather is concatenated again — with contiguous partition
/// ownership that reproduces exactly the partition-ordered batch the
/// single-process engine builds, so probe outputs stay row-identical.
fn gather_side_batch(ctx: &DistContext, side: &ColCollection) -> Result<Batch> {
    let batches: Vec<Cow<'_, Batch>> = side.batches()?;
    let owned: Vec<Batch> = batches.iter().map(|b| b.as_ref().clone()).collect();
    let local = Batch::concat(&owned);
    match ctx.exchange() {
        Some(ex) => {
            let mut w = ByteWriter::new();
            local.encode(&mut w)?;
            let gathered = ex.allgather(w.into_bytes())?;
            let mut parts = Vec::with_capacity(gathered.len());
            for bytes in &gathered {
                parts.push(Batch::decode(&mut ByteReader::new(bytes))?);
            }
            Ok(Batch::concat(&parts))
        }
        None => Ok(local),
    }
}

fn meter_broadcast_col(ctx: &DistContext, side: &ColCollection, skew: bool) {
    let workers = ctx.config().workers.max(1) as u64;
    ctx.stats().record_broadcast(
        side.len() as u64 * workers,
        side.logical_bytes() as u64 * workers,
        side.physical_bytes() as u64 * workers,
    );
    ctx.stats().record_join(if skew {
        JoinStrategy::SkewBroadcast
    } else {
        JoinStrategy::Broadcast
    });
}

/// Build-side hash table over a single (concatenated) batch.
fn build_table(b: &Batch, cols: &[String]) -> Result<HashMap<Vec<Value>, Vec<usize>>> {
    tuple_rows_required(b)?;
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(b.rows());
    for i in 0..b.rows() {
        if let Some(k) = key_at(b, i, cols) {
            table.entry(k).or_default().push(i);
        }
    }
    Ok(table)
}

/// Gathers one joined partition: matched pairs (and, for left-outer joins,
/// unmatched left rows) in left-row order.
fn gather_joined(
    lbatch: &Batch,
    rproj: &Batch,
    table: &HashMap<Vec<Value>, Vec<usize>>,
    spec: &JoinSpec,
) -> Result<Batch> {
    tuple_rows_required(lbatch)?;
    let mut lidx: Vec<usize> = Vec::new();
    let mut ridx: Vec<Option<usize>> = Vec::new();
    for i in 0..lbatch.rows() {
        match key_at(lbatch, i, spec.left_keys()).and_then(|k| table.get(&k)) {
            Some(matches) => {
                for r in matches {
                    lidx.push(i);
                    ridx.push(Some(*r));
                }
            }
            None => {
                if spec.kind() == JoinKind::LeftOuter {
                    lidx.push(i);
                    ridx.push(None);
                }
            }
        }
    }
    let left_side = lbatch.take(&lidx);
    let right_side = rproj.take_opt(&ridx, none_is_absent(spec));
    Ok(left_side.merge_overwrite(&right_side))
}

fn broadcast_right_col(
    left: &ColCollection,
    right: &ColCollection,
    spec: &JoinSpec,
    skew: bool,
) -> Result<ColCollection> {
    let ctx = left.ctx.clone();
    meter_broadcast_col(&ctx, right, skew);
    // The broadcast side fits under the broadcast limit by construction:
    // concatenate it resident (cluster-wide under an exchange).
    let rbatch = gather_side_batch(&ctx, right)?;
    tuple_rows_required(&rbatch)?;
    let rproj = project_right_batch(&rbatch, spec);
    let table = build_table(&rbatch, spec.right_keys())?;
    let parts = run_partitioned(&ctx, &left.parts, |_, part| {
        let mut builder = PartBuilder::new(&ctx);
        for chunk in part.chunks(&ctx)? {
            builder.push(gather_joined(&chunk?, &rproj, &table, spec)?)?;
        }
        builder.finish()
    })?;
    ColCollection::materialize_parts(ctx, parts)
}

/// Inner-join variant replicating the (small) left side and probing it from
/// the right partitions.
fn broadcast_left_col(
    left: &ColCollection,
    right: &ColCollection,
    spec: &JoinSpec,
) -> Result<ColCollection> {
    let ctx = left.ctx.clone();
    meter_broadcast_col(&ctx, left, false);
    let lbatch = gather_side_batch(&ctx, left)?;
    tuple_rows_required(&lbatch)?;
    let table = build_table(&lbatch, spec.left_keys())?;
    let parts = run_partitioned(&ctx, &right.parts, |_, part| {
        let mut builder = PartBuilder::new(&ctx);
        for chunk in part.chunks(&ctx)? {
            let rbatch = chunk?;
            tuple_rows_required(&rbatch)?;
            let rproj = project_right_batch(&rbatch, spec);
            let mut lidx: Vec<usize> = Vec::new();
            let mut ridx: Vec<Option<usize>> = Vec::new();
            for i in 0..rbatch.rows() {
                if let Some(matches) =
                    key_at(&rbatch, i, spec.right_keys()).and_then(|k| table.get(&k))
                {
                    for l in matches {
                        lidx.push(*l);
                        ridx.push(Some(i));
                    }
                }
            }
            let left_side = lbatch.take(&lidx);
            let right_side = rproj.take_opt(&ridx, none_is_absent(spec));
            builder.push(left_side.merge_overwrite(&right_side))?;
        }
        builder.finish()
    })?;
    ColCollection::materialize_parts(ctx, parts)
}

/// One co-partitioned join pair that exceeds the operator budget: the
/// **external (Grace-style) hash join**. Both sides sub-partition by a
/// salted key hash into on-disk buckets; bucket pairs are then joined one at
/// a time, so the in-memory working set is one bucket pair instead of one
/// partition pair.
fn grace_join_partition(
    ctx: &DistContext,
    lpart: &ColPart,
    rpart: &ColPart,
    spec: &JoinSpec,
) -> Result<ColPart> {
    let budget = op_budget(ctx);
    let route = |cols: &[String]| {
        let cols = cols.to_vec();
        move |b: &Batch, i: usize| -> Result<u64> {
            Ok(salted(hash_key(
                &key_at(b, i, &cols).expect("grace inputs are keyed"),
            )))
        }
    };
    // Both sides must use the same fan-out for bucket pairs to align; size
    // it from the larger side.
    let joint = lpart.logical_bytes().max(rpart.logical_bytes());
    let fanout = (joint / budget.max(1) + 1).next_power_of_two().clamp(2, 32);
    let lbuckets = spill_split_fanout(ctx, lpart, fanout, route(spec.left_keys()))?;
    let rbuckets = spill_split_fanout(ctx, rpart, fanout, route(spec.right_keys()))?;
    let mut builder = PartBuilder::new(ctx);
    for (lb, rb) in lbuckets.iter().zip(&rbuckets) {
        if lb.rows() == 0 {
            continue;
        }
        let rbatch = read_batches(ctx, rb)?;
        let rproj = project_right_batch(&rbatch, spec);
        let table = build_table(&rbatch, spec.right_keys())?;
        for chunk in batch_frames(ctx, lb)? {
            builder.push(gather_joined(&chunk?, &rproj, &table, spec)?)?;
        }
    }
    builder.finish()
}

/// [`spill_split`] with a caller-fixed fan-out (Grace bucket pairs must
/// align across the two join sides).
fn spill_split_fanout<F>(
    ctx: &DistContext,
    part: &ColPart,
    fanout: usize,
    route: F,
) -> Result<Vec<SpilledBatches>>
where
    F: Fn(&Batch, usize) -> Result<u64>,
{
    let mut writers: Vec<SpillChunkWriter> = (0..fanout)
        .map(|_| SpillChunkWriter::new(ctx))
        .collect::<Result<_>>()?;
    for chunk in part.chunks(ctx)? {
        let b = chunk?;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); fanout];
        for i in 0..b.rows() {
            buckets[(route(&b, i)? % fanout as u64) as usize].push(i);
        }
        for (f, idx) in buckets.iter().enumerate() {
            if !idx.is_empty() {
                writers[f].push(ctx, &b.take(idx))?;
            }
        }
    }
    writers.into_iter().map(|w| w.finish(ctx)).collect()
}

fn shuffle_join_col(
    left: &ColCollection,
    right: &ColCollection,
    spec: &JoinSpec,
    skew: bool,
) -> Result<ColCollection> {
    let ctx = left.ctx.clone();
    ctx.stats().record_join(if skew {
        JoinStrategy::SkewFallback
    } else {
        JoinStrategy::Shuffle
    });
    // Left rows with NULL/missing keys can never match: inner joins drop
    // them, outer joins emit them unmatched without shuffling them at all.
    let mut local_unmatched: Option<Batch> = None;
    if spec.kind() == JoinKind::LeftOuter {
        let mut unmatched: Vec<Batch> = Vec::new();
        for part in left.parts.iter() {
            for chunk in part.chunks(&ctx)? {
                let b = chunk?;
                tuple_rows_required(&b)?;
                let mask: Vec<bool> = (0..b.rows())
                    .map(|i| key_at(&b, i, spec.left_keys()).is_none())
                    .collect();
                if mask.iter().any(|m| *m) {
                    let kept = b.filter(&mask);
                    let n = kept.rows();
                    let nulls = project_right_batch(&Batch::empty(), spec)
                        .take_opt(&vec![None; n], none_is_absent(spec));
                    unmatched.push(kept.merge_overwrite(&nulls));
                }
            }
        }
        if !unmatched.is_empty() {
            local_unmatched = Some(Batch::concat(&unmatched));
        }
    }
    let keyed = |coll: &ColCollection, cols: &[String]| -> Result<ColCollection> {
        let cols = cols.to_vec();
        coll.filter_mask_untimed(&|b: &Batch| {
            tuple_rows_required(b)?;
            Ok((0..b.rows())
                .map(|i| key_at(b, i, &cols).is_some())
                .collect())
        })
    };
    let keyed_left = keyed(left, spec.left_keys())?;
    let keyed_right = keyed(right, spec.right_keys())?;
    let lparts = shuffle_batches(&ctx, &keyed_left.parts, |b, i| {
        Ok(hash_key(&key_at(b, i, spec.left_keys()).expect("filtered")))
    })?;
    let rparts = shuffle_batches(&ctx, &keyed_right.parts, |b, i| {
        Ok(hash_key(
            &key_at(b, i, spec.right_keys()).expect("filtered"),
        ))
    })?;
    let mut parts = run_partitioned(&ctx, &lparts, |p, lpart| {
        let rpart = &rparts[p];
        if ctx.spill_active() && lpart.logical_bytes() + rpart.logical_bytes() > op_budget(&ctx) {
            return grace_join_partition(&ctx, lpart, rpart, spec);
        }
        let rbatch = rpart.batch(&ctx)?;
        let rproj = project_right_batch(&rbatch, spec);
        let table = build_table(&rbatch, spec.right_keys())?;
        let mut builder = PartBuilder::new(&ctx);
        for chunk in lpart.chunks(&ctx)? {
            builder.push(gather_joined(&chunk?, &rproj, &table, spec)?)?;
        }
        builder.finish()
    })?;
    if let Some(unmatched) = local_unmatched {
        match parts.first_mut() {
            Some(ColPart::Mem(first)) => {
                *first = Batch::concat(&[std::mem::take(first), unmatched]);
            }
            Some(slot) => {
                let mut builder = PartBuilder::new(&ctx);
                for chunk in slot.chunks(&ctx)? {
                    builder.push(chunk?)?;
                }
                builder.push(unmatched)?;
                *slot = builder.finish()?;
            }
            None => parts.push(ColPart::Mem(unmatched)),
        }
    }
    ColCollection::materialize_parts(ctx, parts)
}

// ---------------------------------------------------------------------------
// skew helpers
// ---------------------------------------------------------------------------

/// Samples key frequencies over batches and returns the keys whose sampled
/// share reaches the cluster's heavy-key threshold (the columnar counterpart
/// of [`crate::skew::detect_heavy_keys`], same deterministic stride).
fn detect_heavy_keys_col(data: &ColCollection, key_cols: &[String]) -> Result<HashSet<Vec<Value>>> {
    let config = data.ctx.config();
    let ex = data.ctx.exchange();
    // Under an exchange, the sample must be the *cluster-wide* one the
    // single-process engine would draw: the global row count sizes the
    // stride, and each rank walks the same global row numbering (its owned
    // partitions are a contiguous block, so its rows start after every
    // lower rank's). The per-rank partial counts are then merged, so every
    // rank derives the identical heavy-key set and the light/heavy splits
    // stay rank-aligned.
    let local_rows = data.len() as u64;
    let (total, start) = match &ex {
        Some(ex) => {
            let rows = allgather_u64(ex.as_ref(), local_rows)?;
            let start: u64 = rows.iter().take(ex.rank()).sum();
            (rows.iter().sum::<u64>(), start)
        }
        None => (local_rows, 0u64),
    };
    if total == 0 {
        return Ok(HashSet::new());
    }
    let sample_target = config.skew_sample.max(1) as u64;
    let stride = (total / sample_target).max(1);
    let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut sampled = 0u64;
    let mut global = start;
    for part in data.parts.iter() {
        for chunk in part.chunks(&data.ctx)? {
            let b = chunk?;
            tuple_rows_required(&b)?;
            for i in 0..b.rows() {
                let pick = global.is_multiple_of(stride);
                global += 1;
                if !pick {
                    continue;
                }
                sampled += 1;
                if let Some(key) = key_at(&b, i, key_cols) {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
    }
    if let Some(ex) = &ex {
        (sampled, counts) = merge_sampled_counts(ex.as_ref(), sampled, counts)?;
    }
    if sampled == 0 {
        return Ok(HashSet::new());
    }
    let threshold = config.heavy_key_threshold();
    let min_count = (threshold * sampled as f64).max(2.0);
    Ok(counts
        .into_iter()
        .filter(|(_, c)| *c as f64 >= min_count)
        .map(|(k, _)| k)
        .collect())
}

/// Allgathers each rank's `(sampled, key → count)` partial sample and merges
/// them additively; every rank returns the same totals.
fn merge_sampled_counts(
    ex: &dyn Exchange,
    sampled: u64,
    counts: HashMap<Vec<Value>, usize>,
) -> Result<(u64, HashMap<Vec<Value>, usize>)> {
    let mut w = ByteWriter::new();
    w.u64(sampled);
    w.len_u32(counts.len(), "sampled keys")?;
    for (key, count) in &counts {
        w.u64(*count as u64);
        w.len_u32(key.len(), "sampled key values")?;
        for v in key {
            trance_store::encode_value(v, &mut w)?;
        }
    }
    let gathered = ex.allgather(w.into_bytes())?;
    let mut total_sampled = 0u64;
    let mut merged: HashMap<Vec<Value>, usize> = HashMap::new();
    for bytes in &gathered {
        let mut r = ByteReader::new(bytes);
        total_sampled += r.u64()?;
        let entries = r.u32()? as usize;
        for _ in 0..entries {
            let count = r.u64()? as usize;
            let klen = r.u32()? as usize;
            let mut key = Vec::with_capacity(r.bounded_capacity(klen));
            for _ in 0..klen {
                key.push(trance_store::decode_value(&mut r)?);
            }
            *merged.entry(key).or_insert(0) += count;
        }
    }
    Ok((total_sampled, merged))
}

/// Splits a collection into (keys not in `keys`, keys in `keys`) without
/// moving rows between partitions.
fn split_by_keys_col(
    data: &ColCollection,
    key_cols: &[String],
    keys: &Arc<HashSet<Vec<Value>>>,
) -> Result<(ColCollection, ColCollection)> {
    let masks = |invert: bool| {
        let keys = Arc::clone(keys);
        let key_cols = key_cols.to_vec();
        move |b: &Batch| -> Result<Vec<bool>> {
            tuple_rows_required(b)?;
            Ok((0..b.rows())
                .map(|i| {
                    let hit = match key_at(b, i, &key_cols) {
                        Some(k) => keys.contains(&k),
                        None => false,
                    };
                    hit != invert
                })
                .collect())
        }
    };
    let light = data.filter_mask_untimed(&masks(true))?;
    let heavy = data.filter_mask_untimed(&masks(false))?;
    Ok((light, heavy))
}
