//! Error type shared by every engine operator.

use std::fmt;

use trance_nrc::NrcError;

/// Errors raised by the distributed engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker's materialized state exceeded the simulated per-worker memory
    /// cap ([`crate::ClusterConfig::with_worker_memory`]). This reproduces the
    /// paper's FAIL entries: strategies whose flattened intermediates blow up
    /// die here instead of finishing.
    MemoryExceeded {
        /// The worker that ran out of memory.
        worker: usize,
        /// Bytes the worker would have had to hold.
        used_bytes: usize,
        /// The configured per-worker cap in bytes.
        limit_bytes: usize,
    },
    /// A row-level evaluation error bubbled up from the NRC value model.
    Nrc(NrcError),
    /// The spill subsystem failed (I/O error or corrupt spill frame). Carries
    /// the rendered error so `ExecError` stays `Clone + PartialEq`.
    Spill(String),
    /// Anything else (unknown inputs, unsupported shapes, ...).
    Other(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemoryExceeded {
                worker,
                used_bytes,
                limit_bytes,
            } => write!(
                f,
                "worker {worker} exceeded its memory cap ({used_bytes} bytes needed, \
                 {limit_bytes} allowed)"
            ),
            ExecError::Nrc(e) => write!(f, "{e}"),
            ExecError::Spill(msg) => write!(f, "spill failure: {msg}"),
            ExecError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Nrc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NrcError> for ExecError {
    fn from(e: NrcError) -> Self {
        ExecError::Nrc(e)
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Spill(e.to_string())
    }
}

/// Result alias used throughout the engine and its callers.
pub type Result<T> = std::result::Result<T, ExecError>;
