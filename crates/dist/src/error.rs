//! The typed error taxonomy shared by every engine operator.
//!
//! Failures fall into four classes, and every recovery decision in the
//! engine keys off them:
//!
//! * **retryable** ([`ExecError::Retryable`]) — transient faults (injected
//!   by a [`crate::FaultPlan`] or a flaky I/O) that bounded per-task retry
//!   and partition recompute are allowed to absorb;
//! * **cancelled** ([`ExecError::Cancelled`]) — the run's
//!   [`crate::CancelToken`] fired (explicit cancel or deadline); never
//!   retried, unwinds cooperatively at the next boundary;
//! * **memory** ([`ExecError::MemoryExceeded`]) — the paper's simulated
//!   FAIL, a *deterministic* planning outcome, never retried;
//! * **fatal** (everything else) — wrong data, corrupt spill frames,
//!   unsupported shapes; retrying cannot help.

use std::fmt;

use trance_nrc::NrcError;

use crate::fault::FaultSite;

/// Errors raised by the distributed engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker's materialized state exceeded the simulated per-worker memory
    /// cap ([`crate::ClusterConfig::with_worker_memory`]). This reproduces the
    /// paper's FAIL entries: strategies whose flattened intermediates blow up
    /// die here instead of finishing. Deterministic — never retried.
    MemoryExceeded {
        /// The worker that ran out of memory.
        worker: usize,
        /// Bytes the worker would have had to hold.
        used_bytes: usize,
        /// The configured per-worker cap in bytes.
        limit_bytes: usize,
    },
    /// A row-level evaluation error bubbled up from the NRC value model.
    Nrc(NrcError),
    /// The spill subsystem failed *non-transiently* (I/O error after a
    /// partial write, corrupt spill frame). Carries the rendered error so
    /// `ExecError` stays `Clone + PartialEq`.
    Spill(String),
    /// A transient failure at a fault-injection site: safe to retry, because
    /// it fired *before* any side effect of the operation. Bounded per-task
    /// retry absorbs these; a retry budget exhausted escalates to partition
    /// recompute, and only then to the caller.
    Retryable {
        /// The boundary the fault fired at.
        site: FaultSite,
        /// Human-readable description of the fault.
        detail: String,
    },
    /// The run was cancelled — explicitly through its
    /// [`crate::CancelToken`] or by an armed deadline elapsing. Observed at
    /// the next morsel or spill-frame boundary; never retried.
    Cancelled {
        /// Why the run was cancelled (`"deadline exceeded"`, a caller's
        /// reason, ...).
        reason: String,
    },
    /// Anything else (unknown inputs, unsupported shapes, ...).
    Other(String),
}

/// The engine-wide error name used by the compiler and harness layers; one
/// taxonomy, two names (`ExecError` predates the fault-tolerance layer).
pub type EngineError = ExecError;

impl ExecError {
    /// True for transient failures that bounded retry / partition recompute
    /// may absorb.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ExecError::Retryable { .. })
    }

    /// True when the run was cancelled (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ExecError::Cancelled { .. })
    }

    /// True for errors no recovery layer is allowed to absorb: wrong data,
    /// deterministic memory FAILs, cancellation, corrupt spill state.
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable()
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemoryExceeded {
                worker,
                used_bytes,
                limit_bytes,
            } => write!(
                f,
                "worker {worker} exceeded its memory cap ({used_bytes} bytes needed, \
                 {limit_bytes} allowed)"
            ),
            ExecError::Nrc(e) => write!(f, "{e}"),
            ExecError::Spill(msg) => write!(f, "spill failure: {msg}"),
            ExecError::Retryable { site, detail } => {
                write!(f, "transient {site} fault: {detail}")
            }
            ExecError::Cancelled { reason } => write!(f, "query cancelled: {reason}"),
            ExecError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Nrc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NrcError> for ExecError {
    fn from(e: NrcError) -> Self {
        ExecError::Nrc(e)
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Spill(e.to_string())
    }
}

/// Result alias used throughout the engine and its callers.
pub type Result<T> = std::result::Result<T, ExecError>;
