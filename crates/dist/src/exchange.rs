//! Cross-process data exchange: the seam the multi-node runtime plugs into.
//!
//! A [`DistContext`](crate::DistContext) optionally carries an [`Exchange`]
//! — a handle to the other worker *processes* of a cluster run. When one is
//! installed, every rank (process) executes the **same** deterministic plan
//! over the **same** full-length partition vector, but only materializes the
//! contiguous block of partitions it owns ([`owned_range`]); non-owned slots
//! hold empty partitions. All cross-partition movement then funnels through
//! two collectives:
//!
//! * [`Exchange::shuffle`] — each rank hands over opaque payloads addressed
//!   to other ranks and receives the payloads addressed to it, in arbitrary
//!   order (the engine tags payloads with their source so receivers can
//!   restore the single-process merge order);
//! * [`Exchange::allgather`] — every rank contributes one payload and
//!   receives all contributions **in rank order** (used for broadcast sides,
//!   global size sums and schema/sample agreement during planning).
//!
//! Because ownership blocks are contiguous and allgather results are
//! rank-ordered, concatenating per-rank contributions reproduces exactly the
//! partition-ordered result the single-process engine computes — which is
//! what the differential suite (`dist_agree` in `trance-net`) asserts.
//!
//! The trait is transport-agnostic: `trance-net` implements it over TCP;
//! [`MemMesh`] here implements it over in-process channels so the
//! distributed execution paths are testable without sockets.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use trance_nrc::Value;

use crate::error::Result;
use crate::{ExecError, FaultSite};

/// A connection to the other ranks of a multi-process run. Implementations
/// must be usable from the driving thread of a query; the engine only calls
/// collectives from plan-aligned points, never from inside worker-pool
/// tasks, so every rank reaches each collective in the same order.
pub trait Exchange: Send + Sync + std::fmt::Debug {
    /// This process's rank in `0..ranks()`.
    fn rank(&self) -> usize;

    /// Number of participating processes.
    fn ranks(&self) -> usize;

    /// All-to-all: ships each `(target_rank, payload)` pair to its target
    /// and returns the payloads other ranks addressed to this one, in
    /// arbitrary order. Every rank must call `shuffle` once per engine
    /// shuffle pass (even with nothing to send).
    fn shuffle(&self, outgoing: Vec<(usize, Vec<u8>)>) -> Result<Vec<Vec<u8>>>;

    /// Contributes `payload` and returns every rank's contribution in rank
    /// order (`result[r]` is rank `r`'s payload, including our own).
    fn allgather(&self, payload: Vec<u8>) -> Result<Vec<Vec<u8>>>;
}

/// First partition of rank `r`'s contiguous ownership block.
fn block_start(rank: usize, partitions: usize, ranks: usize) -> usize {
    rank * partitions / ranks.max(1)
}

/// The contiguous block of partitions rank `rank` owns out of `partitions`
/// total across `ranks` processes. Blocks tile `0..partitions` exactly; a
/// rank beyond the partition count owns an empty range.
pub fn owned_range(rank: usize, partitions: usize, ranks: usize) -> Range<usize> {
    block_start(rank, partitions, ranks)..block_start(rank + 1, partitions, ranks)
}

/// The rank owning partition `part` under the contiguous-block layout of
/// [`owned_range`].
pub fn owner_of_partition(part: usize, partitions: usize, ranks: usize) -> usize {
    debug_assert!(part < partitions);
    // ranks is tiny (a handful of processes): a linear scan is clearer than
    // inverting the flooring division and trivially matches owned_range.
    for r in 0..ranks {
        if owned_range(r, partitions, ranks).contains(&part) {
            return r;
        }
    }
    ranks.saturating_sub(1)
}

/// Allgathers one `u64` per rank, returned in rank order.
pub fn allgather_u64(ex: &dyn Exchange, local: u64) -> Result<Vec<u64>> {
    let parts = ex.allgather(local.to_le_bytes().to_vec())?;
    parts
        .into_iter()
        .map(|bytes| {
            let arr: [u8; 8] = bytes
                .as_slice()
                .try_into()
                .map_err(|_| ExecError::Retryable {
                    site: FaultSite::Shuffle,
                    detail: format!("malformed u64 allgather payload ({} bytes)", bytes.len()),
                })?;
            Ok(u64::from_le_bytes(arr))
        })
        .collect()
}

/// Round-robin input partitioning (row `i` → partition `i % partitions`),
/// the exact layout [`crate::DistContext::parallelize`] produces — exposed
/// so a cluster coordinator can partition inputs identically before
/// shipping each rank the slots it owns.
pub fn split_rows_round_robin(rows: Vec<Value>, partitions: usize) -> Vec<Vec<Value>> {
    crate::partition::split_round_robin(rows, partitions)
}

/// Sums one `u64` per rank: allgathers the local value and adds. Every rank
/// returns the same total, which is how distributed planning guards (size
/// thresholds, broadcast limits) stay rank-aligned.
pub fn global_sum(ex: &dyn Exchange, local: u64) -> Result<u64> {
    Ok(allgather_u64(ex, local)?
        .into_iter()
        .fold(0u64, u64::wrapping_add))
}

// ---------------------------------------------------------------------------
// In-process reference implementation
// ---------------------------------------------------------------------------

/// One collective in flight: deposits accumulate until every rank arrived,
/// then each rank collects its share; the round is dropped once all have.
#[derive(Debug, Default)]
struct MeshRound {
    kind: u8,
    arrived: usize,
    collected: usize,
    /// `shuffle` inboxes, one per rank.
    inboxes: Vec<Vec<Vec<u8>>>,
    /// `allgather` contributions, rank-ordered.
    gathers: Vec<Option<Vec<u8>>>,
}

const KIND_SHUFFLE: u8 = 1;
const KIND_ALLGATHER: u8 = 2;

#[derive(Debug)]
struct MeshInner {
    ranks: usize,
    rounds: Mutex<HashMap<u64, MeshRound>>,
    cond: Condvar,
}

/// An in-process [`Exchange`] mesh: `ranks` handles sharing one rendezvous
/// table. The reference implementation the TCP transport is tested against,
/// and the cheap way to exercise distributed execution paths in unit tests
/// (run each rank's query on its own thread).
#[derive(Debug)]
pub struct MemMesh {
    inner: Arc<MeshInner>,
    rank: usize,
    /// Per-handle collective counter; rank alignment is the caller's
    /// contract, mismatched op kinds at the same sequence number error out.
    seq: AtomicU64,
}

impl MemMesh {
    /// Creates one connected handle per rank.
    pub fn cluster(ranks: usize) -> Vec<MemMesh> {
        let inner = Arc::new(MeshInner {
            ranks: ranks.max(1),
            rounds: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
        });
        (0..ranks.max(1))
            .map(|rank| MemMesh {
                inner: inner.clone(),
                rank,
                seq: AtomicU64::new(0),
            })
            .collect()
    }

    fn collective(
        &self,
        kind: u8,
        deposit: impl FnOnce(&mut MeshRound),
        collect: impl FnOnce(&mut MeshRound) -> Result<Vec<Vec<u8>>>,
    ) -> Result<Vec<Vec<u8>>> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ranks = self.inner.ranks;
        let mut rounds = self.inner.rounds.lock().unwrap_or_else(|e| e.into_inner());
        let round = rounds.entry(seq).or_insert_with(|| MeshRound {
            kind,
            inboxes: vec![Vec::new(); ranks],
            gathers: vec![None; ranks],
            ..MeshRound::default()
        });
        if round.kind != kind {
            return Err(ExecError::Retryable {
                site: FaultSite::Shuffle,
                detail: format!(
                    "exchange desync: rank {} sent op {kind} at round {seq}, peers sent {}",
                    self.rank, round.kind
                ),
            });
        }
        deposit(round);
        round.arrived += 1;
        self.inner.cond.notify_all();
        while rounds.get(&seq).map(|r| r.arrived) != Some(ranks) {
            rounds = self
                .inner
                .cond
                .wait(rounds)
                .unwrap_or_else(|e| e.into_inner());
        }
        let round = rounds
            .get_mut(&seq)
            .expect("round present until all collect");
        let out = collect(round)?;
        round.collected += 1;
        if round.collected == ranks {
            rounds.remove(&seq);
        }
        Ok(out)
    }
}

impl Exchange for MemMesh {
    fn rank(&self) -> usize {
        self.rank
    }

    fn ranks(&self) -> usize {
        self.inner.ranks
    }

    fn shuffle(&self, outgoing: Vec<(usize, Vec<u8>)>) -> Result<Vec<Vec<u8>>> {
        let me = self.rank;
        self.collective(
            KIND_SHUFFLE,
            |round| {
                for (target, payload) in outgoing {
                    round.inboxes[target].push(payload);
                }
            },
            |round| Ok(std::mem::take(&mut round.inboxes[me])),
        )
    }

    fn allgather(&self, payload: Vec<u8>) -> Result<Vec<Vec<u8>>> {
        let me = self.rank;
        self.collective(
            KIND_ALLGATHER,
            |round| round.gathers[me] = Some(payload),
            |round| {
                round
                    .gathers
                    .iter()
                    .map(|g| {
                        g.clone().ok_or_else(|| ExecError::Retryable {
                            site: FaultSite::Shuffle,
                            detail: "allgather contribution missing".into(),
                        })
                    })
                    .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_blocks_tile_the_partition_space() {
        for &(parts, ranks) in &[(8usize, 3usize), (7, 2), (4, 4), (5, 8), (16, 1)] {
            let mut owners = Vec::new();
            for r in 0..ranks {
                for p in owned_range(r, parts, ranks) {
                    owners.push((p, r));
                }
            }
            assert_eq!(owners.len(), parts, "{parts} parts / {ranks} ranks");
            for (p, r) in owners {
                assert_eq!(owner_of_partition(p, parts, ranks), r);
            }
        }
    }

    #[test]
    fn mem_mesh_shuffles_and_gathers() {
        let mesh = MemMesh::cluster(3);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .iter()
                .map(|ex| {
                    s.spawn(move || {
                        let me = ex.rank();
                        // Everyone sends one tagged payload to every rank.
                        let outgoing = (0..ex.ranks())
                            .filter(|t| *t != me)
                            .map(|t| (t, vec![me as u8, t as u8]))
                            .collect();
                        let mut got = ex.shuffle(outgoing).unwrap();
                        got.sort();
                        let gathered = ex.allgather(vec![me as u8]).unwrap();
                        let total = global_sum(ex, (me as u64) + 1).unwrap();
                        (got, gathered, total)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, (got, gathered, total)) in results.into_iter().enumerate() {
            let expect: Vec<Vec<u8>> = (0..3u8)
                .filter(|s| *s as usize != rank)
                .map(|s| vec![s, rank as u8])
                .collect();
            assert_eq!(got, expect, "rank {rank} inbox");
            assert_eq!(gathered, vec![vec![0u8], vec![1], vec![2]]);
            assert_eq!(total, 6);
        }
    }
}
