//! Deterministic fault injection and cooperative cancellation.
//!
//! The fault-tolerance layer of the engine is driven from here:
//!
//! * [`FaultPlan`] — a *seeded schedule* of failures: a base seed, one
//!   injection probability per [`FaultSite`], and targeted one-shot faults
//!   (`the 5th morsel of this run fails`, optionally as a burst so bounded
//!   retry is exhausted and partition recompute must kick in). Plans parse
//!   from / render to a compact `key=value` spec so the bench binaries can
//!   take them on the command line (`--faults`) or from the environment
//!   (`TRANCE_FAULT_SEED`).
//! * [`FaultInjector`] — the runtime side: each potential failure point
//!   *draws* from a counter-indexed splitmix64 stream, so the decision
//!   sequence per site is a pure function of `(seed, site, draw index)`.
//!   A retried operation performs a *fresh* draw — exactly like a retried
//!   I/O against flaky hardware — which is what makes bounded retry
//!   converge, while one-shot bursts stay pinned to their draw indices so
//!   tests can force retry exhaustion deterministically.
//! * [`CancelToken`] — cooperative cancellation with an optional deadline,
//!   checked at morsel boundaries and spill frame boundaries (never per
//!   row). One token lives in every [`crate::DistContext`]; the compiler
//!   resets it at the start of each run and arms the deadline from the
//!   caller's timeout.
//!
//! Everything here is clock-free except the deadline (which *is* a clock by
//! definition): given the same plan, partition layout and worker count = 1,
//! a run replays the same fault schedule byte for byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{ExecError, Result};

/// Where a fault can be injected. Every site is a *boundary* the engine
/// already crosses (a morsel, a spill frame, a shuffle pass, a worker
/// startup) — injection never adds per-row work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Before a fused-pipeline morsel executes.
    Morsel,
    /// Before a spill frame is read back from disk.
    SpillRead,
    /// Before a spill frame is appended to disk.
    SpillWrite,
    /// Before a shuffle routes one source partition.
    Shuffle,
    /// When a pool worker thread starts (or restarts after a heal).
    WorkerStart,
}

impl FaultSite {
    /// Every injection point, in spec order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::Morsel,
        FaultSite::SpillRead,
        FaultSite::SpillWrite,
        FaultSite::Shuffle,
        FaultSite::WorkerStart,
    ];

    /// Position of the site in [`FaultSite::ALL`] (stable array index for
    /// per-site accounting).
    pub fn index(self) -> usize {
        match self {
            FaultSite::Morsel => 0,
            FaultSite::SpillRead => 1,
            FaultSite::SpillWrite => 2,
            FaultSite::Shuffle => 3,
            FaultSite::WorkerStart => 4,
        }
    }

    /// The spec keyword of the site (`morsel`, `spill_read`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Morsel => "morsel",
            FaultSite::SpillRead => "spill_read",
            FaultSite::SpillWrite => "spill_write",
            FaultSite::Shuffle => "shuffle",
            FaultSite::WorkerStart => "worker_start",
        }
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        // Specs come from shell environments and CLI flags: tolerate case
        // and `-` for `_` (e.g. `SPILL-READ`), but nothing fuzzier.
        let norm = name.trim().to_ascii_lowercase().replace('-', "_");
        FaultSite::ALL.into_iter().find(|s| s.name() == norm)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A targeted fault: the draws `[at, at + burst)` of `site` fail,
/// independent of the site's probability. A burst longer than the bounded
/// retry budget forces the coarser recovery layer (partition recompute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneShot {
    /// The site the fault is pinned to.
    pub site: FaultSite,
    /// First failing draw index of that site (0-based).
    pub at: u64,
    /// Number of consecutive failing draws (at least 1).
    pub burst: u64,
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed of the per-site decision streams.
    pub seed: u64,
    /// Injection probability per site, indexed by [`FaultSite`] order.
    pub rates: [f64; 5],
    /// Targeted faults pinned to specific draw indices.
    pub one_shots: Vec<OneShot>,
}

impl FaultPlan {
    /// A plan that never fires (useful as a base for builders).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; 5],
            one_shots: Vec::new(),
        }
    }

    /// The default chaos mix for a given seed: modest rates at every
    /// injection point (what `TRANCE_FAULT_SEED=N` alone turns on).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.02, 0.05, 0.05, 0.02, 0.25],
            one_shots: Vec::new(),
        }
    }

    /// Sets the injection probability of one site (clamped to `[0, 1]`).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds a one-shot fault at draw `at` of `site`.
    pub fn with_one_shot(mut self, site: FaultSite, at: u64) -> FaultPlan {
        self.one_shots.push(OneShot { site, at, burst: 1 });
        self
    }

    /// Adds a burst of `burst` consecutive faults starting at draw `at`.
    pub fn with_burst(mut self, site: FaultSite, at: u64, burst: u64) -> FaultPlan {
        self.one_shots.push(OneShot {
            site,
            at,
            burst: burst.max(1),
        });
        self
    }

    /// Parses the compact spec the CLI and environment use:
    /// comma-separated `key=value` entries where `key` is `seed`, a site
    /// name (`morsel`, `spill_read`, `spill_write`, `shuffle`,
    /// `worker_start`) mapping to a rate in `[0, 1]`, or `once=SITE@AT`
    /// (optionally `once=SITE@AT` with an `xBURST` suffix). A bare integer
    /// is shorthand for [`FaultPlan::seeded`].
    ///
    /// Example: `seed=42,morsel=0.02,spill_read=0.1,once=morsel@5x4`.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, String> {
        let spec = spec.trim();
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(FaultPlan::seeded(seed));
        }
        let mut plan = FaultPlan::quiet(0);
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{entry}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key.to_ascii_lowercase().as_str() {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid fault seed `{value}`"))?;
                }
                "once" => {
                    let (site, rest) = value
                        .split_once('@')
                        .ok_or_else(|| format!("one-shot `{value}` is not SITE@AT"))?;
                    let site = FaultSite::from_name(site.trim())
                        .ok_or_else(|| format!("unknown fault site `{site}`"))?;
                    let (at, burst) = match rest.split_once('x') {
                        Some((at, burst)) => (
                            at,
                            burst
                                .trim()
                                .parse::<u64>()
                                .map_err(|_| format!("invalid one-shot burst `{burst}`"))?
                                .max(1),
                        ),
                        None => (rest, 1),
                    };
                    let at = at
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("invalid one-shot index `{rest}`"))?;
                    plan.one_shots.push(OneShot { site, at, burst });
                }
                site => {
                    let site = FaultSite::from_name(site)
                        .ok_or_else(|| format!("unknown fault spec key `{key}`"))?;
                    let rate = value
                        .parse::<f64>()
                        .map_err(|_| format!("invalid rate `{value}` for `{key}`"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("rate `{value}` for `{key}` is outside [0, 1]"));
                    }
                    plan.rates[site.index()] = rate;
                }
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec format [`FaultPlan::parse`]
    /// accepts — what the chaos CI job echoes so a red run is reproducible.
    pub fn render(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for site in FaultSite::ALL {
            let rate = self.rates[site.index()];
            if rate > 0.0 {
                out.push_str(&format!(",{}={rate}", site.name()));
            }
        }
        for shot in &self.one_shots {
            out.push_str(&format!(",once={}@{}", shot.site.name(), shot.at));
            if shot.burst > 1 {
                out.push_str(&format!("x{}", shot.burst));
            }
        }
        out
    }

    /// True when the plan can never fire.
    pub fn is_quiet(&self) -> bool {
        self.one_shots.is_empty() && self.rates.iter().all(|r| *r <= 0.0)
    }
}

/// splitmix64 finalizer — the one-instruction-per-step mixer the engine
/// already uses for Grace bucket salting.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The runtime decision engine of a [`FaultPlan`]: per-site draw counters
/// plus per-site fired counters, shared by every operator of one context.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    draws: [AtomicU64; 5],
    fired: [AtomicU64; 5],
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            draws: Default::default(),
            fired: Default::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Performs one draw at `site` and reports whether a fault fires. Each
    /// call consumes one draw index, so a retried operation re-draws.
    pub fn should_fault(&self, site: FaultSite) -> bool {
        let idx = site.index();
        let draw = self.draws[idx].fetch_add(1, Ordering::Relaxed);
        let mut fire = self
            .plan
            .one_shots
            .iter()
            .any(|s| s.site == site && draw >= s.at && draw < s.at + s.burst);
        let rate = self.plan.rates[idx];
        if !fire && rate > 0.0 {
            let x = splitmix64(
                self.plan
                    .seed
                    .wrapping_add((idx as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
                    .wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            // 53 uniform mantissa bits -> [0, 1).
            fire = ((x >> 11) as f64 / (1u64 << 53) as f64) < rate;
        }
        if fire {
            self.fired[idx].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Draws performed at `site` so far.
    pub fn draws(&self, site: FaultSite) -> u64 {
        self.draws[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired at `site` so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }
}

/// Maximum extra attempts bounded retry grants a retryable failure before
/// it escalates to the next recovery layer (partition recompute, then the
/// caller's typed error).
pub const MAX_TASK_RETRIES: u32 = 3;

/// Backoff before retry `attempt` (1-based): tiny exponential waits — the
/// simulated cluster's faults clear fast, and chaos suites must stay quick.
pub(crate) fn retry_backoff(attempt: u32) -> Duration {
    Duration::from_micros(50u64 << attempt.min(6))
}

/// Runs `f`, retrying retryable failures up to [`MAX_TASK_RETRIES`] times
/// with [`retry_backoff`]. Each retry is metered into the context stats.
/// Non-retryable errors (and retryable ones that exhaust the budget)
/// propagate to the caller's recovery layer.
pub(crate) fn with_retry<T>(
    ctx: &crate::DistContext,
    mut f: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(e) if e.is_retryable() && attempt < MAX_TASK_RETRIES => {
                attempt += 1;
                ctx.stats().record_retry();
                std::thread::sleep(retry_backoff(attempt));
            }
            other => return other,
        }
    }
}

const DEADLINE_UNSET: u64 = u64::MAX;

#[derive(Debug)]
struct CancelState {
    cancelled: AtomicBool,
    /// Deadline as nanos since `anchor`; [`DEADLINE_UNSET`] when unarmed.
    deadline_nanos: AtomicU64,
    anchor: Instant,
    reason: std::sync::Mutex<Option<String>>,
}

/// Cooperative cancellation handle: cheap to clone, checked at morsel and
/// spill frame boundaries. One token lives in every [`crate::DistContext`];
/// the compiler resets it at the start of each run.
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, unarmed token.
    pub fn new() -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(DEADLINE_UNSET),
                anchor: Instant::now(),
                reason: std::sync::Mutex::new(None),
            }),
        }
    }

    /// Requests cancellation with a caller-supplied reason. Idempotent; the
    /// first reason wins.
    pub fn cancel(&self, reason: &str) {
        {
            let mut slot = self.state.reason.lock().unwrap();
            if slot.is_none() {
                *slot = Some(reason.to_string());
            }
        }
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Arms (or clears) a deadline `timeout` from now: the next boundary
    /// check after it elapses cancels the run, even mid-spill.
    pub fn set_timeout(&self, timeout: Option<Duration>) {
        let nanos = match timeout {
            Some(t) => {
                let from_anchor = self.state.anchor.elapsed() + t;
                (from_anchor.as_nanos() as u64).min(DEADLINE_UNSET - 1)
            }
            None => DEADLINE_UNSET,
        };
        self.state.deadline_nanos.store(nanos, Ordering::Release);
    }

    /// Clears the flag, the reason and the deadline — the start-of-run
    /// reset.
    pub fn reset(&self) {
        self.state.cancelled.store(false, Ordering::Release);
        self.state
            .deadline_nanos
            .store(DEADLINE_UNSET, Ordering::Release);
        *self.state.reason.lock().unwrap() = None;
    }

    /// True once cancellation was requested (does not evaluate the
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Acquire)
    }

    /// The boundary check: `Ok` while the run may continue,
    /// [`ExecError::Cancelled`] once cancelled or past the deadline.
    pub fn check(&self) -> Result<()> {
        if self.state.cancelled.load(Ordering::Acquire) {
            let reason = self
                .state
                .reason
                .lock()
                .unwrap()
                .clone()
                .unwrap_or_else(|| "cancelled".to_string());
            return Err(ExecError::Cancelled { reason });
        }
        let deadline = self.state.deadline_nanos.load(Ordering::Acquire);
        if deadline != DEADLINE_UNSET && self.state.anchor.elapsed().as_nanos() as u64 >= deadline {
            self.cancel("deadline exceeded");
            return Err(ExecError::Cancelled {
                reason: "deadline exceeded".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_spec_round_trips() {
        let plan = FaultPlan::quiet(42)
            .with_rate(FaultSite::Morsel, 0.02)
            .with_rate(FaultSite::SpillRead, 0.1)
            .with_one_shot(FaultSite::Shuffle, 3)
            .with_burst(FaultSite::Morsel, 5, 4);
        let rendered = plan.render();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
        assert_eq!(FaultPlan::parse("17").unwrap(), FaultPlan::seeded(17));
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("morsel=1.5").is_err());
        assert!(FaultPlan::parse("once=morsel").is_err());
    }

    #[test]
    fn specs_tolerate_case_whitespace_and_dashes() {
        let canonical = FaultPlan::parse("seed=9,spill_read=0.1,once=morsel@5x4").unwrap();
        let sloppy =
            FaultPlan::parse("  SEED = 9 , SPILL-READ = 0.1 , Once = Morsel @ 5x4  ").unwrap();
        assert_eq!(sloppy, canonical);
        assert_eq!(FaultPlan::parse(" 17 ").unwrap(), FaultPlan::seeded(17));
    }

    #[test]
    fn junk_specs_are_errors_not_panics() {
        for junk in [
            "once=morsel@5xZZ",
            "once=morsel@",
            "morsel=NaN-ish",
            "seed=-3",
            "seed=",
            "=0.5",
            "morsel",
        ] {
            assert!(FaultPlan::parse(junk).is_err(), "`{junk}` must be rejected");
        }
        // NaN rates fail the [0, 1] range check rather than slipping through.
        assert!(FaultPlan::parse("morsel=nan").is_err());
    }

    #[test]
    fn draws_are_deterministic_and_counted() {
        let plan = FaultPlan::quiet(7).with_rate(FaultSite::Morsel, 0.5);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_fault(FaultSite::Morsel)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.should_fault(FaultSite::Morsel)).collect();
        assert_eq!(seq_a, seq_b, "same plan, same decision stream");
        let fired = seq_a.iter().filter(|f| **f).count() as u64;
        assert!(fired > 0, "a 50% rate over 64 draws must fire");
        assert!(fired < 64, "and must not always fire");
        assert_eq!(a.fired(FaultSite::Morsel), fired);
        assert_eq!(a.draws(FaultSite::Morsel), 64);
        assert_eq!(a.total_fired(), fired);
        assert_eq!(a.fired(FaultSite::Shuffle), 0);
    }

    #[test]
    fn one_shot_bursts_pin_to_draw_indices() {
        let inj = FaultInjector::new(FaultPlan::quiet(0).with_burst(FaultSite::SpillWrite, 2, 3));
        let seq: Vec<bool> = (0..8)
            .map(|_| inj.should_fault(FaultSite::SpillWrite))
            .collect();
        assert_eq!(
            seq,
            vec![false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    fn cancel_token_checks_flag_and_deadline() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        token.cancel("user abort");
        assert!(token.is_cancelled());
        match token.check() {
            Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "user abort"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        token.reset();
        assert!(token.check().is_ok());
        token.set_timeout(Some(Duration::ZERO));
        match token.check() {
            Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "deadline exceeded"),
            other => panic!("expected deadline Cancelled, got {other:?}"),
        }
        assert!(token.is_cancelled(), "a fired deadline latches the flag");
    }
}
