//! Distributed equi-joins: partitioned shuffle hash joins (build on the
//! smaller side) with automatic broadcast of a small side under the cluster's
//! broadcast limit.

use trance_nrc::{Tuple, Value};

use crate::error::Result;
use crate::ops::DistCollection;
use crate::partition::{hash_key_ref, key_of_ref, run_partitioned, shuffle, RefKeyTable};
use crate::stats::JoinStrategy;

/// Inner or left-outer equi-join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit only matching pairs.
    Inner,
    /// Additionally emit unmatched left rows, NULL-extended on the right
    /// fields.
    LeftOuter,
}

/// A physical strategy requested by the planner for one join execution.
///
/// The plan optimizer annotates `Plan::Join` nodes with a strategy when the
/// catalog's size information makes the choice provable; the hint is carried
/// down to the engine through [`JoinSpec::with_hint`]. `Auto` keeps the
/// engine's size-based runtime decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinHint {
    /// Decide broadcast vs. shuffle from the actual side sizes at runtime.
    #[default]
    Auto,
    /// Replicate the right side to every worker (the planner proved it fits
    /// under the broadcast limit).
    BroadcastRight,
    /// Shuffle both sides by key hash (the planner proved neither side fits).
    Shuffle,
}

/// Specification of a distributed equi-join: key columns on each side, the
/// join kind, (optionally) which right-side fields survive into the output,
/// and the planner's strategy hint.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    left_keys: Vec<String>,
    right_keys: Vec<String>,
    kind: JoinKind,
    right_fields: Option<Vec<String>>,
    hint: JoinHint,
}

impl JoinSpec {
    /// An inner equi-join on `left_keys` = `right_keys` (positionally).
    pub fn inner(left_keys: &[&str], right_keys: &[&str]) -> JoinSpec {
        JoinSpec {
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            kind: JoinKind::Inner,
            right_fields: None,
            hint: JoinHint::Auto,
        }
    }

    /// A left-outer equi-join on `left_keys` = `right_keys` (positionally).
    pub fn left_outer(left_keys: &[&str], right_keys: &[&str]) -> JoinSpec {
        JoinSpec {
            kind: JoinKind::LeftOuter,
            ..JoinSpec::inner(left_keys, right_keys)
        }
    }

    /// Restricts the right-side contribution of each output row to `fields`
    /// (these are also the columns NULL-extended for unmatched left rows in a
    /// left-outer join). Without this, the whole right row is concatenated.
    pub fn with_right_fields(mut self, fields: &[&str]) -> JoinSpec {
        self.right_fields = Some(fields.iter().map(|s| s.to_string()).collect());
        self
    }

    /// The left-side key columns.
    pub fn left_keys(&self) -> &[String] {
        &self.left_keys
    }

    /// The right-side key columns.
    pub fn right_keys(&self) -> &[String] {
        &self.right_keys
    }

    /// The join kind.
    pub fn kind(&self) -> JoinKind {
        self.kind
    }

    /// The configured right-side output fields, if restricted.
    pub fn right_fields(&self) -> Option<&[String]> {
        self.right_fields.as_deref()
    }

    /// Requests a physical strategy chosen by the planner instead of the
    /// engine's runtime size check.
    pub fn with_hint(mut self, hint: JoinHint) -> JoinSpec {
        self.hint = hint;
        self
    }

    /// The planner's strategy hint.
    pub fn hint(&self) -> JoinHint {
        self.hint
    }

    /// The right-side output projection of one right row.
    fn project_right(&self, t: &Tuple) -> Tuple {
        match &self.right_fields {
            Some(fields) => {
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                t.project(&refs)
            }
            None => t.clone(),
        }
    }

    /// The NULL extension appended to unmatched left rows.
    fn null_right(&self) -> Tuple {
        match &self.right_fields {
            Some(fields) => Tuple::new(fields.iter().map(|f| (f.clone(), Value::Null))),
            None => Tuple::empty(),
        }
    }
}

/// Which physical plan [`join_impl`] must take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JoinPath {
    /// Pick broadcast vs. shuffle from the side sizes and broadcast limit.
    Auto,
    /// Shuffle both sides (skew fallback).
    ForceShuffle { skew: bool },
    /// Broadcast the right side regardless of the limit (skew heavy part;
    /// the caller has already checked the size).
    ForceBroadcastRight { skew: bool },
}

impl DistCollection {
    /// Distributed equi-join with `right` following `spec`.
    ///
    /// Planning: if either side fits under the cluster broadcast limit it is
    /// replicated to every worker and joined in place (the right side for
    /// outer joins — only the probe side may stay partitioned); otherwise
    /// both sides shuffle by key hash and each partition runs a hash join
    /// built on its smaller side.
    pub fn join(&self, right: &DistCollection, spec: &JoinSpec) -> Result<DistCollection> {
        let path = match spec.hint() {
            JoinHint::Auto => JoinPath::Auto,
            JoinHint::BroadcastRight => JoinPath::ForceBroadcastRight { skew: false },
            JoinHint::Shuffle => JoinPath::ForceShuffle { skew: false },
        };
        self.timed("join", || join_impl(self, right, spec, path))
    }
}

pub(crate) fn join_impl(
    left: &DistCollection,
    right: &DistCollection,
    spec: &JoinSpec,
    path: JoinPath,
) -> Result<DistCollection> {
    let ctx = left.context().clone();
    let limit = ctx.config().broadcast_limit;
    match path {
        JoinPath::ForceBroadcastRight { skew } => broadcast_right(left, right, spec, skew),
        JoinPath::ForceShuffle { skew } => shuffle_join(left, right, spec, skew),
        JoinPath::Auto => {
            if right.total_bytes() <= limit {
                broadcast_right(left, right, spec, false)
            } else if spec.kind() == JoinKind::Inner && left.total_bytes() <= limit {
                broadcast_left(left, right, spec)
            } else {
                shuffle_join(left, right, spec, false)
            }
        }
    }
}

/// Replicates the right side to every worker and probes it from the left
/// partitions in place.
fn broadcast_right(
    left: &DistCollection,
    right: &DistCollection,
    spec: &JoinSpec,
    skew: bool,
) -> Result<DistCollection> {
    let ctx = left.context().clone();
    meter_broadcast(&ctx, right, skew);
    // Build and probe with *borrowed* keys: no key value is cloned per row.
    // The replicated side is materialized once (it fits under the broadcast
    // limit by construction, spilled partitions included).
    let rstore = right.partitions()?;
    let mut table: RefKeyTable<'_, Vec<Tuple>> = RefKeyTable::with_capacity(right.len());
    for row in rstore.iter().flat_map(|p| p.iter()) {
        let t = row.as_tuple()?;
        if let Some(key) = key_of_ref(t, spec.right_keys()) {
            table
                .entry_or_insert_with(key, Vec::new)
                .push(spec.project_right(t));
        }
    }
    let null_right = spec.null_right();
    let parts = run_partitioned(&ctx, left.parts(), |_, part| {
        let rows = part.rows(&ctx)?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows.iter() {
            let t = row.as_tuple()?;
            match key_of_ref(t, spec.left_keys()).and_then(|k| table.get(&k)) {
                Some(matches) => {
                    for r in matches {
                        out.push(Value::Tuple(t.concat(r)));
                    }
                }
                None => {
                    if spec.kind() == JoinKind::LeftOuter {
                        out.push(Value::Tuple(t.concat(&null_right)));
                    }
                }
            }
        }
        Ok(out)
    })?;
    DistCollection::materialize(ctx, parts)
}

/// Inner-join variant that replicates the (small) left side and probes it
/// from the right partitions.
fn broadcast_left(
    left: &DistCollection,
    right: &DistCollection,
    spec: &JoinSpec,
) -> Result<DistCollection> {
    let ctx = left.context().clone();
    meter_broadcast(&ctx, left, false);
    let lstore = left.partitions()?;
    let mut table: RefKeyTable<'_, Vec<&Value>> = RefKeyTable::with_capacity(left.len());
    for row in lstore.iter().flat_map(|p| p.iter()) {
        let t = row.as_tuple()?;
        if let Some(key) = key_of_ref(t, spec.left_keys()) {
            table.entry_or_insert_with(key, Vec::new).push(row);
        }
    }
    let parts = run_partitioned(&ctx, right.parts(), |_, part| {
        let mut out = Vec::new();
        for row in part.rows(&ctx)?.iter() {
            let t = row.as_tuple()?;
            if let Some(matches) = key_of_ref(t, spec.right_keys()).and_then(|k| table.get(&k)) {
                let projected = spec.project_right(t);
                for l in matches {
                    out.push(Value::Tuple(l.as_tuple()?.concat(&projected)));
                }
            }
        }
        Ok(out)
    })?;
    DistCollection::materialize(ctx, parts)
}

/// Shuffles both sides by key hash and hash-joins each partition pair,
/// building on the smaller side.
fn shuffle_join(
    left: &DistCollection,
    right: &DistCollection,
    spec: &JoinSpec,
    skew: bool,
) -> Result<DistCollection> {
    let ctx = left.context().clone();
    ctx.stats().record_join(if skew {
        JoinStrategy::SkewFallback
    } else {
        JoinStrategy::Shuffle
    });
    // Left rows with NULL/missing keys can never match: inner joins drop
    // them, outer joins emit them unmatched without shuffling them at all.
    let mut local_unmatched: Vec<Value> = Vec::new();
    if spec.kind() == JoinKind::LeftOuter {
        let null_right = spec.null_right();
        for part in left.parts() {
            for row in part.rows(&ctx)?.iter() {
                let t = row.as_tuple()?;
                if key_of_ref(t, spec.left_keys()).is_none() {
                    local_unmatched.push(Value::Tuple(t.concat(&null_right)));
                }
            }
        }
    }
    let keyed_left =
        left.filter(|row| Ok(key_of_ref(row.as_tuple()?, spec.left_keys()).is_some()))?;
    let keyed_right =
        right.filter(|row| Ok(key_of_ref(row.as_tuple()?, spec.right_keys()).is_some()))?;
    let lparts = shuffle(&ctx, keyed_left.parts(), |row| {
        Ok(hash_key_ref(
            &key_of_ref(row.as_tuple()?, spec.left_keys()).expect("filtered"),
        ))
    })?;
    let rparts = shuffle(&ctx, keyed_right.parts(), |row| {
        Ok(hash_key_ref(
            &key_of_ref(row.as_tuple()?, spec.right_keys()).expect("filtered"),
        ))
    })?;
    let mut parts = run_partitioned(&ctx, &lparts, |p, lrows| {
        join_partition(lrows, &rparts[p], spec)
    })?;
    if let Some(first) = parts.first_mut() {
        first.extend(local_unmatched);
    } else {
        parts.push(local_unmatched);
    }
    DistCollection::materialize(ctx, parts)
}

/// Joins one co-partitioned pair, building the hash table on the smaller
/// input.
fn join_partition(lrows: &[Value], rrows: &[Value], spec: &JoinSpec) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    let null_right = spec.null_right();
    if lrows.len() <= rrows.len() && spec.kind() == JoinKind::Inner {
        // Build on the left, probe with the right; keys stay borrowed on
        // both sides.
        let mut table: RefKeyTable<'_, Vec<&Value>> = RefKeyTable::with_capacity(lrows.len());
        for row in lrows {
            if let Some(key) = key_of_ref(row.as_tuple()?, spec.left_keys()) {
                table.entry_or_insert_with(key, Vec::new).push(row);
            }
        }
        for row in rrows {
            let t = row.as_tuple()?;
            if let Some(matches) = key_of_ref(t, spec.right_keys()).and_then(|k| table.get(&k)) {
                let projected = spec.project_right(t);
                for l in matches {
                    out.push(Value::Tuple(l.as_tuple()?.concat(&projected)));
                }
            }
        }
    } else {
        // Build on the right (always correct for left-outer), probe with the
        // left.
        let mut table: RefKeyTable<'_, Vec<Tuple>> = RefKeyTable::with_capacity(rrows.len());
        for row in rrows {
            let t = row.as_tuple()?;
            if let Some(key) = key_of_ref(t, spec.right_keys()) {
                table
                    .entry_or_insert_with(key, Vec::new)
                    .push(spec.project_right(t));
            }
        }
        for row in lrows {
            let t = row.as_tuple()?;
            match key_of_ref(t, spec.left_keys()).and_then(|k| table.get(&k)) {
                Some(matches) => {
                    for r in matches {
                        out.push(Value::Tuple(t.concat(r)));
                    }
                }
                None => {
                    if spec.kind() == JoinKind::LeftOuter {
                        out.push(Value::Tuple(t.concat(&null_right)));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Meters the replication of `side` to every worker and counts the strategy.
fn meter_broadcast(ctx: &crate::DistContext, side: &DistCollection, skew: bool) {
    let workers = ctx.config().workers.max(1) as u64;
    // Rows broadcast as heap values: logical estimate == physical bytes.
    let bytes = side.total_bytes() as u64 * workers;
    ctx.stats()
        .record_broadcast(side.len() as u64 * workers, bytes, bytes);
    ctx.stats().record_join(if skew {
        JoinStrategy::SkewBroadcast
    } else {
        JoinStrategy::Broadcast
    });
}
