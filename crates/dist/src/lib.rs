//! # trance-dist
//!
//! The simulated distributed bulk-collection engine of **trance-rs**: the
//! runtime that the standard and shredded compilation routes of
//! `trance-compiler` execute on (the role Spark plays for the paper's
//! implementation).
//!
//! * [`DistCollection`] — rows hash-partitioned into
//!   [`ClusterConfig::partitions`] slices; every operator (`map`, `filter`,
//!   `flat_map`, `union`, `distinct`, `join`, `nest_sum`, `nest_bag`) runs
//!   partition-parallel on the context's **persistent worker pool**
//!   ([`scheduler::WorkerPool`], [`ClusterConfig::workers`] participants
//!   with work-stealing deques — no per-operator thread spawn). Fused
//!   operator pipelines compiled by `trance-compiler` execute
//!   **morsel-by-morsel** through [`DistCollection::run_pipeline`] /
//!   [`ColCollection::run_pipeline`] on the same pool.
//! * [`DistContext`] — owns the cluster configuration and the shared
//!   [`Stats`] counters (shuffled rows/bytes, broadcast volume, join
//!   strategies taken, per-operator timings).
//! * [`JoinSpec`] — equi-join specs executed as partitioned hash joins
//!   (build on the smaller side) with automatic small-side broadcast.
//! * [`SkewTriple`] — Section 5's skew handling: sampled heavy-key
//!   detection, light/heavy splitting, shuffle joins for the light part and
//!   heavy-key broadcast joins under [`ClusterConfig::with_broadcast_limit`],
//!   re-merged with [`SkewTriple::merged`].
//! * [`Batch`] / [`ColCollection`] — the **columnar representation**, the
//!   default physical layer since the columnar refactor. A batch holds one
//!   partition's rows as `Arc<Schema>` (attribute names once per batch) plus
//!   typed columns: `i64`/`f64`/`bool`/date vectors, dictionary-encoded
//!   strings (one concatenated byte buffer + `u32` offsets and codes), and
//!   offset-encoded nested-bag columns whose elements form a child batch.
//!   Validity is two bitmaps per column — `nulls` for explicit NULLs and
//!   `absent` for attributes a row's tuple never carried, which keeps the
//!   `Value` ↔ `Batch` round trip lossless. [`ColCollection`] mirrors the
//!   whole operator suite over batches; its shuffles meter **exact physical
//!   buffer bytes** ([`StatsSnapshot::shuffled_bytes_phys`]) next to the
//!   row-equivalent logical estimate, while broadcast planning and the
//!   memory cap use logical sizes so both representations take identical
//!   plans. Batch schemas are the attribute sets of the optimized plan
//!   operators that produce them — the same plans `--explain` renders.
//!
//! The engine also simulates the paper's FAIL runs: when a per-worker memory
//! cap is configured ([`ClusterConfig::with_worker_memory`]), operators whose
//! output overloads a worker raise [`ExecError::MemoryExceeded`].
//!
//! With the **out-of-core spill subsystem** enabled
//! ([`ClusterConfig::with_spill`], backed by the `trance-store` crate),
//! memory pressure spills instead of failing: the memory governor picks
//! victim partitions at materialize time, shuffle writers overflow oversized
//! receiving partitions to disk, co-partitioned joins that exceed the
//! operator budget run as external (Grace-style) hash joins over on-disk
//! buckets, and grouping finalizers sub-partition the same way (see
//! [`spill`] and [`colops`]). Spill traffic is metered in
//! [`StatsSnapshot::spilled_bytes`] / `spill_files` / `spill_micros`.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use trance_nrc::Value;
use trance_store::SpillManager;

pub mod batch;
pub mod colops;
pub mod error;
pub mod exchange;
pub mod fault;
pub mod join;
pub mod ops;
mod partition;
pub mod scheduler;
pub mod skew;
pub mod spill;
pub mod stats;

pub use batch::{Batch, Bitmap, Column, FieldHint, Schema, StrDict};
pub use colops::ColCollection;
pub use error::{EngineError, ExecError, Result};
pub use exchange::{allgather_u64, global_sum, owned_range, owner_of_partition, Exchange, MemMesh};
pub use fault::{CancelToken, FaultInjector, FaultPlan, FaultSite};
pub use join::{JoinHint, JoinKind, JoinSpec};
pub use ops::DistCollection;
pub use scheduler::{MorselCtx, WorkerPool};
pub use skew::{detect_heavy_keys, SkewTriple};
pub use stats::{ExprProgramStat, JoinStrategy, OpTiming, PipelineTiming, Stats, StatsSnapshot};

/// Shape and limits of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of parallel workers (OS threads running partitions).
    pub workers: usize,
    /// Number of hash partitions (usually a small multiple of `workers`).
    pub partitions: usize,
    /// Maximum size in bytes of a side that may be broadcast to every worker
    /// instead of shuffled.
    pub broadcast_limit: usize,
    /// Simulated per-worker memory cap in bytes; operators fail with
    /// [`ExecError::MemoryExceeded`] when an output overloads a worker.
    pub worker_memory: Option<usize>,
    /// Number of rows sampled per collection for heavy-key detection.
    pub skew_sample: usize,
    /// Sampled frequency share at which a key counts as heavy; defaults to
    /// `1 / partitions` when unset.
    pub skew_threshold: Option<f64>,
    /// Whether the spill subsystem is available: with this set (and a
    /// [`ClusterConfig::worker_memory`] cap configured), operators whose
    /// materialized output overloads a worker spill victim partitions to
    /// disk instead of raising [`ExecError::MemoryExceeded`]. Off by default
    /// so the paper's FAIL reproduction is untouched.
    pub spill: bool,
    /// Base directory for the run's scoped spill directory (the system temp
    /// directory when unset).
    pub spill_dir: Option<PathBuf>,
    /// Seeded fault-injection schedule ([`FaultPlan`]); `None` (the
    /// default) compiles every injection check down to a branch on a
    /// resident `Option`, so fault-free runs pay nothing measurable.
    pub fault_plan: Option<FaultPlan>,
}

impl ClusterConfig {
    /// A cluster of `workers` workers over `partitions` hash partitions, with
    /// an 8 MiB broadcast limit, no memory cap, and default skew sampling.
    pub fn new(workers: usize, partitions: usize) -> ClusterConfig {
        ClusterConfig {
            workers: workers.max(1),
            partitions: partitions.max(1),
            broadcast_limit: 8 * 1024 * 1024,
            worker_memory: None,
            skew_sample: 1024,
            skew_threshold: None,
            spill: false,
            spill_dir: None,
            fault_plan: None,
        }
    }

    /// Sets the broadcast limit in bytes.
    pub fn with_broadcast_limit(mut self, bytes: usize) -> ClusterConfig {
        self.broadcast_limit = bytes;
        self
    }

    /// Sets the simulated per-worker memory cap in bytes.
    pub fn with_worker_memory(mut self, bytes: usize) -> ClusterConfig {
        self.worker_memory = Some(bytes);
        self
    }

    /// Enables the out-of-core spill subsystem: with a worker memory cap
    /// set, memory pressure spills victim partitions to disk instead of
    /// failing the run.
    pub fn with_spill(mut self) -> ClusterConfig {
        self.spill = true;
        self
    }

    /// Enables spilling with an explicit base directory for the run's
    /// scoped spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> ClusterConfig {
        self.spill = true;
        self.spill_dir = Some(dir.into());
        self
    }

    /// Sets the heavy-key sample size.
    pub fn with_skew_sample(mut self, rows: usize) -> ClusterConfig {
        self.skew_sample = rows;
        self
    }

    /// Overrides the heavy-key frequency threshold (a share in `(0, 1]`).
    pub fn with_skew_threshold(mut self, share: f64) -> ClusterConfig {
        self.skew_threshold = Some(share);
        self
    }

    /// The effective heavy-key threshold: the configured share, or
    /// `1 / partitions` — the share at which one key overloads its partition.
    pub fn heavy_key_threshold(&self) -> f64 {
        self.skew_threshold
            .unwrap_or(1.0 / self.partitions.max(1) as f64)
    }

    /// Sets an explicit worker count.
    pub fn with_workers(mut self, workers: usize) -> ClusterConfig {
        self.workers = workers.max(1);
        self
    }

    /// Applies the `TRANCE_WORKERS` environment override to the worker
    /// count, when the variable is set — the knob the CI matrix turns to run
    /// the differential suites at several pool sizes. Tests that depend on
    /// an exact worker count (the scheduler-stress suite, the parallelism
    /// assertions) simply do not call this.
    pub fn with_env_workers(mut self) -> ClusterConfig {
        if let Some(workers) = env_workers() {
            self.workers = workers.max(1);
        }
        self
    }

    /// Installs a seeded fault-injection schedule: every context created
    /// from this config draws its injected failures from `plan`.
    pub fn with_faults(mut self, plan: FaultPlan) -> ClusterConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Applies the `TRANCE_FAULT_SEED` environment override, when set: a
    /// bare seed turns on the default chaos mix ([`FaultPlan::seeded`]), a
    /// full spec is parsed as [`FaultPlan::parse`]. Invalid specs warn and
    /// leave the config unchanged — a typo must not silently run fault-free
    /// *or* crash the harness.
    pub fn with_env_faults(mut self) -> ClusterConfig {
        if let Ok(spec) = std::env::var("TRANCE_FAULT_SEED") {
            match FaultPlan::parse(&spec) {
                Ok(plan) => self.fault_plan = Some(plan),
                Err(e) => {
                    // The variable is process-wide and this builder runs per
                    // cluster construction: warn once, not per query.
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED
                        .call_once(|| eprintln!("warning: ignoring TRANCE_FAULT_SEED={spec}: {e}"));
                }
            }
        }
        self
    }
}

/// Upper bound [`env_workers`] clamps to: far above any real core count,
/// low enough that a stray huge value cannot exhaust memory spawning pool
/// threads.
pub const MAX_ENV_WORKERS: usize = 256;

/// The `TRANCE_WORKERS` environment override. Hardened: garbage and `0`
/// are ignored with a warning (the engine must never panic on a bad knob),
/// absurd values clamp to [`MAX_ENV_WORKERS`] with a warning.
pub fn env_workers() -> Option<usize> {
    let raw = std::env::var("TRANCE_WORKERS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(0) => {
            eprintln!("warning: ignoring TRANCE_WORKERS=0 (worker count must be positive)");
            None
        }
        Ok(w) if w > MAX_ENV_WORKERS => {
            eprintln!("warning: clamping TRANCE_WORKERS={w} to {MAX_ENV_WORKERS}");
            Some(MAX_ENV_WORKERS)
        }
        Ok(w) => Some(w),
        Err(_) => {
            eprintln!("warning: ignoring unparseable TRANCE_WORKERS={raw:?}");
            None
        }
    }
}

#[derive(Debug)]
struct CtxInner {
    config: ClusterConfig,
    stats: Stats,
    /// The persistent worker pool — created once with the root context and
    /// shared (via `Arc`) by every operator, pipeline run and **session
    /// context** derived from it (no per-operator thread spawn, no per-query
    /// pool).
    pool: Arc<WorkerPool>,
    /// Per-run spill toggle: lets a caller (the compiler's
    /// `ExecOptions::spill`) run one query with spilling off on a
    /// spill-capable cluster — the FAIL-vs-spill comparison the capped
    /// benchmarks report.
    spill_session: AtomicBool,
    /// The scoped spill directory, created lazily on the first spill so
    /// non-spilling runs never touch the filesystem.
    spill_manager: Mutex<Option<Arc<SpillManager>>>,
    /// The seeded fault injector, present iff the config carries a
    /// [`FaultPlan`]. `None` keeps every injection check down to one
    /// branch.
    faults: Option<Arc<FaultInjector>>,
    /// Per-run fault toggle, mirroring `spill_session`: lets the chaos
    /// suite run the fault-free oracle on the *same* cluster (same
    /// partitioning, same pool) the faulty run used.
    fault_session: AtomicBool,
    /// The run's cancellation token; reset by the compiler at the start of
    /// each run, checked at morsel and spill-frame boundaries.
    cancel: CancelToken,
    /// The multi-process exchange, when this context is one rank of a
    /// cluster run (see [`exchange`]). `None` — the default — keeps every
    /// distributed branch a single resident check.
    exchange: Mutex<Option<Arc<dyn exchange::Exchange>>>,
}

/// Handle to the simulated cluster: configuration plus shared metrics.
/// Cheap to clone; clones share the same [`Stats`].
#[derive(Debug, Clone)]
pub struct DistContext {
    inner: Arc<CtxInner>,
}

impl DistContext {
    /// Creates a context for `config`.
    pub fn new(config: ClusterConfig) -> DistContext {
        let faults = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let pool = Arc::new(WorkerPool::with_faults(config.workers, faults.clone()));
        DistContext {
            inner: Arc::new(CtxInner {
                config,
                stats: Stats::new(),
                pool,
                spill_session: AtomicBool::new(true),
                spill_manager: Mutex::new(None),
                faults,
                fault_session: AtomicBool::new(true),
                cancel: CancelToken::new(),
                exchange: Mutex::new(None),
            }),
        }
    }

    /// Derives a **session context**: a context with its own [`Stats`],
    /// [`CancelToken`], spill scope and per-run toggles, *sharing this
    /// context's persistent worker pool* (and fault injector). This is what
    /// lets several queries run concurrently on one pool without racing on
    /// each other's metrics, deadlines or spill/fault switches — the serving
    /// layer creates one session per admitted query.
    pub fn session(&self) -> DistContext {
        self.session_with_memory(self.inner.config.worker_memory)
    }

    /// A session context (see [`DistContext::session`]) with an explicit
    /// per-session **memory budget**: `worker_memory` overrides the cluster
    /// cap for every operator run under the session. A budgeted session also
    /// gets the spill subsystem enabled, so one tenant under memory pressure
    /// spills to disk while its uncapped neighbours are untouched.
    pub fn session_with_memory(&self, worker_memory: Option<usize>) -> DistContext {
        let mut config = self.inner.config.clone();
        let budgeted = worker_memory != self.inner.config.worker_memory;
        config.worker_memory = worker_memory;
        if budgeted && worker_memory.is_some() {
            config.spill = true;
        }
        DistContext {
            inner: Arc::new(CtxInner {
                config,
                stats: Stats::new(),
                pool: self.inner.pool.clone(),
                spill_session: AtomicBool::new(true),
                spill_manager: Mutex::new(None),
                faults: self.inner.faults.clone(),
                fault_session: AtomicBool::new(true),
                cancel: CancelToken::new(),
                exchange: Mutex::new(self.exchange()),
            }),
        }
    }

    /// True when `other` shares this context's worker pool (i.e. one is a
    /// session of the other, or both are sessions of the same root).
    pub fn shares_pool(&self, other: &DistContext) -> bool {
        Arc::ptr_eq(&self.inner.pool, &other.inner.pool)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// The shared engine metrics.
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// The context's persistent worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.inner.pool
    }

    /// Runs a batch of borrowed tasks on the persistent pool, blocking until
    /// all complete, and meters the scope's steals into the context stats.
    /// Panics of individual tasks re-raise here after the whole scope
    /// settled.
    pub fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let steals = self.inner.pool.run(tasks);
        if steals > 0 {
            self.inner.stats.record_steals(steals);
        }
    }

    /// True when memory pressure spills instead of failing: the cluster
    /// enables spilling, a worker memory cap is set, and the current session
    /// has not turned spilling off.
    pub fn spill_active(&self) -> bool {
        self.inner.config.spill
            && self.inner.config.worker_memory.is_some()
            && self.inner.spill_session.load(Ordering::Relaxed)
    }

    /// Toggles spilling for subsequent operators on this context (no-op on
    /// clusters without [`ClusterConfig::spill`]). The compiler sets this
    /// from `ExecOptions::spill` at the start of each run.
    pub fn set_spill_session(&self, on: bool) {
        self.inner.spill_session.store(on, Ordering::Relaxed);
    }

    /// The context's fault injector, when the config carries a
    /// [`FaultPlan`]. The chaos suite reads its per-site counters to assert
    /// schedule coverage.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.inner.faults.as_deref()
    }

    /// Toggles fault injection for subsequent operators (no-op without a
    /// [`FaultPlan`]); mirrors [`DistContext::set_spill_session`]. The
    /// compiler sets this from `ExecOptions::faults` at the start of each
    /// run, which is how the fault-free oracle runs on a faulty cluster.
    pub fn set_fault_session(&self, on: bool) {
        self.inner.fault_session.store(on, Ordering::Relaxed);
    }

    /// One fault-injection draw at `site`: `Ok` to proceed,
    /// [`ExecError::Retryable`] when the plan fires. Called only at morsel,
    /// spill-frame, shuffle-pass and worker-start boundaries — with no plan
    /// installed this is a single always-false branch.
    pub fn fault_check(&self, site: FaultSite) -> error::Result<()> {
        if let Some(inj) = &self.inner.faults {
            if self.inner.fault_session.load(Ordering::Relaxed) && inj.should_fault(site) {
                self.inner.stats.record_fault_injected();
                return Err(ExecError::Retryable {
                    site,
                    detail: format!("injected {site} fault"),
                });
            }
        }
        Ok(())
    }

    /// The run's cancellation token. Cheap to clone; callers cancel (or arm
    /// a deadline on) the clone while the run is in flight, and the engine
    /// observes it at the next morsel or spill-frame boundary.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Boundary cancellation check (flag + deadline).
    pub fn check_cancel(&self) -> error::Result<()> {
        self.inner.cancel.check()
    }

    /// Installs (or clears) the multi-process [`exchange::Exchange`] for
    /// this context: with one installed, shuffles, broadcasts and planning
    /// decisions coordinate with the other ranks of the cluster run.
    /// Sessions derived afterwards inherit the handle.
    pub fn set_exchange(&self, ex: Option<Arc<dyn exchange::Exchange>>) {
        *self
            .inner
            .exchange
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = ex;
    }

    /// The installed multi-process exchange, if this context is one rank of
    /// a cluster run.
    pub fn exchange(&self) -> Option<Arc<dyn exchange::Exchange>> {
        self.inner
            .exchange
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The run's scoped spill directory, if any spill has happened yet.
    /// Tests assert it drains back to empty once spilled collections drop.
    pub fn spill_dir(&self) -> Option<PathBuf> {
        self.inner
            .spill_manager
            .lock()
            .unwrap()
            .as_ref()
            .map(|m| m.dir().to_path_buf())
    }

    /// The spill manager, created on first use.
    pub(crate) fn spill_manager(&self) -> error::Result<Arc<SpillManager>> {
        let mut slot = self.inner.spill_manager.lock().unwrap();
        if let Some(m) = slot.as_ref() {
            return Ok(m.clone());
        }
        let manager = Arc::new(SpillManager::new(self.inner.config.spill_dir.as_deref())?);
        *slot = Some(manager.clone());
        Ok(manager)
    }

    /// Distributes local rows over the cluster's partitions (round-robin).
    /// Input loading is not metered or capped, matching the paper's
    /// exclusion of input caching from measured runs.
    pub fn parallelize(&self, rows: Vec<Value>) -> DistCollection {
        DistCollection::parallelize(self.clone(), rows)
    }

    /// An empty collection over this context's partitions.
    pub fn empty(&self) -> DistCollection {
        DistCollection::from_parts(
            self.clone(),
            vec![Vec::new(); self.config().partitions.max(1)],
        )
    }
}
