//! [`DistCollection`]: a hash-partitioned bag of [`Value`] rows and its
//! partition-parallel operators.
//!
//! Every operator executes per-partition on the worker threads of the owning
//! [`DistContext`] (see [`crate::partition`]), meters shuffles/broadcasts in
//! the context's [`crate::Stats`], enforces the simulated per-worker memory
//! cap on its output, and records its wall-clock time under its operator
//! name. Grouping operators pre-aggregate map-side before shuffling, so a
//! skewed grouping key costs at most `partitions` partial rows per key.
//!
//! With the spill subsystem enabled, a partition is either resident
//! (`Vec<Value>`) or spilled (encoded row chunks in a `trance-store` frame
//! file), and the memory governor spills victim partitions at materialize
//! time instead of raising [`crate::ExecError::MemoryExceeded`] — the row
//! representation goes out-of-core through the same machinery as the
//! columnar one, so the differential oracles cover spilling runs too.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use trance_nrc::{Bag, MemSize, Tuple, Value};

use crate::colops::MORSEL_ROWS;
use crate::error::{ExecError, Result};
use crate::fault::{with_retry, FaultSite};
use crate::partition::{
    enforce_memory, hash_key_ref, hash_value, run_partitioned, shuffle, split_round_robin, PartRows,
};
use crate::scheduler::MorselCtx;
use crate::spill::{govern_materialized, read_rows, spill_rows, SpilledRows};
use crate::DistContext;

/// One partition of a [`DistCollection`]: resident rows or a spilled frame
/// file (shared so collection clones share the file; it is deleted when the
/// last reference drops).
#[derive(Debug, Clone)]
pub(crate) enum RowPart {
    /// Resident rows.
    Mem(Vec<Value>),
    /// Disk-resident partition.
    Spilled(Arc<SpilledRows>),
}

impl RowPart {
    pub(crate) fn len(&self) -> usize {
        match self {
            RowPart::Mem(rows) => rows.len(),
            RowPart::Spilled(s) => s.rows(),
        }
    }

    /// `Value::mem_size` bytes currently resident in worker memory.
    pub(crate) fn resident_bytes(&self) -> usize {
        match self {
            RowPart::Mem(rows) => rows.iter().map(MemSize::mem_size).sum(),
            RowPart::Spilled(_) => 0,
        }
    }

    /// Logical `Value::mem_size` bytes, wherever the partition lives.
    pub(crate) fn logical_bytes(&self) -> usize {
        match self {
            RowPart::Mem(rows) => rows.iter().map(MemSize::mem_size).sum(),
            RowPart::Spilled(s) => s.bytes(),
        }
    }

    /// The partition's rows (spilled partitions are read back).
    pub(crate) fn rows<'a>(&'a self, ctx: &DistContext) -> Result<Cow<'a, [Value]>> {
        match self {
            RowPart::Mem(rows) => Ok(Cow::Borrowed(rows)),
            RowPart::Spilled(s) => Ok(Cow::Owned(read_rows(ctx, s)?)),
        }
    }
}

impl PartRows for RowPart {
    fn part_rows(&self) -> usize {
        self.len()
    }
}

/// A distributed collection: rows hash-partitioned into
/// `ClusterConfig::partitions` slices owned by a [`DistContext`].
#[derive(Clone)]
pub struct DistCollection {
    ctx: DistContext,
    parts: Arc<Vec<RowPart>>,
}

impl std::fmt::Debug for DistCollection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistCollection")
            .field("partitions", &self.parts.len())
            .field("rows", &self.len())
            .finish()
    }
}

impl DistCollection {
    /// Wraps an already-partitioned row set with an explicit slot per
    /// partition (no memory check, like input parallelizing). This is the
    /// multi-node loading entry point: a worker process receives only the
    /// partitions its rank owns and passes empty vectors for the rest, so
    /// every rank sees the same full-length partition vector.
    pub fn from_partitioned_rows(ctx: DistContext, mut parts: Vec<Vec<Value>>) -> Self {
        parts.resize(ctx.config().partitions.max(1).max(parts.len()), Vec::new());
        DistCollection::from_parts(ctx, parts)
    }

    /// Wraps an already-partitioned row set (no memory check: used for input
    /// loading, which the paper excludes from the measured runs).
    pub(crate) fn from_parts(ctx: DistContext, parts: Vec<Vec<Value>>) -> Self {
        DistCollection {
            ctx,
            parts: Arc::new(parts.into_iter().map(RowPart::Mem).collect()),
        }
    }

    fn from_row_parts(ctx: DistContext, parts: Vec<RowPart>) -> Self {
        DistCollection {
            ctx,
            parts: Arc::new(parts),
        }
    }

    /// Wraps freshly produced operator output, enforcing the per-worker
    /// memory cap first. With spilling enabled, the memory governor spills
    /// victim partitions instead of failing.
    pub(crate) fn materialize(ctx: DistContext, parts: Vec<Vec<Value>>) -> Result<Self> {
        let mut parts: Vec<RowPart> = parts.into_iter().map(RowPart::Mem).collect();
        if ctx.spill_active() {
            govern_materialized(&ctx, &mut parts, RowPart::resident_bytes, |part| {
                Ok(match part {
                    RowPart::Mem(rows) => RowPart::Spilled(Arc::new(spill_rows(&ctx, rows)?)),
                    RowPart::Spilled(s) => RowPart::Spilled(s.clone()),
                })
            })?;
        } else {
            enforce_memory(&ctx, &parts)?;
        }
        Ok(DistCollection::from_row_parts(ctx, parts))
    }

    /// Distributes `rows` round-robin over the context's partitions.
    pub(crate) fn parallelize(ctx: DistContext, rows: Vec<Value>) -> Self {
        let nparts = ctx.config().partitions;
        DistCollection::from_parts(ctx, split_round_robin(rows, nparts))
    }

    /// The owning context.
    pub fn context(&self) -> &DistContext {
        &self.ctx
    }

    /// Rebinds the collection to another context sharing the same worker
    /// pool (a [`DistContext::session`]): the partitions are Arc-shared, so
    /// the rebind is O(1) and subsequent operators meter their stats, honour
    /// the memory budget and observe the cancellation token of `ctx` instead
    /// of the original context's.
    pub fn with_context(&self, ctx: &DistContext) -> DistCollection {
        DistCollection {
            ctx: ctx.clone(),
            parts: self.parts.clone(),
        }
    }

    /// The internal partition set.
    pub(crate) fn parts(&self) -> &[RowPart] {
        &self.parts
    }

    /// The partitioned rows (partition `i` lives on worker `i % workers`).
    /// Spilled partitions are read back; resident ones are borrowed. Fails
    /// with [`crate::ExecError::Spill`] when a spill file cannot be read —
    /// for one-partition-at-a-time consumers prefer
    /// [`DistCollection::for_each_partition`], which never holds more than
    /// one spilled partition resident.
    pub fn partitions(&self) -> Result<Vec<Cow<'_, [Value]>>> {
        self.parts.iter().map(|p| p.rows(&self.ctx)).collect()
    }

    /// Streams the partitions one at a time: each spilled partition is read
    /// back, handed to `f`, and dropped before the next loads.
    pub fn for_each_partition(&self, mut f: impl FnMut(&[Value]) -> Result<()>) -> Result<()> {
        for part in self.parts.iter() {
            f(&part.rows(&self.ctx)?)?;
        }
        Ok(())
    }

    /// The attribute names of the first available tuple row, stopping at the
    /// first non-empty partition — at most one spilled partition is read
    /// (the row twin of [`crate::ColCollection::first_fields`]).
    pub fn first_fields(&self) -> Result<Vec<String>> {
        for part in self.parts.iter() {
            if part.len() == 0 {
                continue;
            }
            if let Some(Value::Tuple(t)) = part.rows(&self.ctx)?.first() {
                return Ok(t.field_names().iter().map(|s| s.to_string()).collect());
            }
        }
        Ok(Vec::new())
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Number of partitions currently spilled to disk.
    pub fn spilled_partitions(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| matches!(p, RowPart::Spilled(_)))
            .count()
    }

    /// Total number of rows.
    pub fn len(&self) -> usize {
        self.parts.iter().map(RowPart::len).sum()
    }

    /// Alias of [`DistCollection::len`], matching bulk-collection APIs.
    pub fn count(&self) -> usize {
        self.len()
    }

    /// True when the collection holds no rows.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.len() == 0)
    }

    /// Estimated total in-memory size in bytes (used for broadcast planning
    /// and shuffle metering).
    pub fn total_bytes(&self) -> usize {
        self.parts.iter().map(RowPart::logical_bytes).sum()
    }

    /// Gathers every row to the caller ("driver"), in partition order, with
    /// spill-read failures surfaced as [`crate::ExecError::Spill`].
    pub fn try_collect(&self) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.len());
        for part in self.parts.iter() {
            out.extend(part.rows(&self.ctx)?.iter().cloned());
        }
        Ok(out)
    }

    /// Gathers every row to the caller ("driver"), in partition order.
    ///
    /// The final operator's output can itself be spilled, so this *is* a
    /// spill-read site: a spill file that cannot be read back at the collect
    /// boundary panics here. Drivers that want the error instead use
    /// [`DistCollection::try_collect`].
    pub fn collect(&self) -> Vec<Value> {
        self.try_collect()
            .expect("failed to read a spilled partition at the collect boundary")
    }

    /// Gathers every row into a [`Bag`] (panics like
    /// [`DistCollection::collect`]; see [`DistCollection::try_collect`]).
    pub fn collect_bag(&self) -> Bag {
        Bag::new(self.collect())
    }

    /// Times `f` under operator name `op` in the context stats.
    pub(crate) fn timed<T>(&self, op: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let start = Instant::now();
        let out = f();
        self.ctx.stats().record_op(op, start.elapsed());
        out
    }

    /// Applies `f` to every row (partition-parallel, no shuffle).
    pub fn map<F>(&self, f: F) -> Result<DistCollection>
    where
        F: Fn(&Value) -> Result<Value> + Send + Sync,
    {
        self.timed("map", || {
            let parts = run_partitioned(&self.ctx, &self.parts, |_, part| {
                part.rows(&self.ctx)?
                    .iter()
                    .map(&f)
                    .collect::<Result<Vec<Value>>>()
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Keeps the rows for which `pred` returns true (partition-parallel).
    pub fn filter<F>(&self, pred: F) -> Result<DistCollection>
    where
        F: Fn(&Value) -> Result<bool> + Send + Sync,
    {
        self.timed("filter", || {
            let parts = run_partitioned(&self.ctx, &self.parts, |_, part| {
                let mut out = Vec::new();
                for row in part.rows(&self.ctx)?.iter() {
                    if pred(row)? {
                        out.push(row.clone());
                    }
                }
                Ok(out)
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Expands every row into zero or more rows (the engine's unnest;
    /// partition-parallel).
    pub fn flat_map<F>(&self, f: F) -> Result<DistCollection>
    where
        F: Fn(&Value) -> Result<Vec<Value>> + Send + Sync,
    {
        self.timed("flat_map", || {
            let parts = run_partitioned(&self.ctx, &self.parts, |_, part| {
                let mut out = Vec::new();
                for row in part.rows(&self.ctx)?.iter() {
                    out.extend(f(row)?);
                }
                Ok(out)
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Bag union: partitions are concatenated pairwise, no data moves.
    pub fn union(&self, other: &DistCollection) -> Result<DistCollection> {
        self.timed("union", || {
            let n = self.parts.len().max(other.parts.len());
            let mut parts = Vec::with_capacity(n);
            for i in 0..n {
                let mut p: Vec<Value> = match self.parts.get(i) {
                    Some(part) => part.rows(&self.ctx)?.into_owned(),
                    None => Vec::new(),
                };
                if let Some(part) = other.parts.get(i) {
                    p.extend(part.rows(&self.ctx)?.iter().cloned());
                }
                parts.push(p);
            }
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Distinct rows (set semantics): shuffles by row hash so equal rows meet
    /// in one partition, then deduplicates per partition.
    pub fn distinct(&self) -> Result<DistCollection> {
        self.timed("distinct", || {
            let shuffled = shuffle(&self.ctx, &self.parts, |row| Ok(hash_value(row)))?;
            let parts = run_partitioned(&self.ctx, &shuffled, |_, rows| {
                let mut seen: HashMap<&Value, ()> = HashMap::with_capacity(rows.len());
                let mut out = Vec::new();
                for row in rows {
                    if seen.insert(row, ()).is_none() {
                        out.push(row.clone());
                    }
                }
                Ok(out)
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Adds a globally unique integer id under `attr` without coordination:
    /// row `i` of partition `p` gets `p + i * partitions`.
    pub fn with_unique_id(&self, attr: &str) -> Result<DistCollection> {
        self.timed("with_unique_id", || {
            let stride = self.parts.len().max(1) as i64;
            let parts = run_partitioned(&self.ctx, &self.parts, |p, part| {
                part.rows(&self.ctx)?
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        let mut t = row.as_tuple()?.clone();
                        t.set(attr.to_string(), Value::Int(p as i64 + i as i64 * stride));
                        Ok(Value::Tuple(t))
                    })
                    .collect::<Result<Vec<Value>>>()
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// The `Γ+` aggregation: groups rows by the `key` columns and sums each of
    /// the `values` columns, mirroring the reference evaluator's `sumBy`
    /// (integer sums stay integral, NULL contributes nothing, an all-NULL
    /// group sums to `0`).
    ///
    /// Runs as map-side partial aggregation, a shuffle of the (small) partial
    /// rows by key hash, and a final reduce — so even a heavily skewed key
    /// moves at most one partial row per source partition.
    pub fn nest_sum(&self, key: &[String], values: &[String]) -> Result<DistCollection> {
        self.timed("nest_sum", || {
            let partials = run_partitioned(&self.ctx, &self.parts, |_, part| {
                sum_partition(&part.rows(&self.ctx)?, key, values, false)
            })?;
            let partials: Vec<RowPart> = partials.into_iter().map(RowPart::Mem).collect();
            let shuffled = shuffle(&self.ctx, &partials, |row| {
                Ok(hash_routing_key(row.as_tuple()?, key))
            })?;
            let parts = run_partitioned(&self.ctx, &shuffled, |_, rows| {
                sum_partition(rows, key, values, true)
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }

    /// Runs a **fused operator pipeline** morsel-by-morsel on the context's
    /// persistent worker pool — the row-representation twin of
    /// [`crate::ColCollection::run_pipeline`]. `step` is the fused
    /// rows-at-a-time closure compiled out of a chain of row-local plan
    /// operators; each partition's morsel outputs are re-assembled in source
    /// order, so the pipelined result is identical (rows *and* order) to the
    /// staged executor's.
    ///
    /// With `sequential` set, each partition runs as one task whose
    /// [`MorselCtx`] counters reproduce the staged executor's unique-id
    /// numbering. The run is metered as one [`crate::PipelineTiming`] under
    /// `label`, with the member `ops` list.
    pub fn run_pipeline<F>(
        &self,
        label: &str,
        ops: &[String],
        sequential: bool,
        step: F,
    ) -> Result<DistCollection>
    where
        F: Fn(&[Value], &mut MorselCtx) -> Result<Vec<Value>> + Send + Sync,
    {
        let start = Instant::now();
        let ctx = &self.ctx;
        let nparts = self.parts.len().max(1);
        let stride = nparts as i64;
        let morsels = AtomicU64::new(0);
        // Intra-partition splitting only pays when partitions are scarce
        // relative to workers; otherwise a partition is one morsel (the
        // same policy as the columnar driver, so morsel counts agree).
        let split = nparts < 2 * ctx.config().workers.max(1);
        // Spilled partitions are read back whole, exactly like the staged
        // row operators (the columnar driver is the streaming one).
        let src: Vec<Cow<'_, [Value]>> = self.partitions()?;
        // Per-partition, per-morsel output slots (chunk order preserved).
        type MorselSlots = Vec<Mutex<Option<Result<Vec<Value>>>>>;
        let slots: Vec<MorselSlots> = src
            .iter()
            .map(|rows| {
                let chunks = if sequential || !split {
                    1
                } else {
                    rows.len().div_ceil(MORSEL_ROWS).max(1)
                };
                (0..chunks).map(|_| Mutex::new(None)).collect()
            })
            .collect();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (p, rows) in src.iter().enumerate() {
            let step = &step;
            let morsels = &morsels;
            let part_slots = &slots[p];
            if sequential {
                tasks.push(Box::new(move || {
                    let mut cx = MorselCtx::new(p, stride);
                    let mut out: Result<Vec<Value>> = Ok(Vec::new());
                    for chunk in rows.chunks(MORSEL_ROWS.max(1)) {
                        // First error wins and stops the partition — like
                        // the staged executor, no later chunk runs.
                        let Ok(acc) = &mut out else { break };
                        morsels.fetch_add(1, Ordering::Relaxed);
                        match run_morsel_rows(ctx, &step, chunk, &mut cx) {
                            Ok(mut produced) => acc.append(&mut produced),
                            Err(e) => out = Err(e),
                        }
                    }
                    *part_slots[0].lock().unwrap() = Some(out);
                }));
                continue;
            }
            for (m, slot) in part_slots.iter().enumerate() {
                let single = part_slots.len() == 1;
                tasks.push(Box::new(move || {
                    let (lo, hi) = if single {
                        (0, rows.len())
                    } else {
                        (m * MORSEL_ROWS, ((m + 1) * MORSEL_ROWS).min(rows.len()))
                    };
                    let mut cx = MorselCtx::new(p, stride);
                    morsels.fetch_add(1, Ordering::Relaxed);
                    *slot.lock().unwrap() =
                        Some(run_morsel_rows(ctx, &step, &rows[lo..hi], &mut cx));
                }));
            }
        }
        // Tiny pipelines run inline on the caller, like every other
        // operator below the parallel threshold.
        let total_rows: usize = src.iter().map(|rows| rows.len()).sum();
        if ctx.config().workers.max(1) == 1 || total_rows < crate::partition::PARALLEL_THRESHOLD {
            for task in tasks {
                task();
            }
        } else {
            ctx.run_tasks(tasks);
        }
        let mut parts: Vec<Vec<Value>> = Vec::with_capacity(src.len());
        for (p, part_slots) in slots.into_iter().enumerate() {
            let results: Vec<Option<Result<Vec<Value>>>> = part_slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap())
                .collect();
            // Lineage recovery: a partition with a retry-exhausted
            // transient fault re-runs the whole fused chain over its source
            // rows (fresh draws, fresh MorselCtx — the chunk walk
            // reproduces the original morsel boundaries, so output order
            // and id numbering match the staged executor exactly).
            if results
                .iter()
                .any(|r| matches!(r, Some(Err(e)) if e.is_retryable()))
            {
                ctx.check_cancel()?;
                ctx.stats().record_recovered_partition();
                let rows = &src[p];
                let mut cx = MorselCtx::new(p, stride);
                let mut out = Vec::new();
                for chunk in rows.chunks(MORSEL_ROWS.max(1)) {
                    morsels.fetch_add(1, Ordering::Relaxed);
                    out.append(&mut run_morsel_rows(ctx, &step, chunk, &mut cx)?);
                }
                parts.push(out);
                continue;
            }
            let mut out = Vec::new();
            for result in results {
                match result {
                    Some(Ok(mut produced)) => out.append(&mut produced),
                    Some(Err(e)) => return Err(e),
                    None => return Err(ExecError::Other("morsel task did not run".into())),
                }
            }
            parts.push(out);
        }
        ctx.stats()
            .record_pipeline(label, ops, morsels.load(Ordering::Relaxed), start.elapsed());
        DistCollection::materialize(self.ctx.clone(), parts)
    }

    /// The `Γ⊎` grouping: groups rows by the `key` columns and collects the
    /// `value_attrs` projection of each row into a bag stored under
    /// `out_attr`. Rows shuffle by key hash; groups never span partitions.
    pub fn nest_bag(
        &self,
        key: &[String],
        value_attrs: &[String],
        out_attr: &str,
    ) -> Result<DistCollection> {
        self.timed("nest_bag", || {
            let shuffled = shuffle(&self.ctx, &self.parts, |row| {
                Ok(hash_routing_key(row.as_tuple()?, key))
            })?;
            let value_refs: Vec<&str> = value_attrs.iter().map(String::as_str).collect();
            let parts = run_partitioned(&self.ctx, &shuffled, |_, rows| {
                let mut groups: HashMap<Tuple, Bag> = HashMap::new();
                let mut order: Vec<Tuple> = Vec::new();
                for row in rows {
                    let t = row.as_tuple()?;
                    let k = project_tuple(t, key);
                    let elem = Value::Tuple(t.project(&value_refs));
                    groups
                        .entry(k.clone())
                        .or_insert_with(|| {
                            order.push(k);
                            Bag::empty()
                        })
                        .push(elem);
                }
                let mut out = Vec::with_capacity(order.len());
                for k in order {
                    let group = groups.remove(&k).expect("group recorded in order");
                    let mut row = k;
                    row.set(out_attr.to_string(), Value::Bag(group));
                    out.push(Value::Tuple(row));
                }
                Ok(out)
            })?;
            DistCollection::materialize(self.ctx.clone(), parts)
        })
    }
}

/// Projects the key columns of a row into a tuple (missing columns are
/// skipped, exactly like the reference evaluator's `project`).
fn project_tuple(t: &Tuple, key: &[String]) -> Tuple {
    let slots = t.project_values(key);
    Tuple::new(
        key.iter()
            .zip(slots)
            .filter_map(|(name, v)| v.map(|v| (name.clone(), v.clone()))),
    )
}

/// Routing hash over the key columns of a row, with NULL standing in for
/// missing columns (a stable stand-in is enough to route) — computed from
/// borrowed values, no clones.
fn hash_routing_key(t: &Tuple, key: &[String]) -> u64 {
    let null = Value::Null;
    let refs: Vec<&Value> = t
        .project_values(key)
        .into_iter()
        .map(|v| v.unwrap_or(&null))
        .collect();
    hash_key_ref(&refs)
}

/// One local aggregation pass of [`DistCollection::nest_sum`]: sums the value
/// columns per key group. With `finalize` set, NULL sums become `Int(0)`
/// (the reference evaluator's treatment of empty numeric aggregates).
fn sum_partition(
    rows: &[Value],
    key: &[String],
    values: &[String],
    finalize: bool,
) -> Result<Vec<Value>> {
    let mut groups: HashMap<Tuple, Vec<Value>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for row in rows {
        let t = row.as_tuple()?;
        let k = project_tuple(t, key);
        let sums = groups.entry(k.clone()).or_insert_with(|| {
            order.push(k);
            vec![Value::Null; values.len()]
        });
        for (slot, v) in sums.iter_mut().zip(t.project_values(values)) {
            let v = v.unwrap_or(&Value::Null);
            *slot = slot.numeric_add(v)?;
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for k in order {
        let sums = groups.remove(&k).expect("group recorded in order");
        let mut row = k;
        for (name, sum) in values.iter().zip(sums) {
            let sum = match (&sum, finalize) {
                (Value::Null, true) => Value::Int(0),
                _ => sum,
            };
            row.set(name.clone(), sum);
        }
        out.push(Value::Tuple(row));
    }
    Ok(out)
}

/// Executes one morsel of a row fused pipeline with the fault-tolerance
/// envelope — the row twin of the columnar `run_morsel`: a cancellation
/// check at the boundary, a fault-injection draw, and bounded retry that
/// rewinds the [`MorselCtx`] id counters before each attempt.
fn run_morsel_rows<F>(
    ctx: &DistContext,
    step: &F,
    rows: &[Value],
    cx: &mut MorselCtx,
) -> Result<Vec<Value>>
where
    F: Fn(&[Value], &mut MorselCtx) -> Result<Vec<Value>> + Send + Sync,
{
    ctx.check_cancel()?;
    let saved = cx.save();
    with_retry(ctx, || {
        cx.restore(saved.clone());
        ctx.fault_check(FaultSite::Morsel)?;
        step(rows, cx)
    })
}
