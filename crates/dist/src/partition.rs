//! Partitioning primitives: the scoped-thread partition-parallel runner, the
//! hash shuffle, worker memory accounting and key hashing.
//!
//! The engine models a cluster of `workers` executors over `partitions` hash
//! partitions (`partitions >= workers`, as on a real cluster where each
//! executor owns several shuffle partitions). Partition `i` lives on worker
//! `i % workers`; every operator runs its partitions on `workers` OS threads
//! via [`std::thread::scope`], so operator closures only need `Send + Sync`,
//! not `'static`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use trance_nrc::{Tuple, Value};

use crate::error::{ExecError, Result};
use crate::fault::{with_retry, FaultSite};
use crate::ops::RowPart;
use crate::DistContext;

/// Below this many total rows an operator runs on the calling thread: the
/// pool fan-out costs more than the work it would parallelize.
pub(crate) const PARALLEL_THRESHOLD: usize = 256;

/// Splits rows round-robin into `partitions` slices (balanced independent of
/// input order).
pub(crate) fn split_round_robin(rows: Vec<Value>, partitions: usize) -> Vec<Vec<Value>> {
    let partitions = partitions.max(1);
    let mut parts: Vec<Vec<Value>> = (0..partitions)
        .map(|i| {
            Vec::with_capacity(rows.len() / partitions + usize::from(i < rows.len() % partitions))
        })
        .collect();
    for (i, row) in rows.into_iter().enumerate() {
        parts[i % partitions].push(row);
    }
    parts
}

/// Anything that can report how many rows it holds — lets the scoped-thread
/// partition runner work over row partitions (`Vec<Value>`) and columnar
/// partitions ([`crate::batch::Batch`]) alike.
pub(crate) trait PartRows {
    /// Number of rows in the partition.
    fn part_rows(&self) -> usize;
}

impl PartRows for Vec<Value> {
    fn part_rows(&self) -> usize {
        self.len()
    }
}

impl PartRows for crate::batch::Batch {
    fn part_rows(&self) -> usize {
        self.rows()
    }
}

/// Runs `f` once per partition, in parallel on the context's **persistent
/// worker pool**, and returns the per-partition results in partition order.
/// The first error (lowest partition index) wins.
///
/// Partition `i` is assigned to pool slot `i % workers` — the same
/// deterministic placement the old per-operator scoped threads used — and an
/// idle participant steals queued partitions from busy ones.
///
/// This is also the engine's **lineage-recovery boundary** for staged
/// operators: a partition whose task failed *retryably* (an injected fault
/// or transient I/O that exhausted its bounded per-task retries) is
/// recomputed here from its still-available source partition — the
/// superstep-recovery model: inputs are immutable within an operator, so
/// re-running `f` on the source reproduces the lost output exactly.
/// Cancellation is checked once per partition on the caller before tasks
/// fan out, and re-checked when recovery would otherwise retry.
pub(crate) fn run_partitioned<P, T, F>(ctx: &DistContext, parts: &[P], f: F) -> Result<Vec<T>>
where
    P: PartRows + Sync,
    F: Fn(usize, &P) -> Result<T> + Send + Sync,
    T: Send,
{
    let recover = |i: usize, part: &P, e: ExecError| -> Result<T> {
        if !e.is_retryable() {
            return Err(e);
        }
        ctx.check_cancel()?;
        ctx.stats().record_recovered_partition();
        with_retry(ctx, || f(i, part))
    };
    let workers = ctx.config().workers.max(1);
    let total_rows: usize = parts.iter().map(PartRows::part_rows).sum();
    if workers == 1 || parts.len() <= 1 || total_rows < PARALLEL_THRESHOLD {
        let mut out = Vec::with_capacity(parts.len());
        for (i, p) in parts.iter().enumerate() {
            ctx.check_cancel()?;
            match f(i, p) {
                Ok(v) => out.push(v),
                Err(e) => out.push(recover(i, p, e)?),
            }
        }
        return Ok(out);
    }
    ctx.check_cancel()?;
    let slots: Vec<Mutex<Option<Result<T>>>> = parts.iter().map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let slots = &slots;
            let f = &f;
            Box::new(move || {
                *slots[i].lock().unwrap() = Some(f(i, part));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    ctx.run_tasks(tasks);
    let mut out = Vec::with_capacity(parts.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap() {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => out.push(recover(i, &parts[i], e)?),
            None => return Err(ExecError::Other("partition task did not run".into())),
        }
    }
    Ok(out)
}

/// Enforces the simulated per-worker memory cap on a freshly materialized
/// partition set. Partition `i` is charged to worker `i % workers`. Only
/// reached with spilling off; partitions already on disk (left over from a
/// spill-enabled producer) still charge their logical size — turning
/// spilling off mid-pipeline does not grant free memory.
pub(crate) fn enforce_memory(ctx: &DistContext, parts: &[RowPart]) -> Result<()> {
    let Some(limit) = ctx.config().worker_memory else {
        return Ok(());
    };
    let workers = ctx.config().workers.max(1);
    let mut used = vec![0usize; workers];
    for (i, part) in parts.iter().enumerate() {
        used[i % workers] += part.logical_bytes();
    }
    for (worker, used_bytes) in used.into_iter().enumerate() {
        if used_bytes > limit {
            return Err(ExecError::MemoryExceeded {
                worker,
                used_bytes,
                limit_bytes: limit,
            });
        }
    }
    Ok(())
}

/// Hash of an arbitrary value, stable within a process run.
pub(crate) fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Hash of a multi-column key.
pub(crate) fn hash_key(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// Hash of a borrowed multi-column key; agrees with [`hash_key`] for equal
/// values, so probe-side keys never need cloning.
pub(crate) fn hash_key_ref(key: &[&Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in key {
        (*v).hash(&mut h);
    }
    h.finish()
}

/// Extracts the values of `cols` from a row as a join/grouping key.
///
/// Returns `None` when any key column is missing or NULL: such rows can never
/// satisfy an equality predicate (`NULL = x` is false in the compiled
/// predicates), so inner joins drop them and outer joins emit them unmatched.
pub(crate) fn key_of(t: &Tuple, cols: &[String]) -> Option<Vec<Value>> {
    key_of_ref(t, cols).map(|key| key.into_iter().cloned().collect())
}

/// Borrowing variant of [`key_of`]: the hash-join build and probe loops use
/// this so no key value is cloned per row.
pub(crate) fn key_of_ref<'a>(t: &'a Tuple, cols: &[String]) -> Option<Vec<&'a Value>> {
    let slots = t.project_values(cols);
    let mut key = Vec::with_capacity(cols.len());
    for slot in slots {
        match slot {
            Some(Value::Null) | None => return None,
            Some(v) => key.push(v),
        }
    }
    Some(key)
}

/// A hash table keyed by borrowed multi-column keys, probe-able with keys of
/// a *different* lifetime (the scoped-thread closures' reborrowed rows):
/// entries bucket by [`hash_key_ref`] and compare by value. This is what lets
/// the hash joins build and probe without cloning a single key value.
pub(crate) struct RefKeyTable<'a, V> {
    buckets: HashMap<u64, Vec<(Vec<&'a Value>, V)>>,
}

impl<'a, V> RefKeyTable<'a, V> {
    pub(crate) fn with_capacity(n: usize) -> Self {
        RefKeyTable {
            buckets: HashMap::with_capacity(n),
        }
    }

    /// Returns the slot for `key`, inserting `default()` when absent.
    pub(crate) fn entry_or_insert_with(
        &mut self,
        key: Vec<&'a Value>,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        let bucket = self.buckets.entry(hash_key_ref(&key)).or_default();
        match bucket.iter().position(|(k, _)| k == &key) {
            Some(i) => &mut bucket[i].1,
            None => {
                bucket.push((key, default()));
                &mut bucket.last_mut().expect("just pushed").1
            }
        }
    }

    /// Looks up a probe key of any lifetime.
    pub(crate) fn get(&self, key: &[&Value]) -> Option<&V> {
        self.buckets.get(&hash_key_ref(key)).and_then(|bucket| {
            bucket
                .iter()
                .find(|(k, _)| k.len() == key.len() && k.iter().zip(key).all(|(a, b)| *a == *b))
                .map(|(_, v)| v)
        })
    }
}

/// Repartitions rows by `route` (a hash per row), metering the move as a
/// shuffle under `op`. Returns the new partition set (same partition count).
pub(crate) fn shuffle<F>(ctx: &DistContext, parts: &[RowPart], route: F) -> Result<Vec<Vec<Value>>>
where
    F: Fn(&Value) -> Result<u64> + Send + Sync,
{
    let nparts = ctx.config().partitions.max(1);
    let bucketed = run_partitioned(ctx, parts, |_, part| {
        // The shuffle-delivery injection point: a fault fails this source
        // partition's whole routing pass before any bucket ships, so a
        // retry rebuilds the delivery from scratch (no partial double
        // send).
        with_retry(ctx, || {
            ctx.fault_check(FaultSite::Shuffle)?;
            let rows = part.rows(ctx)?;
            let mut buckets: Vec<Vec<Value>> = (0..nparts).map(|_| Vec::new()).collect();
            let mut bytes = 0u64;
            for row in rows.iter() {
                bytes += trance_nrc::MemSize::mem_size(row) as u64;
                let target = (route(row)? % nparts as u64) as usize;
                buckets[target].push(row.clone());
            }
            Ok((buckets, rows.len() as u64, bytes))
        })
    })?;
    let mut out: Vec<Vec<Value>> = (0..nparts).map(|_| Vec::new()).collect();
    let mut tuples = 0u64;
    let mut bytes = 0u64;
    for (buckets, t, b) in bucketed {
        tuples += t;
        bytes += b;
        for (target, bucket) in buckets.into_iter().enumerate() {
            out[target].extend(bucket);
        }
    }
    // Rows ship as heap values: the logical estimate *is* the physical
    // representation, so both counters advance by the same amount.
    ctx.stats().record_shuffle(tuples, bytes, bytes);
    Ok(out)
}
