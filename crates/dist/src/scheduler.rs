//! The persistent worker pool: morsel-driven task scheduling with
//! work-stealing deques.
//!
//! One [`WorkerPool`] lives inside every [`crate::DistContext`] and is
//! created **once** per context — operators no longer pay a
//! `std::thread::scope` spawn per execution. The pool models the cluster's
//! `workers` executors as `workers` *participants*:
//!
//! * `workers - 1` persistent OS threads, each owning one work-stealing
//!   deque (slot `1..workers`);
//! * the **calling thread** of [`WorkerPool::run`], which owns slot `0` and
//!   executes tasks while it waits — so a 1-worker cluster runs everything
//!   inline on the caller with zero pool threads, and an N-worker cluster
//!   never runs more than N tasks concurrently.
//!
//! Tasks are distributed round-robin over the slots (task `i` starts on slot
//! `i % workers`, the same deterministic placement the old scoped-thread
//! striping had); a participant that drains its own deque **steals** from its
//! siblings' deques (oldest task first). Each steal is counted and surfaced
//! as [`crate::StatsSnapshot::steal_count`] — the scheduler-stress suite
//! leans on uneven morsel sizes to exercise this path.
//!
//! [`WorkerPool::run`] blocks until every submitted task completed, which is
//! what makes borrowing sound: tasks may borrow from the caller's stack
//! (source partitions, fused pipeline closures, output sinks) because the
//! borrow provably outlives every execution. A panicking task does not tear
//! down the pool: the first panic payload is re-raised on the calling thread
//! *after* all tasks of the scope have settled, so sinks and spill files
//! unwind through their normal `Drop` paths (the spill × pipeline tests hold
//! this to "no leaked spill files after a mid-pipeline panic").
//!
//! Nested `run` calls are allowed (an operator executing on a worker may
//! itself fan out): the nested caller participates from its own slot, so
//! progress is guaranteed even when every pool thread is blocked inside a
//! nested scope.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fault::{FaultInjector, FaultSite};

/// A unit of scheduled work. The `bool` argument tells the task whether it
/// was *stolen* (executed by a participant other than the slot it was
/// assigned to), which is how per-scope steal counts stay exact.
type Task = Box<dyn FnOnce(bool) + Send>;

thread_local! {
    /// The slot a pool thread owns; `None` on non-pool threads (which act as
    /// slot 0 when they call [`WorkerPool::run`]).
    static PARTICIPANT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

struct PoolShared {
    /// One work-stealing deque per participant (slot 0 = callers).
    slots: Vec<Mutex<VecDeque<Task>>>,
    /// Number of queued-but-not-yet-taken tasks across all slots.
    queued: AtomicUsize,
    /// Guard for sleeping workers.
    idle: Mutex<()>,
    /// Signalled when tasks are pushed or the pool shuts down.
    work_cond: Condvar,
    shutdown: AtomicBool,
    /// Total steals performed over the pool's lifetime.
    steals: AtomicU64,
    /// Worker threads healed over the pool's lifetime: injected startup
    /// crashes absorbed by respawn, plus worker loops restarted after a
    /// panic escaped onto them.
    healed: AtomicU64,
}

impl PoolShared {
    /// Takes one task, preferring the participant's own deque and stealing
    /// the *oldest* task of a sibling deque otherwise. Returns the task and
    /// whether taking it was a steal.
    fn grab(&self, preferred: usize) -> Option<(Task, bool)> {
        let n = self.slots.len();
        for offset in 0..n {
            let slot = (preferred + offset) % n;
            let task = {
                // A poisoned deque only means a sibling panicked while
                // holding the lock; recover the guard so the settle-before-
                // unwind path reports the *first* panic, not this one.
                let mut deque = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
                if offset == 0 {
                    // Own deque: submission order (a scope pushes all its
                    // tasks up front, so FIFO walks partitions in order).
                    deque.pop_front()
                } else {
                    // Steal from the opposite end, away from the owner.
                    deque.pop_back()
                }
            };
            if let Some(task) = task {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                if offset != 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some((task, offset != 0));
            }
        }
        None
    }

    fn push(&self, slot: usize, task: Task) {
        self.slots[slot % self.slots.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    fn wake_workers(&self) {
        let _guard = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.work_cond.notify_all();
    }
}

/// Completion state of one [`WorkerPool::run`] scope.
struct ScopeState {
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Steals observed on this scope's tasks.
    steals: AtomicU64,
    done: Mutex<()>,
    done_cond: Condvar,
}

/// The persistent work-stealing worker pool of one [`crate::DistContext`].
///
/// See the [module docs](self) for the execution model. Dropping the pool
/// shuts the worker threads down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("participants", &self.shared.slots.len())
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool modelling `workers` executors: `workers - 1` persistent
    /// threads plus the calling thread of each [`WorkerPool::run`].
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_faults(workers, None)
    }

    /// [`WorkerPool::new`] with an optional fault injector: worker threads
    /// draw a [`FaultSite::WorkerStart`] fault when they start, and the
    /// pool heals every injected startup crash (and every panic that
    /// escapes onto a worker loop) by respawning the loop in place — a
    /// fault kills a task, never a pool slot.
    pub fn with_faults(workers: usize, faults: Option<Arc<FaultInjector>>) -> WorkerPool {
        let participants = workers.max(1);
        let shared = Arc::new(PoolShared {
            slots: (0..participants)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            healed: AtomicU64::new(0),
        });
        let handles = (1..participants)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("trance-worker-{slot}"))
                    .spawn(move || {
                        // Injected startup crashes: the thread "dies" before
                        // reaching its loop and the pool immediately
                        // respawns it (counted as a heal). Draws are bounded
                        // so a rate of 1.0 cannot livelock startup.
                        if let Some(inj) = &faults {
                            for _ in 0..8 {
                                if !inj.should_fault(FaultSite::WorkerStart) {
                                    break;
                                }
                                shared.healed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Self-healing loop: a panic escaping the worker
                        // loop (task panics are caught per task in `run`)
                        // restarts the loop instead of silently shrinking
                        // the pool.
                        loop {
                            if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, slot))).is_ok()
                            {
                                break; // clean shutdown
                            }
                            shared.healed.fetch_add(1, Ordering::Relaxed);
                            if shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of participants (the configured worker count).
    pub fn participants(&self) -> usize {
        self.shared.slots.len()
    }

    /// Total steals performed over the pool's lifetime.
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Worker threads healed over the pool's lifetime (injected startup
    /// crashes absorbed plus worker loops restarted after a panic).
    pub fn healed_count(&self) -> u64 {
        self.shared.healed.load(Ordering::Relaxed)
    }

    /// Runs `tasks` on the pool and blocks until all of them completed,
    /// returning how many were executed by a participant other than the slot
    /// they were assigned to (the scope's steal count).
    ///
    /// Task `i` is assigned to slot `i % workers` — the same deterministic
    /// placement as the old per-operator scoped threads. The calling thread
    /// participates (it owns slot 0, or its own slot when it *is* a pool
    /// worker running a nested scope). If any task panicked, the first
    /// payload is re-raised here after every task of the scope settled.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) -> u64 {
        if tasks.is_empty() {
            return 0;
        }
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(tasks.len()),
            panic: Mutex::new(None),
            steals: AtomicU64::new(0),
            done: Mutex::new(()),
            done_cond: Condvar::new(),
        });
        for (i, task) in tasks.into_iter().enumerate() {
            // SAFETY: `run` does not return before `state.pending` hits zero,
            // i.e. before every submitted task has finished executing, so the
            // `'env` borrows inside the task outlive its execution. The task
            // is boxed, moved exactly once into the queue and consumed
            // exactly once by a participant.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let scope = Arc::clone(&state);
            let wrapped: Task = Box::new(move |stolen| {
                if stolen {
                    scope.steals.fetch_add(1, Ordering::Relaxed);
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    let mut slot = scope.panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                if scope.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _guard = scope.done.lock().unwrap_or_else(|e| e.into_inner());
                    scope.done_cond.notify_all();
                }
            });
            self.shared.push(i, wrapped);
        }
        self.shared.wake_workers();

        // The caller participates from its own slot (0 for external threads,
        // the owned slot for a pool worker running a nested scope), then
        // keeps helping with *any* runnable task until the scope drains —
        // this is what makes nested scopes deadlock-free.
        let preferred = PARTICIPANT.with(|p| p.get()).unwrap_or(0);
        while state.pending.load(Ordering::Acquire) > 0 {
            match self.shared.grab(preferred) {
                Some((task, stolen)) => task(stolen),
                None => {
                    let guard = state.done.lock().unwrap_or_else(|e| e.into_inner());
                    if state.pending.load(Ordering::Acquire) > 0 {
                        // Timed wait: the remaining tasks run on workers that
                        // may finish between our check and the wait. Poison
                        // here is survivable too — the scope's first panic is
                        // re-raised below, not masked by a second one.
                        let _ = state
                            .done_cond
                            .wait_timeout(guard, Duration::from_millis(1))
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        if let Some(payload) = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
            std::panic::resume_unwind(payload);
        }
        state.steals.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_workers();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    PARTICIPANT.with(|p| p.set(Some(slot)));
    loop {
        if let Some((task, stolen)) = shared.grab(slot) {
            task(stolen);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
        if shared.queued.load(Ordering::Relaxed) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // Timed wait keeps a missed notify benign.
            let _ = shared
                .work_cond
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Per-partition mutable state threaded through a **sequential** fused
/// pipeline: the partition index, the cluster's id stride, and one running
/// row counter per id-assigning pipeline member (`AddIndex`, outer unnest) —
/// so fused unique ids reproduce the staged executor's
/// `partition + row * stride` numbering exactly.
#[derive(Debug)]
pub struct MorselCtx {
    /// Index of the partition this morsel belongs to.
    pub partition: usize,
    /// Id stride (the cluster's partition count).
    pub stride: i64,
    counters: Vec<i64>,
}

impl MorselCtx {
    /// State for one partition of a pipeline run.
    pub fn new(partition: usize, stride: i64) -> MorselCtx {
        MorselCtx {
            partition,
            stride,
            counters: Vec::new(),
        }
    }

    /// Snapshot of the counters, taken before a morsel attempt so bounded
    /// retry can rewind id assignment — a failed attempt must not burn ids,
    /// or the retried output would diverge from the staged oracle.
    pub fn save(&self) -> Vec<i64> {
        self.counters.clone()
    }

    /// Rewinds the counters to a [`MorselCtx::save`] snapshot.
    pub fn restore(&mut self, saved: Vec<i64>) {
        self.counters = saved;
    }

    /// Reserves `n` consecutive per-partition row indices on counter `slot`
    /// (one slot per id-assigning pipeline member), returning the first.
    pub fn reserve(&mut self, slot: usize, n: usize) -> i64 {
        if self.counters.len() <= slot {
            self.counters.resize(slot + 1, 0);
        }
        let start = self.counters[slot];
        self.counters[slot] += n as i64;
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_all_tasks_and_reports_completion() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn single_worker_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.participants(), 1);
        let order = Mutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let steals = pool.run(tasks);
        assert_eq!(steals, 0, "a 1-participant pool cannot steal");
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_after_the_scope_settles_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..12)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 5 {
                            panic!("morsel task failure");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "the task panic must reach the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            11,
            "all non-panicking tasks still run before the panic re-raises"
        );
        // The pool stays healthy for the next scope.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn imbalanced_tasks_get_stolen() {
        let pool = WorkerPool::new(2);
        // Slot 0 (the caller) gets one long task; slot 1's worker drains its
        // own deque and then must steal the caller's remaining tasks.
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let steals = pool.run(tasks);
        assert!(
            steals >= 1,
            "the idle participant should steal from the busy one (saw {steals})"
        );
        assert!(pool.steal_count() >= steals);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = &total;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn morsel_ctx_reserves_consecutive_ranges_per_slot() {
        let mut cx = MorselCtx::new(3, 8);
        assert_eq!(cx.reserve(0, 10), 0);
        assert_eq!(cx.reserve(0, 5), 10);
        assert_eq!(cx.reserve(1, 4), 0);
        assert_eq!(cx.reserve(0, 1), 15);
        assert_eq!(cx.reserve(1, 2), 4);
    }
}
