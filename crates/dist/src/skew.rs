//! Skew-aware processing (Section 5 of the paper).
//!
//! A [`SkewTriple`] represents a collection split into a *light* part (keys
//! with ordinary frequencies) and a *heavy* part (keys frequent enough to
//! overload a single hash partition). Heavy keys are found by sampling key
//! frequencies; a key is heavy when its sampled share reaches the cluster's
//! heavy-key threshold (by default `1 / partitions` — the share at which one
//! partition would hold more than its fair slice).
//!
//! Joins then process the two parts differently:
//!
//! * the light part uses the regular partitioned shuffle join;
//! * the heavy part **broadcasts the matching rows of the other side** (few,
//!   because only a handful of keys are heavy) and keeps the heavy rows in
//!   place — no shuffle of the skewed data at all. If those matching rows
//!   exceed the broadcast limit, the engine falls back to a shuffle join and
//!   counts it in [`crate::StatsSnapshot::skew_fallback_joins`].
//!
//! [`SkewTriple::merged`] unions the two results back into one collection.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use trance_nrc::Value;

use crate::error::Result;
use crate::join::{join_impl, JoinPath, JoinSpec};
use crate::ops::DistCollection;
use crate::partition::key_of;
use crate::ClusterConfig;

/// A collection split into light and heavy sub-collections by key frequency.
#[derive(Debug, Clone)]
pub struct SkewTriple {
    light: DistCollection,
    heavy: DistCollection,
    heavy_keys: Option<Arc<HashSet<Vec<Value>>>>,
}

impl SkewTriple {
    /// Wraps a collection whose skew is not yet known: everything starts in
    /// the light part and operators split on demand.
    pub fn unknown(data: DistCollection) -> SkewTriple {
        let heavy = data.context().empty();
        SkewTriple {
            light: data,
            heavy,
            heavy_keys: None,
        }
    }

    /// The light sub-collection.
    pub fn light(&self) -> &DistCollection {
        &self.light
    }

    /// The heavy sub-collection.
    pub fn heavy(&self) -> &DistCollection {
        &self.heavy
    }

    /// The heavy keys of the most recent split, if one happened.
    pub fn heavy_key_count(&self) -> usize {
        self.heavy_keys.as_ref().map_or(0, |k| k.len())
    }

    /// Reunites the light and heavy results into one collection.
    pub fn merged(&self) -> Result<DistCollection> {
        self.light.union(&self.heavy)
    }

    /// Skew-aware equi-join (Section 5): samples the left side's key
    /// frequencies, shuffle-joins the light keys, and broadcast-joins the
    /// heavy keys (falling back to a shuffle when the matching right rows
    /// exceed the broadcast limit).
    pub fn join(&self, right: &DistCollection, spec: &JoinSpec) -> Result<SkewTriple> {
        let left = self.merged()?;
        let ctx = left.context().clone();
        left.timed("skew_join", || {
            let heavy_keys = detect_heavy_keys(&left, spec.left_keys(), ctx.config())?;
            if heavy_keys.is_empty() {
                return Ok(SkewTriple {
                    light: left.join(right, spec)?,
                    heavy: ctx.empty(),
                    heavy_keys: None,
                });
            }
            let keys = Arc::new(heavy_keys);
            let (left_light, left_heavy) = split_by_keys(&left, spec.left_keys(), &keys)?;
            let (right_light, right_heavy) = split_by_keys(right, spec.right_keys(), &keys)?;
            let light = left_light.join(&right_light, spec)?;
            let heavy = if right_heavy.total_bytes() <= ctx.config().broadcast_limit {
                join_impl(
                    &left_heavy,
                    &right_heavy,
                    spec,
                    JoinPath::ForceBroadcastRight { skew: true },
                )?
            } else {
                join_impl(
                    &left_heavy,
                    &right_heavy,
                    spec,
                    JoinPath::ForceShuffle { skew: true },
                )?
            };
            Ok(SkewTriple {
                light,
                heavy,
                heavy_keys: Some(keys),
            })
        })
    }

    /// Skew-aware `Γ+` aggregation: heavy grouping keys are aggregated
    /// separately from the light ones so a dominant key cannot overload the
    /// partition its hash lands on. Both parts use map-side partial
    /// aggregation, so the heavy shuffle moves at most one partial row per
    /// source partition per heavy key.
    pub fn nest_sum(&self, key: &[String], values: &[String]) -> Result<SkewTriple> {
        let rows = self.merged()?;
        let ctx = rows.context().clone();
        rows.timed("skew_nest_sum", || {
            let heavy_keys = detect_heavy_keys(&rows, key, ctx.config())?;
            if heavy_keys.is_empty() {
                return Ok(SkewTriple {
                    light: rows.nest_sum(key, values)?,
                    heavy: ctx.empty(),
                    heavy_keys: None,
                });
            }
            let keys = Arc::new(heavy_keys);
            let (light, heavy) = split_by_keys(&rows, key, &keys)?;
            Ok(SkewTriple {
                light: light.nest_sum(key, values)?,
                heavy: heavy.nest_sum(key, values)?,
                heavy_keys: Some(keys),
            })
        })
    }
}

/// Samples key frequencies and returns the keys whose sampled share reaches
/// the cluster's heavy-key threshold.
///
/// Sampling is deterministic (every `stride`-th row up to
/// [`ClusterConfig::skew_sample`] rows), so repeated runs agree on the split.
pub fn detect_heavy_keys(
    data: &DistCollection,
    key_cols: &[String],
    config: &ClusterConfig,
) -> Result<HashSet<Vec<Value>>> {
    let total: usize = data.len();
    if total == 0 {
        return Ok(HashSet::new());
    }
    let sample_target = config.skew_sample.max(1);
    let stride = (total / sample_target).max(1);
    let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut sampled = 0usize;
    let parts = data.partitions()?;
    for (i, row) in parts.iter().flat_map(|p| p.iter()).enumerate() {
        if i % stride != 0 {
            continue;
        }
        sampled += 1;
        if let Some(key) = key_of(row.as_tuple()?, key_cols) {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    if sampled == 0 {
        return Ok(HashSet::new());
    }
    let threshold = config.heavy_key_threshold();
    let min_count = (threshold * sampled as f64).max(2.0);
    Ok(counts
        .into_iter()
        .filter(|(_, c)| *c as f64 >= min_count)
        .map(|(k, _)| k)
        .collect())
}

/// Splits a collection into (keys not in `keys`, keys in `keys`) without
/// moving rows between partitions.
fn split_by_keys(
    data: &DistCollection,
    key_cols: &[String],
    keys: &Arc<HashSet<Vec<Value>>>,
) -> Result<(DistCollection, DistCollection)> {
    let in_set = |row: &Value| -> Result<bool> {
        Ok(match key_of(row.as_tuple()?, key_cols) {
            Some(k) => keys.contains(&k),
            None => false,
        })
    };
    let light = data.filter(|row| Ok(!in_set(row)?))?;
    let heavy = data.filter(in_set)?;
    Ok((light, heavy))
}
