//! The engine side of the out-of-core subsystem: the compact on-disk
//! serialization of [`Batch`] and of row partitions, plus the spilled-part
//! bookkeeping the operators use.
//!
//! A spilled **columnar** partition is a `trance-store` spill file whose
//! frames are encoded batch chunks (at most [`SPILL_CHUNK_ROWS`] rows each):
//! schema header (field names + opaque flag), then one typed column per
//! attribute — `i64`/`f64`/`bool`/date vectors, string dictionaries
//! (concatenated buffer + offsets + codes), offset-encoded bag columns whose
//! child batch recurses through the same format, and the null/absent
//! validity bitmaps as raw words. The round trip is lossless, like the
//! in-memory `Value` ↔ `Batch` path; `dist/tests/spill_roundtrip.rs` holds it
//! to strict equality on random nested batches.
//!
//! A spilled **row** partition stores frames of encoded `Vec<Value>` chunks
//! (the `trance-store` value codec), so the row-representation differential
//! oracle spills through the same machinery.
//!
//! All writes and reads are metered into the context [`crate::Stats`]
//! (`spilled_bytes`, `spill_files`, `spill_micros`).

use std::sync::Arc;
use std::time::Instant;

use trance_nrc::{MemSize, Value};
use trance_store::{
    decode_value, encode_value, ByteReader, ByteWriter, SpillHandle, SpillReader, Spillable,
};

use crate::batch::{BagElems, Batch, Bitmap, Column, Schema, StrDict};
use crate::error::Result;
use crate::fault::{with_retry, FaultSite};
use crate::DistContext;

/// Maximum rows per spill frame: bounds the memory a streaming reader needs
/// to hold one decoded chunk.
pub const SPILL_CHUNK_ROWS: usize = 2048;

// ---------------------------------------------------------------------------
// batch codec
// ---------------------------------------------------------------------------

// Column tags — part of the on-disk format, do not renumber.
const COL_INT: u8 = 0;
const COL_REAL: u8 = 1;
const COL_BOOL: u8 = 2;
const COL_DATE: u8 = 3;
const COL_STR: u8 = 4;
const COL_BAG_ROWS: u8 = 5;
const COL_BAG_VALUES: u8 = 6;
const COL_OTHER: u8 = 7;

fn encode_bitmap(bm: &Bitmap, w: &mut ByteWriter) -> std::io::Result<()> {
    w.len_u32(bm.len(), "bitmap bits")?;
    for word in bm.words() {
        w.u64(*word);
    }
    Ok(())
}

fn decode_bitmap(r: &mut ByteReader<'_>) -> std::io::Result<Bitmap> {
    let len = r.u32()? as usize;
    let mut words = Vec::with_capacity(len.div_ceil(64));
    for _ in 0..len.div_ceil(64) {
        words.push(r.u64()?);
    }
    Ok(Bitmap::from_words(words, len))
}

fn encode_column(col: &Column, w: &mut ByteWriter) -> std::io::Result<()> {
    macro_rules! prim {
        ($tag:expr, $data:expr, $nulls:expr, $absent:expr, $write:ident) => {{
            w.u8($tag);
            w.len_u32($data.len(), "column values")?;
            for v in $data {
                w.$write(*v);
            }
            encode_bitmap($nulls, w)?;
            encode_bitmap($absent, w)?;
        }};
    }
    match col {
        Column::Int {
            data,
            nulls,
            absent,
        } => prim!(COL_INT, data, nulls, absent, i64),
        Column::Real {
            data,
            nulls,
            absent,
        } => prim!(COL_REAL, data, nulls, absent, f64),
        Column::Date {
            data,
            nulls,
            absent,
        } => prim!(COL_DATE, data, nulls, absent, i64),
        Column::Bool {
            data,
            nulls,
            absent,
        } => {
            w.u8(COL_BOOL);
            w.len_u32(data.len(), "column values")?;
            for v in data {
                w.u8(u8::from(*v));
            }
            encode_bitmap(nulls, w)?;
            encode_bitmap(absent, w)?;
        }
        Column::Str {
            dict,
            codes,
            nulls,
            absent,
        } => {
            w.u8(COL_STR);
            let (bytes, offsets) = dict.raw_parts();
            w.str(bytes)?;
            w.len_u32(offsets.len(), "dictionary offsets")?;
            for o in offsets {
                w.u32(*o);
            }
            w.len_u32(codes.len(), "dictionary codes")?;
            for c in codes {
                w.u32(*c);
            }
            encode_bitmap(nulls, w)?;
            encode_bitmap(absent, w)?;
        }
        Column::Bag {
            offsets,
            elems,
            nulls,
            absent,
        } => {
            match elems {
                BagElems::Rows(child) => {
                    w.u8(COL_BAG_ROWS);
                    w.len_u32(offsets.len(), "bag offsets")?;
                    for o in offsets {
                        w.u32(*o);
                    }
                    child.encode(w)?;
                }
                BagElems::Values(values) => {
                    w.u8(COL_BAG_VALUES);
                    w.len_u32(offsets.len(), "bag offsets")?;
                    for o in offsets {
                        w.u32(*o);
                    }
                    w.len_u32(values.len(), "bag values")?;
                    for v in values {
                        encode_value(v, w)?;
                    }
                }
            }
            encode_bitmap(nulls, w)?;
            encode_bitmap(absent, w)?;
        }
        Column::Other { values, absent } => {
            w.u8(COL_OTHER);
            w.len_u32(values.len(), "column values")?;
            for v in values {
                encode_value(v, w)?;
            }
            encode_bitmap(absent, w)?;
        }
    }
    Ok(())
}

fn decode_column(r: &mut ByteReader<'_>) -> std::io::Result<Column> {
    let tag = r.u8()?;
    macro_rules! prim {
        ($variant:ident, $read:ident) => {{
            let n = r.u32()? as usize;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.$read()?);
            }
            let nulls = decode_bitmap(r)?;
            let absent = decode_bitmap(r)?;
            Column::$variant {
                data,
                nulls,
                absent,
            }
        }};
    }
    Ok(match tag {
        COL_INT => prim!(Int, i64),
        COL_REAL => prim!(Real, f64),
        COL_DATE => prim!(Date, i64),
        COL_BOOL => {
            let n = r.u32()? as usize;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.u8()? != 0);
            }
            let nulls = decode_bitmap(r)?;
            let absent = decode_bitmap(r)?;
            Column::Bool {
                data,
                nulls,
                absent,
            }
        }
        COL_STR => {
            let bytes = r.str()?;
            let n_offsets = r.u32()? as usize;
            let mut offsets = Vec::with_capacity(n_offsets);
            for _ in 0..n_offsets {
                offsets.push(r.u32()?);
            }
            let n_codes = r.u32()? as usize;
            let mut codes = Vec::with_capacity(n_codes);
            for _ in 0..n_codes {
                codes.push(r.u32()?);
            }
            let nulls = decode_bitmap(r)?;
            let absent = decode_bitmap(r)?;
            Column::Str {
                dict: StrDict::from_raw(bytes, offsets),
                codes,
                nulls,
                absent,
            }
        }
        COL_BAG_ROWS | COL_BAG_VALUES => {
            let n_offsets = r.u32()? as usize;
            let mut offsets = Vec::with_capacity(n_offsets);
            for _ in 0..n_offsets {
                offsets.push(r.u32()?);
            }
            let elems = if tag == COL_BAG_ROWS {
                BagElems::Rows(Box::new(Batch::decode(r)?))
            } else {
                let n = r.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(decode_value(r)?);
                }
                BagElems::Values(values)
            };
            let nulls = decode_bitmap(r)?;
            let absent = decode_bitmap(r)?;
            Column::Bag {
                offsets,
                elems,
                nulls,
                absent,
            }
        }
        COL_OTHER => {
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_value(r)?);
            }
            let absent = decode_bitmap(r)?;
            Column::Other { values, absent }
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown column tag {other} in spill frame"),
            ))
        }
    })
}

/// The compact on-disk batch layout: row count, schema header (opaque flag +
/// field names), then the typed columns.
impl Spillable for Batch {
    fn encode(&self, w: &mut ByteWriter) -> std::io::Result<()> {
        w.len_u32(self.rows(), "batch rows")?;
        w.u8(u8::from(self.schema().is_opaque()));
        w.len_u32(self.schema().fields().len(), "schema fields")?;
        for f in self.schema().fields() {
            w.str(f)?;
        }
        w.len_u32(self.columns().len(), "batch columns")?;
        for col in self.columns() {
            encode_column(col, w)?;
        }
        Ok(())
    }

    fn decode(r: &mut ByteReader<'_>) -> std::io::Result<Batch> {
        let rows = r.u32()? as usize;
        let opaque = r.u8()? != 0;
        let n_fields = r.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            fields.push(r.str()?);
        }
        let schema = if opaque {
            Schema::opaque()
        } else {
            Schema::new(fields)
        };
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            columns.push(Arc::new(decode_column(r)?));
        }
        Ok(Batch::from_raw(Arc::new(schema), columns, rows))
    }
}

// ---------------------------------------------------------------------------
// spilled partitions
// ---------------------------------------------------------------------------

/// A columnar partition resident on disk: the sealed spill file plus the
/// metadata planners need without reading it back (row count and the
/// logical / physical sizes it had in memory). A partition that never
/// received a row carries no file at all (`handle: None`) — empty Grace
/// buckets must not create files or count in the spill stats.
#[derive(Debug)]
pub struct SpilledBatches {
    handle: Option<SpillHandle>,
    rows: usize,
    logical_bytes: usize,
    physical_bytes: usize,
}

impl SpilledBatches {
    /// Number of rows on disk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row-equivalent (logical) bytes the partition had in memory.
    pub fn logical_bytes(&self) -> usize {
        self.logical_bytes
    }

    /// Physical buffer bytes the partition had in memory.
    pub fn physical_bytes(&self) -> usize {
        self.physical_bytes
    }
}

/// A row partition resident on disk.
#[derive(Debug)]
pub struct SpilledRows {
    handle: SpillHandle,
    rows: usize,
    bytes: usize,
}

impl SpilledRows {
    /// Number of rows on disk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `Value::mem_size` bytes the partition had in memory.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// True for a batch carrying no information at all — no rows *and* no
/// schema. Such batches are skipped by both the resident accumulation path
/// and the spill writer (one shared predicate, so whether a partition
/// spilled cannot change which batches survive).
pub(crate) fn batch_is_void(batch: &Batch) -> bool {
    batch.is_empty() && batch.schema().fields().is_empty()
}

/// The memory governor pass every materialization runs under spilling: maps
/// each partition to its resident bytes, asks the governor for victims, and
/// replaces each victim with its spilled form — one definition serving both
/// the row and the columnar engine, so victim policy cannot drift between
/// the differential twins.
pub(crate) fn govern_materialized<P>(
    ctx: &DistContext,
    parts: &mut [P],
    resident_bytes: impl Fn(&P) -> usize,
    spill_part: impl Fn(&P) -> Result<P>,
) -> Result<()> {
    let gov = trance_store::MemoryGovernor::new(
        ctx.config()
            .worker_memory
            .expect("spill_active implies a worker memory cap"),
        ctx.config().workers,
    );
    let sizes: Vec<usize> = parts.iter().map(&resident_bytes).collect();
    for victim in gov.plan_spills(&sizes) {
        parts[victim] = spill_part(&parts[victim])?;
    }
    Ok(())
}

/// Splits a batch into row-range chunks of at most [`SPILL_CHUNK_ROWS`] rows
/// (one spill frame each).
pub(crate) fn batch_chunks(batch: &Batch) -> Vec<Batch> {
    if batch.rows() <= SPILL_CHUNK_ROWS {
        return vec![batch.clone()];
    }
    let mut out = Vec::with_capacity(batch.rows().div_ceil(SPILL_CHUNK_ROWS));
    let mut lo = 0;
    while lo < batch.rows() {
        let hi = (lo + SPILL_CHUNK_ROWS).min(batch.rows());
        let idx: Vec<usize> = (lo..hi).collect();
        out.push(batch.take(&idx));
        lo = hi;
    }
    out
}

/// Incremental writer of one spilled columnar partition: chunks are encoded
/// and appended as frames; [`SpillChunkWriter::finish`] seals the file and
/// meters the spill into the context stats. The file is created lazily on
/// the first pushed row, so a writer that never receives data (an empty
/// Grace bucket) leaves no file behind and is not counted in `spill_files`.
pub(crate) struct SpillChunkWriter {
    file: Option<trance_store::SpillFile>,
    rows: usize,
    logical_bytes: usize,
    physical_bytes: usize,
    elapsed: std::time::Duration,
}

impl SpillChunkWriter {
    /// A writer whose spill file is created on first use.
    pub(crate) fn new(_ctx: &DistContext) -> Result<SpillChunkWriter> {
        Ok(SpillChunkWriter {
            file: None,
            rows: 0,
            logical_bytes: 0,
            physical_bytes: 0,
            elapsed: std::time::Duration::ZERO,
        })
    }

    /// Appends a batch (re-chunked to [`SPILL_CHUNK_ROWS`]-row frames so the
    /// streaming reader's working set stays bounded). Empty batches that
    /// still carry a schema are written (one empty frame), so schema-bearing
    /// partitions survive the disk round trip exactly like the resident
    /// path's `Batch::concat` preserves them.
    pub(crate) fn push(&mut self, ctx: &DistContext, batch: &Batch) -> Result<()> {
        if batch_is_void(batch) {
            return Ok(());
        }
        // Frame-boundary checks: cancellation fires even mid-spill, and
        // injected write faults draw *before* any byte is appended (so a
        // retry re-draws against a clean file state).
        ctx.check_cancel()?;
        with_retry(ctx, || ctx.fault_check(FaultSite::SpillWrite))?;
        let start = Instant::now();
        let file = match self.file.as_mut() {
            Some(file) => file,
            None => self.file.insert(ctx.spill_manager()?.create()?),
        };
        for chunk in batch_chunks(batch) {
            self.rows += chunk.rows();
            self.logical_bytes += chunk.logical_bytes();
            self.physical_bytes += chunk.physical_bytes();
            let mut w = ByteWriter::new();
            chunk.encode(&mut w)?;
            file.append(&w.into_bytes())?;
        }
        self.elapsed += start.elapsed();
        Ok(())
    }

    /// Seals the file (when one was created) and meters the spill.
    pub(crate) fn finish(self, ctx: &DistContext) -> Result<SpilledBatches> {
        let handle = match self.file {
            Some(file) => {
                let bytes = file.bytes();
                let handle = file.finish()?;
                ctx.stats().record_spill(bytes, 1, self.elapsed);
                Some(handle)
            }
            None => None,
        };
        Ok(SpilledBatches {
            handle,
            rows: self.rows,
            logical_bytes: self.logical_bytes,
            physical_bytes: self.physical_bytes,
        })
    }
}

/// Spills one in-memory batch (chunked into frames).
pub(crate) fn spill_batch(ctx: &DistContext, batch: &Batch) -> Result<SpilledBatches> {
    let mut writer = SpillChunkWriter::new(ctx)?;
    writer.push(ctx, batch)?;
    writer.finish(ctx)
}

/// Streaming reader over a spilled columnar partition: one decoded chunk at
/// a time, never the whole partition. Read time is metered as spill time.
pub(crate) struct BatchFrames<'a> {
    ctx: &'a DistContext,
    reader: Option<SpillReader>,
}

impl Iterator for BatchFrames<'_> {
    type Item = Result<Batch>;

    fn next(&mut self) -> Option<Result<Batch>> {
        if self.reader.is_some() {
            // Frame-boundary checks mirror the write side: cancellation
            // stops a half-read partition, injected read faults draw before
            // the frame is consumed so a retry re-reads cleanly.
            if let Err(e) = self.ctx.check_cancel() {
                return Some(Err(e));
            }
            if let Err(e) = with_retry(self.ctx, || self.ctx.fault_check(FaultSite::SpillRead)) {
                return Some(Err(e));
            }
        }
        let reader = self.reader.as_mut()?;
        let start = Instant::now();
        let frame = match reader.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return None,
            Err(e) => return Some(Err(e.into())),
        };
        let out = Batch::decode(&mut ByteReader::new(&frame)).map_err(Into::into);
        self.ctx.stats().record_spill(0, 0, start.elapsed());
        Some(out)
    }
}

/// Opens a streaming reader over a spilled columnar partition (empty for a
/// fileless empty partition).
pub(crate) fn batch_frames<'a>(
    ctx: &'a DistContext,
    spilled: &SpilledBatches,
) -> Result<BatchFrames<'a>> {
    Ok(BatchFrames {
        ctx,
        reader: spilled.handle.as_ref().map(SpillHandle::open).transpose()?,
    })
}

/// Reads a whole spilled columnar partition back into one batch.
pub(crate) fn read_batches(ctx: &DistContext, spilled: &SpilledBatches) -> Result<Batch> {
    let chunks: Vec<Batch> = batch_frames(ctx, spilled)?.collect::<Result<_>>()?;
    Ok(Batch::concat(&chunks))
}

/// Spills one row partition (chunked into frames of [`SPILL_CHUNK_ROWS`]).
pub(crate) fn spill_rows(ctx: &DistContext, rows: &[Value]) -> Result<SpilledRows> {
    let start = Instant::now();
    let manager = ctx.spill_manager()?;
    let mut file = manager.create()?;
    let mut bytes = 0usize;
    for chunk in rows.chunks(SPILL_CHUNK_ROWS.max(1)) {
        ctx.check_cancel()?;
        with_retry(ctx, || ctx.fault_check(FaultSite::SpillWrite))?;
        bytes += chunk.iter().map(MemSize::mem_size).sum::<usize>();
        let mut w = ByteWriter::new();
        w.len_u32(chunk.len(), "row chunk")?;
        for v in chunk {
            encode_value(v, &mut w)?;
        }
        file.append(&w.into_bytes())?;
    }
    let file_bytes = file.bytes();
    let handle = file.finish()?;
    ctx.stats().record_spill(file_bytes, 1, start.elapsed());
    Ok(SpilledRows {
        handle,
        rows: rows.len(),
        bytes,
    })
}

/// Reads a whole spilled row partition back.
pub(crate) fn read_rows(ctx: &DistContext, spilled: &SpilledRows) -> Result<Vec<Value>> {
    let start = Instant::now();
    let mut reader = spilled.handle.open()?;
    let mut out = Vec::with_capacity(spilled.rows);
    loop {
        ctx.check_cancel()?;
        with_retry(ctx, || ctx.fault_check(FaultSite::SpillRead))?;
        let Some(frame) = reader.next_frame()? else {
            break;
        };
        let mut r = ByteReader::new(&frame);
        let n = r.u32().map_err(crate::error::ExecError::from)? as usize;
        for _ in 0..n {
            out.push(decode_value(&mut r).map_err(crate::error::ExecError::from)?);
        }
    }
    ctx.stats().record_spill(0, 0, start.elapsed());
    Ok(out)
}
