//! Engine metrics: shuffle / broadcast volume, join strategy counters and
//! per-operator wall-clock timings.
//!
//! A [`Stats`] instance lives inside the [`crate::DistContext`] and is shared
//! (lock-free for the hot counters) by every operator executed under that
//! context. Benchmark harnesses call [`Stats::reset`] before a run and
//! [`Stats::snapshot`] after it; the resulting [`StatsSnapshot`] is a plain
//! value that can be stored, compared and serialized.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which physical strategy a join execution took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Both sides hash-partitioned by key, per-partition hash join.
    Shuffle,
    /// One side small enough to replicate to every worker.
    Broadcast,
    /// Skew path: heavy keys joined by broadcasting the matching rows of the
    /// other side (Section 5).
    SkewBroadcast,
    /// Skew path: the heavy-key side exceeded the broadcast limit, so the
    /// engine fell back to a shuffle join for the heavy part.
    SkewFallback,
}

/// Aggregated calls/time of one operator kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTiming {
    /// Number of operator executions.
    pub calls: u64,
    /// Total wall-clock microseconds across those executions.
    pub micros: u64,
}

/// Aggregated executions of one **fused pipeline** shape: how often it ran,
/// how many morsels it drove, its total wall-clock time, and the member
/// operators it fused — so `--explain` and `op_ms` stay truthful about where
/// operator time went once operators no longer run (or are timed) one at a
/// time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTiming {
    /// Number of pipeline executions.
    pub calls: u64,
    /// Total morsels driven across those executions.
    pub morsels: u64,
    /// Total wall-clock microseconds across those executions.
    pub micros: u64,
    /// The fused member operators, in execution order (source side first).
    pub ops: Vec<String>,
}

/// Aggregated compilations of one expression kernel program: how often the
/// program was (re)compiled, how many SSA instructions it holds, the
/// wall-clock compile time, and its rendered instruction listing — so
/// `--explain` can show the compiled program per pipeline and regressions in
/// compile overhead stay visible. A healthy run compiles once per pipeline
/// execution, never per morsel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExprProgramStat {
    /// Number of compilations recorded under this label.
    pub compiles: u64,
    /// Total kernel instructions across those compilations.
    pub instrs: u64,
    /// Total wall-clock microseconds spent compiling.
    pub micros: u64,
    /// The rendered instruction listing (first compilation wins; later
    /// programs under the same label are counted but not re-rendered).
    pub text: String,
}

/// Shared, thread-safe metric accumulators of one [`crate::DistContext`].
#[derive(Default)]
pub struct Stats {
    shuffled_tuples: AtomicU64,
    shuffled_bytes: AtomicU64,
    shuffled_bytes_phys: AtomicU64,
    broadcast_tuples: AtomicU64,
    broadcast_bytes: AtomicU64,
    broadcast_bytes_phys: AtomicU64,
    shuffle_joins: AtomicU64,
    broadcast_joins: AtomicU64,
    skew_broadcast_joins: AtomicU64,
    skew_fallback_joins: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    spill_micros: AtomicU64,
    steals: AtomicU64,
    faults_injected: AtomicU64,
    retries: AtomicU64,
    recovered_partitions: AtomicU64,
    cancelled: AtomicU64,
    expr_compile_micros: AtomicU64,
    expr_kernel_instrs: AtomicU64,
    timings: Mutex<BTreeMap<String, OpTiming>>,
    pipelines: Mutex<BTreeMap<String, PipelineTiming>>,
    expr_programs: Mutex<BTreeMap<String, ExprProgramStat>>,
}

impl Stats {
    /// Creates a zeroed metric set.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Zeroes every counter and timing.
    pub fn reset(&self) {
        self.shuffled_tuples.store(0, Ordering::Relaxed);
        self.shuffled_bytes.store(0, Ordering::Relaxed);
        self.shuffled_bytes_phys.store(0, Ordering::Relaxed);
        self.broadcast_tuples.store(0, Ordering::Relaxed);
        self.broadcast_bytes.store(0, Ordering::Relaxed);
        self.broadcast_bytes_phys.store(0, Ordering::Relaxed);
        self.shuffle_joins.store(0, Ordering::Relaxed);
        self.broadcast_joins.store(0, Ordering::Relaxed);
        self.skew_broadcast_joins.store(0, Ordering::Relaxed);
        self.skew_fallback_joins.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
        self.spill_files.store(0, Ordering::Relaxed);
        self.spill_micros.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.recovered_partitions.store(0, Ordering::Relaxed);
        self.cancelled.store(0, Ordering::Relaxed);
        self.expr_compile_micros.store(0, Ordering::Relaxed);
        self.expr_kernel_instrs.store(0, Ordering::Relaxed);
        self.timings.lock().unwrap().clear();
        self.pipelines.lock().unwrap().clear();
        self.expr_programs.lock().unwrap().clear();
    }

    /// Meters rows moving through a shuffle (repartition-by-key).
    ///
    /// `bytes` is the *logical* volume — the row-equivalent
    /// `Value::mem_size` estimate both representations report so their cells
    /// stay comparable. `phys_bytes` is the *exact physical* buffer volume
    /// actually shipped: for the row representation the two coincide (rows
    /// ship as heap values), for the columnar representation it is the batch
    /// buffer size with the schema and string dictionaries counted once per
    /// batch.
    pub fn record_shuffle(&self, tuples: u64, bytes: u64, phys_bytes: u64) {
        self.shuffled_tuples.fetch_add(tuples, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.shuffled_bytes_phys
            .fetch_add(phys_bytes, Ordering::Relaxed);
    }

    /// Meters a dataset replicated to every worker. `bytes` / `phys_bytes`
    /// follow the same logical-vs-physical split as
    /// [`Stats::record_shuffle`].
    pub fn record_broadcast(&self, tuples: u64, bytes: u64, phys_bytes: u64) {
        self.broadcast_tuples.fetch_add(tuples, Ordering::Relaxed);
        self.broadcast_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.broadcast_bytes_phys
            .fetch_add(phys_bytes, Ordering::Relaxed);
    }

    /// Counts which physical strategy a join execution took.
    pub fn record_join(&self, strategy: JoinStrategy) {
        let counter = match strategy {
            JoinStrategy::Shuffle => &self.shuffle_joins,
            JoinStrategy::Broadcast => &self.broadcast_joins,
            JoinStrategy::SkewBroadcast => &self.skew_broadcast_joins,
            JoinStrategy::SkewFallback => &self.skew_fallback_joins,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Meters bytes written to spill files (`bytes`), the number of spill
    /// files created (`files`), and wall-clock time spent encoding, writing,
    /// reading or decoding spill frames (`elapsed`). The spill subsystem
    /// calls this from both the write and the read side, so `spill_ms` is
    /// the run's total out-of-core I/O time.
    pub fn record_spill(&self, bytes: u64, files: u64, elapsed: Duration) {
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_files.fetch_add(files, Ordering::Relaxed);
        self.spill_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Adds one execution of operator `op` taking `elapsed`.
    pub fn record_op(&self, op: &str, elapsed: Duration) {
        let mut timings = self.timings.lock().unwrap();
        let entry = timings.entry(op.to_string()).or_default();
        entry.calls += 1;
        entry.micros += elapsed.as_micros() as u64;
    }

    /// Counts work-stealing events of the persistent worker pool.
    pub fn record_steals(&self, steals: u64) {
        self.steals.fetch_add(steals, Ordering::Relaxed);
    }

    /// Counts one fault fired by the run's [`crate::FaultInjector`].
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one bounded-retry attempt absorbing a retryable failure.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one partition whose output was lost to a fault and recomputed
    /// from its source (lineage recovery).
    pub fn record_recovered_partition(&self) {
        self.recovered_partitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that the run was cancelled (explicitly or by deadline).
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one execution of a fused pipeline under `label` (e.g.
    /// `pipeline[scan+select+project]`) that drove `morsels` morsels across
    /// its `ops` member operators in `elapsed`. The pipeline is mirrored
    /// into the per-operator timings under the same label — fused time is
    /// attributed to the *pipeline with its member list*, never lumped into
    /// a single member operator's bucket.
    pub fn record_pipeline(&self, label: &str, ops: &[String], morsels: u64, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        {
            let mut pipelines = self.pipelines.lock().unwrap();
            let entry = pipelines.entry(label.to_string()).or_default();
            entry.calls += 1;
            entry.morsels += morsels;
            entry.micros += micros;
            if entry.ops.is_empty() {
                entry.ops = ops.to_vec();
            }
        }
        let mut timings = self.timings.lock().unwrap();
        let entry = timings.entry(label.to_string()).or_default();
        entry.calls += 1;
        entry.micros += micros;
    }

    /// Records one compilation of an expression kernel program under `label`
    /// (the fused pipeline's label, or the staged operator's name): `instrs`
    /// SSA instructions compiled in `elapsed`, with `text` the rendered
    /// instruction listing. Called once per pipeline compilation — the
    /// scheduler tests assert the compile count never scales with morsels.
    pub fn record_expr_compile(&self, label: &str, instrs: u64, elapsed: Duration, text: &str) {
        let micros = elapsed.as_micros() as u64;
        self.expr_compile_micros
            .fetch_add(micros, Ordering::Relaxed);
        self.expr_kernel_instrs.fetch_add(instrs, Ordering::Relaxed);
        let mut programs = self.expr_programs.lock().unwrap();
        let entry = programs.entry(label.to_string()).or_default();
        entry.compiles += 1;
        entry.instrs += instrs;
        entry.micros += micros;
        if entry.text.is_empty() {
            entry.text = text.to_string();
        }
    }

    /// Copies the current counters into a plain value.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            shuffled_tuples: self.shuffled_tuples.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            shuffled_bytes_phys: self.shuffled_bytes_phys.load(Ordering::Relaxed),
            broadcast_tuples: self.broadcast_tuples.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            broadcast_bytes_phys: self.broadcast_bytes_phys.load(Ordering::Relaxed),
            shuffle_joins: self.shuffle_joins.load(Ordering::Relaxed),
            broadcast_joins: self.broadcast_joins.load(Ordering::Relaxed),
            skew_broadcast_joins: self.skew_broadcast_joins.load(Ordering::Relaxed),
            skew_fallback_joins: self.skew_fallback_joins.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            spill_micros: self.spill_micros.load(Ordering::Relaxed),
            steal_count: self.steals.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered_partitions: self.recovered_partitions.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            expr_compile_micros: self.expr_compile_micros.load(Ordering::Relaxed),
            expr_kernel_instrs: self.expr_kernel_instrs.load(Ordering::Relaxed),
            op_timings: self.timings.lock().unwrap().clone(),
            pipeline_timings: self.pipelines.lock().unwrap().clone(),
            expr_programs: self.expr_programs.lock().unwrap().clone(),
        }
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Stats({:?})", self.snapshot())
    }
}

/// A point-in-time copy of the engine metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Rows moved through shuffles.
    pub shuffled_tuples: u64,
    /// Logical (row-equivalent `Value::mem_size`) bytes moved through
    /// shuffles — comparable across representations.
    pub shuffled_bytes: u64,
    /// Exact physical buffer bytes moved through shuffles (schema and string
    /// dictionaries counted once per batch on the columnar path; equal to
    /// `shuffled_bytes` on the row path).
    pub shuffled_bytes_phys: u64,
    /// Rows replicated by broadcasts (counted once per receiving worker).
    pub broadcast_tuples: u64,
    /// Logical (row-equivalent) bytes replicated by broadcasts.
    pub broadcast_bytes: u64,
    /// Exact physical buffer bytes replicated by broadcasts.
    pub broadcast_bytes_phys: u64,
    /// Joins executed as partitioned shuffle hash joins.
    pub shuffle_joins: u64,
    /// Joins executed by broadcasting the small side.
    pub broadcast_joins: u64,
    /// Skew-aware joins whose heavy part used the broadcast strategy.
    pub skew_broadcast_joins: u64,
    /// Skew-aware joins whose heavy part fell back to a shuffle.
    pub skew_fallback_joins: u64,
    /// Bytes written to spill files (frame payloads plus prefixes).
    pub spilled_bytes: u64,
    /// Spill files created during the run.
    pub spill_files: u64,
    /// Wall-clock microseconds spent on spill encode/write/read/decode.
    pub spill_micros: u64,
    /// Tasks executed by a pool participant other than the one they were
    /// assigned to (work-stealing events).
    pub steal_count: u64,
    /// Faults fired by the run's [`crate::FaultInjector`] (0 without a
    /// [`crate::FaultPlan`]).
    pub faults_injected: u64,
    /// Bounded-retry attempts that absorbed retryable failures.
    pub retries: u64,
    /// Partitions whose lost outputs were recomputed from their sources
    /// (lineage recovery).
    pub recovered_partitions: u64,
    /// 1 when the run was cancelled (explicitly or by deadline), else 0.
    pub cancelled: u64,
    /// Wall-clock microseconds spent compiling expression kernel programs
    /// (once per pipeline, never per morsel).
    pub expr_compile_micros: u64,
    /// Total SSA instructions across all compiled expression kernel
    /// programs.
    pub expr_kernel_instrs: u64,
    /// Per-operator call counts and wall-clock time. Fused pipelines appear
    /// here under their `pipeline[...]` label, never under a member
    /// operator's name.
    pub op_timings: BTreeMap<String, OpTiming>,
    /// Per-pipeline executions: morsel counts, wall-clock time and the
    /// member operators each fused shape ran.
    pub pipeline_timings: BTreeMap<String, PipelineTiming>,
    /// Per-pipeline compiled expression kernel programs: compile counts,
    /// instruction counts and the rendered instruction listing (shown by
    /// `--explain`).
    pub expr_programs: BTreeMap<String, ExprProgramStat>,
}

impl StatsSnapshot {
    /// Shuffled volume in mebibytes.
    pub fn shuffled_mib(&self) -> f64 {
        self.shuffled_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Broadcast volume in mebibytes.
    pub fn broadcast_mib(&self) -> f64 {
        self.broadcast_bytes as f64 / (1024.0 * 1024.0)
    }

    /// True when at least one join took a broadcast strategy (standard or
    /// skew-aware heavy part).
    pub fn used_broadcast(&self) -> bool {
        self.broadcast_joins > 0 || self.skew_broadcast_joins > 0
    }

    /// Spill I/O time in milliseconds.
    pub fn spill_ms(&self) -> f64 {
        self.spill_micros as f64 / 1000.0
    }

    /// Expression-kernel compile time in milliseconds.
    pub fn expr_compile_ms(&self) -> f64 {
        self.expr_compile_micros as f64 / 1000.0
    }

    /// Total expression-kernel compilations across all pipelines.
    pub fn expr_compiles(&self) -> u64 {
        self.expr_programs.values().map(|p| p.compiles).sum()
    }

    /// Total wall-clock milliseconds spent inside fused pipelines.
    pub fn pipeline_ms(&self) -> f64 {
        self.pipeline_timings
            .values()
            .map(|p| p.micros)
            .sum::<u64>() as f64
            / 1000.0
    }

    /// Total morsels driven across all fused pipelines.
    pub fn total_morsels(&self) -> u64 {
        self.pipeline_timings.values().map(|p| p.morsels).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = Stats::new();
        stats.record_shuffle(10, 1000, 400);
        stats.record_shuffle(5, 500, 200);
        stats.record_broadcast(3, 300, 120);
        stats.record_join(JoinStrategy::Shuffle);
        stats.record_join(JoinStrategy::SkewBroadcast);
        stats.record_op("map", Duration::from_micros(42));
        let snap = stats.snapshot();
        assert_eq!(snap.shuffled_tuples, 15);
        assert_eq!(snap.shuffled_bytes, 1500);
        assert_eq!(snap.shuffled_bytes_phys, 600);
        assert_eq!(snap.broadcast_bytes, 300);
        assert_eq!(snap.broadcast_bytes_phys, 120);
        assert_eq!(snap.shuffle_joins, 1);
        assert_eq!(snap.skew_broadcast_joins, 1);
        assert!(snap.used_broadcast());
        assert_eq!(snap.op_timings["map"].calls, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn pipeline_attribution_keeps_member_ops_and_never_lumps_into_one_op() {
        let stats = Stats::new();
        let ops = vec!["scan".to_string(), "select".to_string(), "map".to_string()];
        stats.record_pipeline(
            "pipeline[scan+select+map]",
            &ops,
            7,
            Duration::from_micros(1500),
        );
        stats.record_pipeline(
            "pipeline[scan+select+map]",
            &ops,
            5,
            Duration::from_micros(500),
        );
        stats.record_steals(3);
        let snap = stats.snapshot();
        let p = &snap.pipeline_timings["pipeline[scan+select+map]"];
        assert_eq!(p.calls, 2);
        assert_eq!(p.morsels, 12);
        assert_eq!(p.micros, 2000);
        assert_eq!(p.ops, ops, "the member operator list must be reported");
        assert_eq!(snap.total_morsels(), 12);
        assert!((snap.pipeline_ms() - 2.0).abs() < 1e-9);
        assert_eq!(snap.steal_count, 3);
        // Fused time shows up under the pipeline label, not under any single
        // member operator's bucket.
        assert_eq!(snap.op_timings["pipeline[scan+select+map]"].micros, 2000);
        assert!(!snap.op_timings.contains_key("select"));
        assert!(!snap.op_timings.contains_key("map"));
    }
}
