//! Value ↔ Batch round-tripping: seeded-random nested bags must survive the
//! columnar representation **losslessly** — field order, explicit NULLs vs
//! absent attributes, Int vs Real flavour, labels, empty and NULL bags,
//! non-tuple bag elements, opaque (non-tuple) rows — plus the byte-accounting
//! invariants the benchmarks rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_dist::{Batch, ClusterConfig, ColCollection, DistContext};
use trance_nrc::{Label, MemSize, Value};

/// Strict structural equality: unlike `Value::eq` (where `Int(3) == Real(3.0)`),
/// the round trip must preserve the exact variant of every scalar.
fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((nx, vx), (ny, vy))| nx == ny && strict_eq(vx, vy))
        }
        (Value::Bag(x), Value::Bag(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(vx, vy)| strict_eq(vx, vy))
        }
        _ => a == b,
    }
}

/// A random scalar; `flavour` keeps a column's kind stable for most rows so
/// typed columns are actually exercised (mixed columns fall back anyway).
fn random_scalar(rng: &mut StdRng, flavour: u32) -> Value {
    if rng.gen_bool(0.1) {
        return Value::Null;
    }
    match flavour % 6 {
        0 => Value::Int(rng.gen_range(-50..50)),
        1 => Value::Real(rng.gen_range(0.0..100.0)),
        2 => Value::Bool(rng.gen_bool(0.5)),
        3 => Value::Date(rng.gen_range(0..20_000)),
        4 => {
            if rng.gen_bool(0.5) {
                // Repeated strings (dictionary hits).
                Value::str(format!("tag-{}", rng.gen_range(0..4u32)))
            } else {
                // Unique strings (dictionary misses).
                Value::str(format!("unique-{}", rng.gen_range(0..1_000_000u32)))
            }
        }
        _ => Value::Label(Label::new(
            rng.gen_range(0..3u32),
            vec![Value::Int(rng.gen_range(0..10))],
        )),
    }
}

/// A random tuple row. Fields keep a per-level order; each field is sometimes
/// missing entirely (absent ≠ NULL). `depth` controls nested bag columns.
fn random_row(rng: &mut StdRng, depth: usize, mixed: bool) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    for f in 0..4u32 {
        if rng.gen_bool(0.12) {
            continue; // absent attribute
        }
        let flavour = if mixed { rng.gen_range(0..6u32) } else { f };
        fields.push((format!("f{f}"), random_scalar(rng, flavour)));
    }
    if depth > 0 && !rng.gen_bool(0.1) {
        let bag = if rng.gen_bool(0.08) {
            Value::Null // NULL bag, distinct from the empty bag
        } else {
            let n = rng.gen_range(0..4usize);
            if rng.gen_bool(0.1) {
                // Non-tuple elements: the column degrades to a value vector
                // but must still round-trip exactly.
                Value::bag((0..n).map(|_| random_scalar(rng, 0)).collect())
            } else {
                Value::bag((0..n).map(|_| random_row(rng, depth - 1, mixed)).collect())
            }
        };
        fields.push(("items".to_string(), bag));
    }
    Value::Tuple(trance_nrc::Tuple::new(fields))
}

#[test]
fn seeded_random_nested_bags_round_trip_losslessly() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C4 + seed);
        let n = rng.gen_range(1..60usize);
        let mixed = rng.gen_bool(0.25);
        let rows: Vec<Value> = (0..n).map(|_| random_row(&mut rng, 2, mixed)).collect();
        let batch = Batch::from_rows(&rows);
        let back = batch.to_rows();
        assert_eq!(back.len(), rows.len(), "seed {seed}: cardinality changed");
        for (i, (orig, got)) in rows.iter().zip(&back).enumerate() {
            assert!(
                strict_eq(orig, got),
                "seed {seed}: row {i} changed\n  original: {orig:?}\n  restored: {got:?}"
            );
        }
    }
}

#[test]
fn round_trip_through_the_columnar_collection_boundaries() {
    // Scan-ingest and collect are the only row/column boundaries; together
    // they must be the identity on every partition.
    let ctx = DistContext::new(ClusterConfig::new(3, 8));
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xD15C + seed);
        let rows: Vec<Value> = (0..rng.gen_range(1..80usize))
            .map(|_| random_row(&mut rng, 2, false))
            .collect();
        let coll = ctx.parallelize(rows);
        let round = ColCollection::ingest(&coll, &[])
            .unwrap()
            .to_rows()
            .unwrap();
        let orig = coll.collect();
        let back = round.collect();
        assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(&back) {
            assert!(strict_eq(a, b), "seed {seed}: {a:?} != {b:?}");
        }
    }
}

#[test]
fn non_tuple_rows_survive_as_opaque_batches() {
    let rows = vec![
        Value::Int(1),
        Value::str("two"),
        Value::Null,
        Value::bag(vec![Value::Int(3)]),
    ];
    let batch = Batch::from_rows(&rows);
    assert!(batch.schema().is_opaque());
    let back = batch.to_rows();
    for (a, b) in rows.iter().zip(&back) {
        assert!(strict_eq(a, b));
    }
}

#[test]
fn physical_accounting_beats_logical_on_typed_data() {
    // Numeric + string rows: schema-once plus buffer-dictionary strings must
    // ship fewer physical bytes than the row-equivalent estimate, and the
    // logical estimate must agree with `Value::mem_size` exactly.
    let rows: Vec<Value> = (0..500)
        .map(|i| {
            Value::tuple([
                ("order_key", Value::Int(i)),
                ("quantity", Value::Real(i as f64 * 0.5)),
                (
                    "comment",
                    Value::str(format!("row comment {i} lorem ipsum")),
                ),
                ("flag", Value::Bool(i % 3 == 0)),
            ])
        })
        .collect();
    let batch = Batch::from_rows(&rows);
    let row_bytes: usize = rows.iter().map(MemSize::mem_size).sum();
    assert_eq!(
        batch.logical_bytes(),
        row_bytes,
        "logical accounting must equal the row representation's mem_size"
    );
    assert!(
        batch.physical_bytes() * 2 < row_bytes,
        "typed batches should ship under half the row bytes ({} vs {})",
        batch.physical_bytes(),
        row_bytes
    );
}
