//! Engine-level tests: partition parallelism, operator semantics, the
//! skew-aware join path (heavy-key detection, light ∪ heavy correctness on a
//! Zipf-skewed input, broadcast-limit fallback) and the memory-cap FAIL
//! behaviour.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

use trance_dist::{detect_heavy_keys, ClusterConfig, DistContext, ExecError, JoinSpec, SkewTriple};
use trance_nrc::{Bag, Tuple, Value};

fn row(k: i64, v: i64) -> Value {
    Value::tuple([("k", Value::Int(k)), ("v", Value::Int(v))])
}

/// A deterministic Zipf-flavoured fact table: key 0 owns `heavy_share` of the
/// rows, the rest spread over `keys` distinct keys.
fn skewed_rows(n: usize, keys: i64, heavy_share: f64) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let k = if (i as f64 / n as f64) < heavy_share {
                0
            } else {
                1 + (i as i64 % (keys - 1))
            };
            row(k, i as i64)
        })
        .collect()
}

fn dim_rows(keys: i64) -> Vec<Value> {
    (0..keys)
        .map(|k| {
            Value::tuple([
                ("dk", Value::Int(k)),
                ("name", Value::str(format!("key{k}"))),
            ])
        })
        .collect()
}

/// Reference nested-loop equi-join used as the correctness oracle.
fn nested_loop_join(left: &[Value], right: &[Value]) -> Bag {
    let mut out = Bag::empty();
    for l in left {
        let lt = l.as_tuple().unwrap();
        for r in right {
            let rt = r.as_tuple().unwrap();
            if lt.get("k") == rt.get("dk") {
                out.push(Value::Tuple(lt.concat(rt)));
            }
        }
    }
    out
}

fn canonical(bag: &Bag) -> Vec<Value> {
    let mut items: Vec<Value> = bag
        .iter()
        .map(|v| {
            let t = v.as_tuple().unwrap();
            let mut fields: Vec<(String, Value)> =
                t.iter().map(|(n, v)| (n.to_string(), v.clone())).collect();
            fields.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Tuple(Tuple::new(fields))
        })
        .collect();
    items.sort();
    items
}

// ---------------------------------------------------------------------------
// partition parallelism
// ---------------------------------------------------------------------------

#[test]
fn operators_run_partition_parallel_across_workers() {
    // The persistent pool models 4 workers as 3 pool threads plus the
    // calling thread. Work stealing makes *full* participation
    // timing-dependent (a descheduled worker's tasks get stolen), so the
    // assertion is that the operator genuinely ran across multiple
    // threads — not that every participant won a task.
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    assert_eq!(ctx.pool().participants(), 4);
    let data = ctx.parallelize((0..800).map(|i| row(i, i)).collect());
    let threads: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let out = data
        .map(|v| {
            threads.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(100));
            Ok(v.clone())
        })
        .unwrap();
    assert_eq!(out.len(), 800);
    assert_eq!(out.num_partitions(), 8);
    let distinct_threads = threads.lock().unwrap().len();
    assert!(
        distinct_threads >= 2,
        "expected partition-parallel execution across pool threads, saw {distinct_threads}"
    );
}

#[test]
fn single_worker_runs_inline() {
    let ctx = DistContext::new(ClusterConfig::new(1, 4));
    let data = ctx.parallelize((0..1000).map(|i| row(i, i)).collect());
    let threads: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    data.map(|v| {
        threads.lock().unwrap().insert(std::thread::current().id());
        Ok(v.clone())
    })
    .unwrap();
    assert_eq!(threads.lock().unwrap().len(), 1);
}

// ---------------------------------------------------------------------------
// operator semantics
// ---------------------------------------------------------------------------

#[test]
fn map_filter_union_distinct_roundtrip() {
    let ctx = DistContext::new(ClusterConfig::new(3, 6));
    let a = ctx.parallelize((0..50).map(|i| row(i % 5, i)).collect());
    let evens = a
        .filter(|v| Ok(v.as_tuple()?.get("v").unwrap().as_int()? % 2 == 0))
        .unwrap();
    assert_eq!(evens.len(), 25);
    let doubled = evens
        .map(|v| {
            let mut t = v.as_tuple()?.clone();
            let x = t.get("v").unwrap().as_int()?;
            t.set("v", Value::Int(x * 2));
            Ok(Value::Tuple(t))
        })
        .unwrap();
    let unioned = doubled.union(&evens).unwrap();
    assert_eq!(unioned.len(), 50);
    let keys = unioned
        .map(|v| Ok(v.as_tuple()?.get("k").unwrap().clone()))
        .unwrap()
        .distinct()
        .unwrap();
    assert_eq!(keys.len(), 5);
}

#[test]
fn nest_sum_matches_sequential_aggregation() {
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let rows: Vec<Value> = (0..1000).map(|i| row(i % 7, i)).collect();
    let mut expected = [0i64; 7];
    for i in 0..1000i64 {
        expected[(i % 7) as usize] += i;
    }
    let data = ctx.parallelize(rows);
    let summed = data
        .nest_sum(&["k".to_string()], &["v".to_string()])
        .unwrap();
    assert_eq!(summed.len(), 7);
    for v in summed.collect() {
        let t = v.as_tuple().unwrap();
        let k = t.get("k").unwrap().as_int().unwrap();
        assert_eq!(t.get("v").unwrap().as_int().unwrap(), expected[k as usize]);
    }
}

#[test]
fn with_unique_id_assigns_distinct_ids() {
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let data = ctx.parallelize((0..500).map(|i| row(i % 3, i)).collect());
    let tagged = data.with_unique_id("__id").unwrap();
    let ids: HashSet<i64> = tagged
        .collect()
        .iter()
        .map(|v| v.as_tuple().unwrap().get("__id").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(ids.len(), 500);
}

#[test]
fn memory_cap_fails_operators_but_not_loading() {
    let ctx = DistContext::new(ClusterConfig::new(2, 4).with_worker_memory(500));
    // Loading is not capped (the paper excludes input caching)...
    let data = ctx.parallelize((0..200).map(|i| row(i, i)).collect());
    // ...but the first operator that materializes output is.
    let result = data.map(|v| Ok(v.clone()));
    match result {
        Err(ExecError::MemoryExceeded { limit_bytes, .. }) => assert_eq!(limit_bytes, 500),
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// skew handling (Section 5)
// ---------------------------------------------------------------------------

#[test]
fn heavy_key_detection_respects_threshold() {
    let ctx = DistContext::new(ClusterConfig::new(2, 4).with_skew_threshold(0.25));
    // Key 0: 50% of rows; key 1: ~5% — only key 0 crosses the 25% threshold.
    let data = ctx.parallelize(skewed_rows(2000, 11, 0.5));
    let heavy = detect_heavy_keys(&data, &["k".to_string()], ctx.config()).unwrap();
    assert_eq!(heavy, HashSet::from([vec![Value::Int(0)]]));

    // With a 1% threshold every key (each ≥ 5% of rows) is heavy.
    let low = ctx.config().clone().with_skew_threshold(0.01);
    let heavy = detect_heavy_keys(&data, &["k".to_string()], &low).unwrap();
    assert_eq!(heavy.len(), 11);

    // A uniform distribution over many keys has no heavy keys at the default
    // (1/partitions) threshold.
    let uniform = ctx.parallelize((0..2000).map(|i| row(i % 100, i)).collect());
    let heavy = detect_heavy_keys(&uniform, &["k".to_string()], &ClusterConfig::new(2, 4)).unwrap();
    assert!(heavy.is_empty(), "uniform keys misdetected: {heavy:?}");
}

#[test]
fn skew_join_on_zipf_input_equals_nested_loop_join() {
    let facts = skewed_rows(4000, 40, 0.6);
    let dims = dim_rows(40);
    let expected = nested_loop_join(&facts, &dims);

    let ctx = DistContext::new(ClusterConfig::new(4, 16).with_broadcast_limit(16 * 1024));
    let left = ctx.parallelize(facts);
    let right = ctx.parallelize(dims);
    let spec = JoinSpec::inner(&["k"], &["dk"]);

    let standard = left.join(&right, &spec).unwrap();
    let skewed = SkewTriple::unknown(left.clone())
        .join(&right, &spec)
        .unwrap();
    assert!(
        skewed.heavy_key_count() >= 1,
        "key 0 must be detected heavy"
    );
    let merged = skewed.merged().unwrap();

    assert_eq!(canonical(&expected), canonical(&standard.collect_bag()));
    assert_eq!(canonical(&expected), canonical(&merged.collect_bag()));

    // The skew path must have taken the heavy-key broadcast strategy.
    let snap = ctx.stats().snapshot();
    assert!(
        snap.skew_broadcast_joins >= 1,
        "expected a heavy-key broadcast join, stats: {snap:?}"
    );
}

#[test]
fn skew_left_outer_join_preserves_unmatched_rows() {
    // Dimension covers only half the keys; unmatched facts must survive with
    // NULL-extended right fields, identically on both paths.
    let facts = skewed_rows(2000, 20, 0.5);
    let dims = dim_rows(10);
    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(8 * 1024));
    let left = ctx.parallelize(facts);
    let right = ctx.parallelize(dims);
    let spec = JoinSpec::left_outer(&["k"], &["dk"]).with_right_fields(&["name"]);
    let standard = left.join(&right, &spec).unwrap();
    let skewed = SkewTriple::unknown(left.clone())
        .join(&right, &spec)
        .unwrap()
        .merged()
        .unwrap();
    assert_eq!(
        canonical(&standard.collect_bag()),
        canonical(&skewed.collect_bag())
    );
    assert_eq!(standard.len(), 2000);
}

#[test]
fn skew_join_falls_back_to_shuffle_over_broadcast_limit() {
    let facts = skewed_rows(3000, 30, 0.6);
    // Wide dimension rows so the heavy-matching right rows exceed the limit.
    let dims: Vec<Value> = (0..30)
        .map(|k| Value::tuple([("dk", Value::Int(k)), ("pad", Value::str("x".repeat(256)))]))
        .collect();
    let expected = {
        let mut out = Bag::empty();
        for l in &facts {
            let lt = l.as_tuple().unwrap();
            for r in &dims {
                let rt = r.as_tuple().unwrap();
                if lt.get("k") == rt.get("dk") {
                    out.push(Value::Tuple(lt.concat(rt)));
                }
            }
        }
        out
    };
    // Broadcast limit smaller than a single padded dimension row.
    let ctx = DistContext::new(ClusterConfig::new(4, 8).with_broadcast_limit(128));
    let left = ctx.parallelize(facts);
    let right = ctx.parallelize(dims);
    let spec = JoinSpec::inner(&["k"], &["dk"]);
    let merged = SkewTriple::unknown(left)
        .join(&right, &spec)
        .unwrap()
        .merged()
        .unwrap();
    assert_eq!(canonical(&expected), canonical(&merged.collect_bag()));
    let snap = ctx.stats().snapshot();
    assert!(
        snap.skew_fallback_joins >= 1,
        "expected the heavy part to fall back to a shuffle join, stats: {snap:?}"
    );
    assert_eq!(snap.skew_broadcast_joins, 0);
}

#[test]
fn skew_nest_sum_equals_standard_nest_sum() {
    let rows = skewed_rows(3000, 25, 0.7);
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let data = ctx.parallelize(rows);
    let key = vec!["k".to_string()];
    let values = vec!["v".to_string()];
    let standard = data.nest_sum(&key, &values).unwrap();
    let skewed = SkewTriple::unknown(data.clone())
        .nest_sum(&key, &values)
        .unwrap()
        .merged()
        .unwrap();
    assert_eq!(
        canonical(&standard.collect_bag()),
        canonical(&skewed.collect_bag())
    );
}

#[test]
fn skew_join_shuffles_less_than_standard_on_heavy_input() {
    // The headline property: with a heavy key, the skew-aware join moves far
    // fewer rows through the shuffle because heavy rows stay in place.
    let facts = skewed_rows(8000, 50, 0.8);
    let dims = dim_rows(50);
    let spec = JoinSpec::inner(&["k"], &["dk"]);

    // Force both paths to shuffle-join the light part by keeping the
    // dimension over the broadcast limit, but leave room to broadcast the
    // heavy-matching rows.
    let standard_ctx = DistContext::new(ClusterConfig::new(4, 16).with_broadcast_limit(512));
    let l = standard_ctx.parallelize(facts.clone());
    let r = standard_ctx.parallelize(dims.clone());
    l.join(&r, &spec).unwrap();
    let standard_shuffled = standard_ctx.stats().snapshot().shuffled_tuples;

    let skew_ctx = DistContext::new(ClusterConfig::new(4, 16).with_broadcast_limit(512));
    let l = skew_ctx.parallelize(facts);
    let r = skew_ctx.parallelize(dims);
    SkewTriple::unknown(l).join(&r, &spec).unwrap();
    let skew_shuffled = skew_ctx.stats().snapshot().shuffled_tuples;

    assert!(
        skew_shuffled * 2 < standard_shuffled,
        "skew path should shuffle far less: {skew_shuffled} vs {standard_shuffled}"
    );
}
