//! Engine-level tests of the persistent worker pool and the morsel-driven
//! pipeline drivers: fused pipelines must be byte-equivalent to their staged
//! operator chains (rows *and* order), unique-id assignment must reproduce
//! the staged numbering under sequential morsel cursors, steal/morsel/time
//! accounting must be truthful, and a morsel task that panics mid-pipeline
//! must not leak spill files.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use trance_dist::colops::unnest_batch;
use trance_dist::{Batch, ClusterConfig, ColCollection, DistContext, FieldHint, MorselCtx};
use trance_nrc::{Tuple, Value};

fn row(k: i64, v: i64) -> Value {
    Value::tuple([("k", Value::Int(k)), ("v", Value::Int(v))])
}

fn nested_row(k: i64, items: usize) -> Value {
    Value::tuple([
        ("k", Value::Int(k)),
        (
            "items",
            Value::bag(
                (0..items)
                    .map(|i| Value::tuple([("x", Value::Int(i as i64))]))
                    .collect(),
            ),
        ),
    ])
}

fn col_ingest(ctx: &DistContext, rows: Vec<Value>) -> ColCollection {
    let coll = ctx.parallelize(rows);
    ColCollection::ingest(&coll, &[FieldHint::scalar("k"), FieldHint::scalar("v")]).unwrap()
}

// ---------------------------------------------------------------------------
// fused pipelines vs staged operator chains
// ---------------------------------------------------------------------------

#[test]
fn columnar_pipeline_matches_staged_chain_rows_and_order() {
    for workers in [1, 2, 7] {
        let ctx = DistContext::new(ClusterConfig::new(workers, 8));
        let data = col_ingest(&ctx, (0..20_000).map(|i| row(i % 50, i)).collect());

        let staged = data
            .filter_mask(|b| {
                Ok((0..b.rows())
                    .map(|i| matches!(b.value_at(i, "v"), Some(Value::Int(v)) if v % 3 == 0))
                    .collect())
            })
            .unwrap()
            .map_batches("map", |b| {
                let doubled: Vec<Value> = (0..b.rows())
                    .map(|i| match b.value_at(i, "v") {
                        Some(Value::Int(v)) => Value::Int(v * 2),
                        other => other.unwrap_or(Value::Null),
                    })
                    .collect();
                Ok(b.with_column(
                    "v2",
                    std::sync::Arc::new(trance_dist::Column::from_values(doubled)),
                ))
            })
            .unwrap();

        let fused = data
            .run_pipeline(
                "pipeline[select+extend]",
                &["select".to_string(), "extend".to_string()],
                false,
                |b, _| {
                    let mask: Vec<bool> = (0..b.rows())
                        .map(|i| matches!(b.value_at(i, "v"), Some(Value::Int(v)) if v % 3 == 0))
                        .collect();
                    let b = b.filter(&mask);
                    let doubled: Vec<Value> = (0..b.rows())
                        .map(|i| match b.value_at(i, "v") {
                            Some(Value::Int(v)) => Value::Int(v * 2),
                            other => other.unwrap_or(Value::Null),
                        })
                        .collect();
                    Ok(b.with_column(
                        "v2",
                        std::sync::Arc::new(trance_dist::Column::from_values(doubled)),
                    ))
                },
            )
            .unwrap();

        // Identical rows in identical partition order: the reorder buffer
        // re-assembles stolen morsels in source order.
        let staged_parts: Vec<Vec<Value>> = staged
            .batches()
            .unwrap()
            .iter()
            .map(|b| b.to_rows())
            .collect();
        let fused_parts: Vec<Vec<Value>> = fused
            .batches()
            .unwrap()
            .iter()
            .map(|b| b.to_rows())
            .collect();
        assert_eq!(
            staged_parts, fused_parts,
            "workers={workers}: fused pipeline must be byte-identical to the staged chain"
        );
    }
}

#[test]
fn row_pipeline_matches_staged_chain_rows_and_order() {
    for workers in [1, 2, 7] {
        let ctx = DistContext::new(ClusterConfig::new(workers, 8));
        let data = ctx.parallelize((0..20_000).map(|i| row(i % 50, i)).collect());
        let staged = data
            .filter(|v| Ok(v.as_tuple()?.get("v").unwrap().as_int()? % 3 == 0))
            .unwrap()
            .map(|v| {
                let mut t = v.as_tuple()?.clone();
                let x = t.get("v").unwrap().as_int()?;
                t.set("v2", Value::Int(x * 2));
                Ok(Value::Tuple(t))
            })
            .unwrap();
        let fused = data
            .run_pipeline(
                "pipeline[select+extend]",
                &["select".to_string(), "extend".to_string()],
                false,
                |rows, _| {
                    let mut out = Vec::new();
                    for v in rows {
                        let t = v.as_tuple()?;
                        if t.get("v").unwrap().as_int()? % 3 != 0 {
                            continue;
                        }
                        let mut t = t.clone();
                        let x = t.get("v").unwrap().as_int()?;
                        t.set("v2", Value::Int(x * 2));
                        out.push(Value::Tuple(t));
                    }
                    Ok(out)
                },
            )
            .unwrap();
        let staged_parts: Vec<Vec<Value>> = staged
            .partitions()
            .unwrap()
            .iter()
            .map(|p| p.to_vec())
            .collect();
        let fused_parts: Vec<Vec<Value>> = fused
            .partitions()
            .unwrap()
            .iter()
            .map(|p| p.to_vec())
            .collect();
        assert_eq!(staged_parts, fused_parts, "workers={workers}");
    }
}

#[test]
fn sequential_pipeline_reproduces_staged_unique_ids_exactly() {
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let data = col_ingest(&ctx, (0..9_000).map(|i| row(i % 10, i)).collect());
    let staged = data.with_unique_id("__id").unwrap();
    let fused = data
        .run_pipeline(
            "pipeline[add_index]",
            &["add_index".to_string()],
            true,
            |b, cx: &mut MorselCtx| {
                let start = cx.reserve(0, b.rows());
                Ok(b.with_unique_ids("__id", cx.partition, start, cx.stride))
            },
        )
        .unwrap();
    let staged_rows: Vec<Vec<Value>> = staged
        .batches()
        .unwrap()
        .iter()
        .map(|b| b.to_rows())
        .collect();
    let fused_rows: Vec<Vec<Value>> = fused
        .batches()
        .unwrap()
        .iter()
        .map(|b| b.to_rows())
        .collect();
    assert_eq!(
        staged_rows, fused_rows,
        "fused id assignment must reproduce the staged numbering"
    );
    // Ids must be globally unique either way.
    let ids: HashSet<i64> = fused_rows
        .iter()
        .flatten()
        .map(|v| v.as_tuple().unwrap().get("__id").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(ids.len(), 9_000);
}

#[test]
fn fused_unnest_kernel_matches_staged_unnest() {
    let ctx = DistContext::new(ClusterConfig::new(3, 6));
    let rows: Vec<Value> = (0..500).map(|i| nested_row(i, (i % 4) as usize)).collect();
    let coll = ctx.parallelize(rows);
    let data = ColCollection::ingest(
        &coll,
        &[
            FieldHint::scalar("k"),
            FieldHint::bag("items", vec![FieldHint::scalar("x")]),
        ],
    )
    .unwrap();
    let staged = data.unnest("items", Some("it"), true).unwrap();
    let fused = data
        .run_pipeline(
            "pipeline[outer_unnest]",
            &["outer_unnest".to_string()],
            false,
            |b, _| unnest_batch(b, "items", Some("it"), true),
        )
        .unwrap();
    let staged_rows: Vec<Vec<Value>> = staged
        .batches()
        .unwrap()
        .iter()
        .map(|b| b.to_rows())
        .collect();
    let fused_rows: Vec<Vec<Value>> = fused
        .batches()
        .unwrap()
        .iter()
        .map(|b| b.to_rows())
        .collect();
    assert_eq!(staged_rows, fused_rows);
}

// ---------------------------------------------------------------------------
// accounting: morsels, steals, per-pipeline op attribution
// ---------------------------------------------------------------------------

#[test]
fn pipeline_stats_attribute_time_to_the_pipeline_with_member_ops() {
    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let data = col_ingest(&ctx, (0..30_000).map(|i| row(i % 20, i)).collect());
    ctx.stats().reset();
    data.run_pipeline(
        "pipeline[select+extend+project]",
        &[
            "select".to_string(),
            "extend".to_string(),
            "project".to_string(),
        ],
        false,
        |b, _| Ok(b.clone()),
    )
    .unwrap();
    let snap = ctx.stats().snapshot();
    let timing = &snap.pipeline_timings["pipeline[select+extend+project]"];
    assert_eq!(timing.calls, 1);
    assert_eq!(timing.ops, vec!["select", "extend", "project"]);
    // Ample partitions (8 ≥ 2×4 workers): one morsel per partition.
    assert!(
        timing.morsels >= 8,
        "expected morsel-grained execution, saw {}",
        timing.morsels
    );
    assert_eq!(snap.total_morsels(), timing.morsels);
    assert!(snap.pipeline_ms() >= 0.0);
    // op_ms stays truthful: the fused run shows up under its pipeline label,
    // never under a member operator's bucket.
    assert!(snap
        .op_timings
        .contains_key("pipeline[select+extend+project]"));
    assert!(!snap.op_timings.contains_key("select"));
    assert!(!snap.op_timings.contains_key("map"));
}

#[test]
fn uneven_morsels_get_stolen_and_counted() {
    // Two workers over three partitions (scarce relative to the pool, so
    // resident partitions split into 4096-row morsels): the idle
    // participant must steal morsels and the steal shows up in the stats.
    let ctx = DistContext::new(ClusterConfig::new(2, 3));
    let data = col_ingest(&ctx, (0..40_000).map(|i| row(i % 4, i)).collect());
    ctx.stats().reset();
    data.run_pipeline(
        "pipeline[extend]",
        &["extend".to_string()],
        false,
        |b, _| {
            // Non-trivial per-morsel work so stealing has a window.
            let vals: Vec<Value> = (0..b.rows())
                .map(|i| match b.value_at(i, "v") {
                    Some(Value::Int(v)) => Value::Int(v.wrapping_mul(31).wrapping_add(7)),
                    other => other.unwrap_or(Value::Null),
                })
                .collect();
            Ok(b.with_column(
                "h",
                std::sync::Arc::new(trance_dist::Column::from_values(vals)),
            ))
        },
    )
    .unwrap();
    let snap = ctx.stats().snapshot();
    assert!(
        snap.total_morsels() >= 10,
        "morsels: {}",
        snap.total_morsels()
    );
    // Steal counts are timing-dependent; across this many morsels on two
    // participants at least one steal is effectively certain.
    assert!(
        snap.steal_count > 0,
        "expected work stealing on imbalanced morsels, stats: {snap:?}"
    );
}

// ---------------------------------------------------------------------------
// panics × spill cleanup
// ---------------------------------------------------------------------------

#[test]
fn morsel_panic_mid_pipeline_cleans_up_spill_files() {
    let dir = std::env::temp_dir().join(format!("trance-sched-panic-{}", std::process::id()));
    let ctx = DistContext::new(
        ClusterConfig::new(3, 8)
            .with_worker_memory(16 * 1024)
            .with_spill_dir(&dir),
    );
    // Enough rows that materialized inputs spill under the 16 KiB cap.
    let rows: Vec<Value> = (0..6_000)
        .map(|i| {
            Value::tuple([
                ("k", Value::Int(i)),
                ("pad", Value::str(format!("padding-{i:06}"))),
            ])
        })
        .collect();
    let coll = ctx.parallelize(rows);
    let data =
        ColCollection::ingest(&coll, &[FieldHint::scalar("k"), FieldHint::scalar("pad")]).unwrap();
    // A first (successful) pipeline forces real spill traffic.
    let spilled = data
        .run_pipeline(
            "pipeline[extend]",
            &["extend".to_string()],
            false,
            |b, _| Ok(b.clone()),
        )
        .unwrap();
    assert!(
        ctx.stats().snapshot().spilled_bytes > 0,
        "the cap is meant to force the pipeline output out-of-core"
    );

    // Now a morsel task panics mid-pipeline: the panic must propagate to the
    // caller AFTER the scope settles, and no spill file of the failed run
    // may survive once the collections drop.
    let hits = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = spilled.run_pipeline(
            "pipeline[select]",
            &["select".to_string()],
            false,
            |b, _| {
                if hits.fetch_add(1, Ordering::Relaxed) == 2 {
                    panic!("injected morsel failure");
                }
                Ok(b.clone())
            },
        );
    }));
    assert!(result.is_err(), "the morsel panic must reach the caller");

    // The engine survives the panic: the same collection still executes.
    let after = spilled
        .run_pipeline(
            "pipeline[select]",
            &["select".to_string()],
            false,
            |b, _| Ok(b.clone()),
        )
        .unwrap();
    assert_eq!(after.len(), 6_000);

    // Dropping every collection (and the context) must drain the scoped
    // spill directory — including files of the panicked run's sinks.
    let spill_dir = ctx.spill_dir();
    drop(after);
    drop(spilled);
    drop(data);
    drop(coll);
    drop(ctx);
    if let Some(d) = spill_dir {
        assert!(
            !d.exists(),
            "dropping the context must remove the scoped spill directory"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// pool behaviour through the public context API
// ---------------------------------------------------------------------------

#[test]
fn context_pool_is_created_once_and_shared_by_clones() {
    let ctx = DistContext::new(ClusterConfig::new(5, 10));
    assert_eq!(ctx.pool().participants(), 5);
    let clone = ctx.clone();
    assert!(std::ptr::eq(ctx.pool(), clone.pool()));
}

#[test]
fn run_tasks_records_steals_into_stats() {
    let ctx = DistContext::new(ClusterConfig::new(2, 4));
    ctx.stats().reset();
    let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
        .map(|i| {
            let order = &order;
            Box::new(move || {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                order.lock().unwrap().push(i);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    ctx.run_tasks(tasks);
    assert_eq!(order.lock().unwrap().len(), 16);
    assert!(
        ctx.stats().snapshot().steal_count >= 1,
        "the idle participant should have stolen the sleeper's queued tasks"
    );
}

#[test]
fn empty_partitions_preserve_schema_through_pipelines() {
    let ctx = DistContext::new(ClusterConfig::new(2, 6));
    // One row only: five partitions stay empty but keep their schema.
    let data = col_ingest(&ctx, vec![row(1, 2)]);
    let out = data
        .run_pipeline(
            "pipeline[select]",
            &["select".to_string()],
            false,
            |b, _| Ok(b.filter(&vec![false; b.rows()])),
        )
        .unwrap();
    assert_eq!(out.len(), 0);
    let staged = data.filter_mask(|b| Ok(vec![false; b.rows()])).unwrap();
    let fused_fields = out.first_fields().unwrap();
    let staged_fields = staged.first_fields().unwrap();
    assert_eq!(fused_fields, staged_fields);
    let _ = Tuple::empty();
    let _ = Batch::empty();
}
