//! The out-of-core spill subsystem, engine side:
//!
//! * the on-disk batch serialization must round-trip seeded-random nested
//!   batches **losslessly** through `SpillFile` frames (strict variant
//!   equality, like the in-memory `Value` ↔ `Batch` round trip);
//! * memory-capped runs with spilling enabled must complete with results
//!   identical to uncapped runs — on both the columnar and the row
//!   representation — while the same cap without spilling still raises
//!   `MemoryExceeded` (the paper's FAIL);
//! * spill files are scoped to the run: they disappear when the spilled
//!   collections drop, on the error path, and after a worker panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_dist::{Batch, ClusterConfig, ColCollection, DistContext, ExecError, JoinSpec};
use trance_nrc::{Label, Value};
use trance_store::{ByteReader, ByteWriter, SpillManager, Spillable};

fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((nx, vx), (ny, vy))| nx == ny && strict_eq(vx, vy))
        }
        (Value::Bag(x), Value::Bag(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(vx, vy)| strict_eq(vx, vy))
        }
        _ => a == b,
    }
}

fn random_scalar(rng: &mut StdRng, flavour: u32) -> Value {
    if rng.gen_bool(0.1) {
        return Value::Null;
    }
    match flavour % 6 {
        0 => Value::Int(rng.gen_range(-50..50)),
        1 => Value::Real(rng.gen_range(0.0..100.0)),
        2 => Value::Bool(rng.gen_bool(0.5)),
        3 => Value::Date(rng.gen_range(0..20_000)),
        4 => Value::str(format!("tag-{}", rng.gen_range(0..6u32))),
        _ => Value::Label(Label::new(
            rng.gen_range(0..3u32),
            vec![Value::Int(rng.gen_range(0..10))],
        )),
    }
}

fn random_row(rng: &mut StdRng, depth: usize) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    for f in 0..4u32 {
        if rng.gen_bool(0.12) {
            continue; // absent attribute (≠ NULL)
        }
        fields.push((format!("f{f}"), random_scalar(rng, f)));
    }
    if depth > 0 && !rng.gen_bool(0.1) {
        let bag = if rng.gen_bool(0.08) {
            Value::Null
        } else {
            let n = rng.gen_range(0..4usize);
            if rng.gen_bool(0.1) {
                Value::bag((0..n).map(|_| random_scalar(rng, 0)).collect())
            } else {
                Value::bag((0..n).map(|_| random_row(rng, depth - 1)).collect())
            }
        };
        fields.push(("items".to_string(), bag));
    }
    Value::Tuple(trance_nrc::Tuple::new(fields))
}

#[test]
fn spill_frames_round_trip_random_nested_batches_losslessly() {
    let manager = SpillManager::new(None).expect("spill dir");
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x5B111 + seed);
        let n = rng.gen_range(1..80usize);
        let rows: Vec<Value> = (0..n).map(|_| random_row(&mut rng, 2)).collect();
        let batch = Batch::from_rows(&rows);

        // Chunked framing: split the batch into several frames like the
        // engine does, stream them back, and compare the concatenation.
        let mut file = manager.create().expect("spill file");
        let chunk = rng.gen_range(1..n + 1);
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            let mut w = ByteWriter::new();
            batch.take(&idx).encode(&mut w).expect("encode chunk");
            file.append(&w.into_bytes()).expect("append frame");
            lo = hi;
        }
        let handle = file.finish().expect("seal");
        let mut reader = handle.open().expect("open");
        let mut back: Vec<Value> = Vec::new();
        while let Some(frame) = reader.next_frame().expect("frame") {
            let decoded = Batch::decode(&mut ByteReader::new(&frame)).expect("decode");
            back.extend(decoded.to_rows());
        }
        assert_eq!(back.len(), rows.len(), "seed {seed}: cardinality changed");
        for (i, (orig, got)) in rows.iter().zip(&back).enumerate() {
            assert!(
                strict_eq(orig, got),
                "seed {seed}: row {i} changed on disk\n  original: {orig:?}\n  restored: {got:?}"
            );
        }
    }
    assert_eq!(
        manager.live_files().unwrap(),
        0,
        "dropping every handle must have deleted every spill file"
    );
}

/// 600 wide rows, each with a nested bag — enough that unnest + join output
/// overruns a small worker cap.
fn wide_rows() -> Vec<Value> {
    (0..600)
        .map(|i| {
            Value::tuple([
                ("id", Value::Int(i)),
                ("pad", Value::str("x".repeat(64))),
                (
                    "items",
                    Value::bag(
                        (0..8)
                            .map(|j| {
                                Value::tuple([
                                    ("k", Value::Int((i + j) % 40)),
                                    ("v", Value::Real(j as f64)),
                                    ("note", Value::str(format!("item note {j}"))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect()
}

fn side_rows() -> Vec<Value> {
    (0..40)
        .map(|k| {
            Value::tuple([
                ("k", Value::Int(k)),
                ("label", Value::str(format!("side-{k}"))),
            ])
        })
        .collect()
}

/// Canonicalizes nested rows for comparison: bags are multisets, and
/// out-of-core execution may emit a group's elements in a different order
/// than the in-memory run, so bags sort recursively before comparing.
fn canonical(v: &Value) -> Value {
    match v {
        Value::Bag(b) => {
            let mut items: Vec<Value> = b.iter().map(canonical).collect();
            items.sort();
            Value::Bag(trance_nrc::Bag::new(items))
        }
        Value::Tuple(t) => Value::Tuple(trance_nrc::Tuple::new(
            t.iter().map(|(n, v)| (n.to_string(), canonical(v))),
        )),
        other => other.clone(),
    }
}

/// Unnest + shuffle join + regroup over the columnar representation.
fn columnar_pipeline(ctx: &DistContext) -> trance_dist::Result<Vec<Value>> {
    let data = ColCollection::ingest(&ctx.parallelize(wide_rows()), &[]).expect("ingest");
    let side = ColCollection::ingest(&ctx.parallelize(side_rows()), &[]).expect("ingest");
    let flat = data.unnest("items", Some("i"), false)?;
    let joined = flat.join(&side, &JoinSpec::inner(&["i.k"], &["k"]))?;
    let grouped = joined.nest_bag(
        &["id".to_string()],
        &["i.v".to_string(), "label".to_string()],
        "grp",
    )?;
    let mut out: Vec<Value> = grouped.collect_bag()?.iter().map(canonical).collect();
    out.sort();
    Ok(out)
}

fn capped_cluster(spill: bool) -> ClusterConfig {
    let cfg = ClusterConfig::new(2, 4)
        .with_broadcast_limit(512)
        .with_worker_memory(96 * 1024);
    if spill {
        cfg.with_spill()
    } else {
        cfg
    }
}

#[test]
fn capped_columnar_run_spills_instead_of_failing_and_matches_uncapped() {
    let uncapped = DistContext::new(ClusterConfig::new(2, 4).with_broadcast_limit(512));
    let expected = columnar_pipeline(&uncapped).expect("uncapped run");

    // Same cap, no spill subsystem: the paper's FAIL.
    let failing = DistContext::new(capped_cluster(false));
    match columnar_pipeline(&failing) {
        Err(ExecError::MemoryExceeded { .. }) => {}
        other => panic!("expected MemoryExceeded without spill, got {other:?}"),
    }

    // Same cap, spill on: completes, identical result, real spill traffic.
    let capped = DistContext::new(capped_cluster(true));
    let produced = columnar_pipeline(&capped).expect("capped spill run");
    assert_eq!(expected.len(), produced.len());
    for (a, b) in expected.iter().zip(&produced) {
        assert!(strict_eq(a, b), "spill changed a row: {a:?} vs {b:?}");
    }
    let stats = capped.stats().snapshot();
    assert!(
        stats.spilled_bytes > 0 && stats.spill_files > 0,
        "capped run must actually spill ({stats:?})"
    );

    // The session toggle reproduces FAIL on the same spill-capable cluster.
    capped.stats().reset();
    capped.set_spill_session(false);
    match columnar_pipeline(&capped) {
        Err(ExecError::MemoryExceeded { .. }) => {}
        other => panic!("expected MemoryExceeded with the session off, got {other:?}"),
    }
    capped.set_spill_session(true);
}

#[test]
fn capped_row_run_spills_instead_of_failing_and_matches_uncapped() {
    let pipeline = |ctx: &DistContext| -> trance_dist::Result<Vec<Value>> {
        let data = ctx.parallelize(wide_rows());
        let flat = data.flat_map(|row| {
            let t = row.as_tuple()?;
            let items = match t.get("items") {
                Some(Value::Bag(b)) => b.clone(),
                _ => trance_nrc::Bag::empty(),
            };
            let mut out = Vec::new();
            for item in items.iter() {
                let mut r = t.clone();
                r.remove("items");
                r.set("item", item.clone());
                out.push(Value::Tuple(r));
            }
            Ok(out)
        })?;
        let mut out = flat.collect();
        out.sort();
        Ok(out)
    };
    let uncapped = DistContext::new(ClusterConfig::new(2, 4));
    let expected = pipeline(&uncapped).expect("uncapped");
    let failing = DistContext::new(capped_cluster(false));
    assert!(matches!(
        pipeline(&failing),
        Err(ExecError::MemoryExceeded { .. })
    ));
    let capped = DistContext::new(capped_cluster(true));
    let produced = pipeline(&capped).expect("capped spill run");
    assert_eq!(expected, produced);
    assert!(capped.stats().snapshot().spilled_bytes > 0);
}

fn live_spill_files(ctx: &DistContext) -> usize {
    match ctx.spill_dir() {
        None => 0,
        Some(dir) => std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0),
    }
}

#[test]
fn spill_files_are_deleted_when_collections_drop_and_on_error_paths() {
    let ctx = DistContext::new(capped_cluster(true));
    let out = columnar_pipeline(&ctx).expect("capped run");
    drop(out);
    // The pipeline's intermediates are gone: every spill file must be too
    // (the scoped directory itself lives until the context drops).
    assert_eq!(
        live_spill_files(&ctx),
        0,
        "success path left spill files behind"
    );

    // Error path: a type error after spilling has happened.
    let data = ColCollection::ingest(&ctx.parallelize(wide_rows()), &[]).expect("ingest");
    let flat = data.unnest("items", Some("i"), false).expect("unnest");
    assert!(flat.spilled_partitions() > 0, "cap should force spilling");
    let err = flat.unnest("id", None, false);
    assert!(err.is_err(), "unnesting a scalar must fail");
    drop(flat);
    drop(data);
    assert_eq!(
        live_spill_files(&ctx),
        0,
        "error path left spill files behind"
    );

    let dir = ctx.spill_dir().expect("spill dir was created");
    assert!(dir.exists());
    drop(ctx);
    assert!(
        !dir.exists(),
        "context drop must remove the scoped directory"
    );
}

#[test]
fn spill_files_survive_worker_panics_without_leaking() {
    let ctx = DistContext::new(capped_cluster(true));
    let data = ColCollection::ingest(&ctx.parallelize(wide_rows()), &[]).expect("ingest");
    let flat = data.unnest("items", Some("i"), false).expect("unnest");
    assert!(flat.spilled_partitions() > 0);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = flat.map_batches("map", |_| panic!("worker down"));
    }));
    assert!(panicked.is_err(), "the worker panic must propagate");
    drop(flat);
    drop(data);
    assert_eq!(
        live_spill_files(&ctx),
        0,
        "worker panic left spill files behind"
    );
}
