//! Spanned compile errors with source excerpts.

use std::fmt;

/// A diagnostic produced by the lexer or parser: what went wrong, where,
/// and (when applicable) which tokens would have been accepted instead.
///
/// `line` and `col` are 1-based. `excerpt` holds the offending source line
/// verbatim so callers can render a caret without re-reading the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description of the failure.
    pub message: String,
    /// 1-based line of the offending token or character.
    pub line: usize,
    /// 1-based column of the offending token or character.
    pub col: usize,
    /// Token descriptions that would have been accepted at this point
    /// (empty when the error is lexical or not a token mismatch).
    pub expected: Vec<String>,
    /// The source line the error points into (without its newline).
    pub excerpt: String,
}

impl CompileError {
    /// Builds an error at an explicit location.
    pub fn new(
        message: impl Into<String>,
        line: usize,
        col: usize,
        expected: Vec<String>,
        excerpt: impl Into<String>,
    ) -> Self {
        CompileError {
            message: message.into(),
            line,
            col,
            expected,
            excerpt: excerpt.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {} at {}:{}", self.message, self.line, self.col)?;
        let gutter = format!("{}", self.line);
        writeln!(f, "{} | {}", gutter, self.excerpt)?;
        let pad = gutter.len() + 3 + self.col.saturating_sub(1);
        writeln!(f, "{}^", " ".repeat(pad))?;
        if !self.expected.is_empty() {
            write!(f, "expected: {}", self.expected.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}
